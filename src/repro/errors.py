"""Exception hierarchy for the hyper-programming system.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
applications can catch the whole family with a single handler while the
subsystems keep distinct, documented failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# ---------------------------------------------------------------------------
# Persistent store
# ---------------------------------------------------------------------------

class StoreError(ReproError):
    """Base class for persistent-store failures."""


class StoreClosedError(StoreError):
    """An operation was attempted on a closed store."""


class UnknownRootError(StoreError, KeyError):
    """A named persistent root does not exist."""


class UnknownOidError(StoreError, KeyError):
    """An OID is not present in the store (referential-integrity breach)."""


class SerializationError(StoreError):
    """An object could not be serialised into the typed storage format."""


class DeserializationError(StoreError):
    """Stored bytes could not be decoded back into an object."""


class ClassNotRegisteredError(SerializationError):
    """A user-defined class was stored or fetched without being registered."""


class SchemaMismatchError(DeserializationError):
    """A stored object's schema fingerprint no longer matches its class."""


class TransactionError(StoreError):
    """Base class for transaction failures."""


class NoTransactionError(TransactionError):
    """Commit or abort was called with no transaction in progress."""


class TransactionAbortedError(TransactionError):
    """The enclosing transaction has been aborted."""


class CorruptHeapError(StoreError):
    """The on-disk heap or log failed an integrity check."""


class CommitPipelineError(StoreError):
    """A group/async commit pipeline failed; pending commits were
    aborted and the pipeline accepts no further work."""


class RemoteStoreError(StoreError):
    """A request to a remote store server failed.

    Raised by the ``remote:`` engine when the server reports an error
    that has no local exception type, and as the base class of every
    network-layer failure, so callers can catch the whole family."""


class WireProtocolError(RemoteStoreError):
    """A wire frame violated the store network protocol (bad CRC,
    oversized length, truncated frame, unknown opcode or a malformed
    payload).  The connection it arrived on is no longer trustworthy
    and is dropped."""


class RemoteDisconnectedError(RemoteStoreError, ConnectionError):
    """The server connection was lost (or timed out) before a reply
    arrived.  Idempotent reads retry through a fresh connection up to
    the engine's retry bound before surfacing this; writes surface it
    immediately — the caller cannot know whether the batch applied."""


# ---------------------------------------------------------------------------
# Hyper-program core
# ---------------------------------------------------------------------------

class HyperProgramError(ReproError):
    """Base class for hyper-program representation errors."""


class LinkPositionError(HyperProgramError, ValueError):
    """A hyper-link position lies outside its program text."""


class LinkKindError(HyperProgramError, ValueError):
    """A hyper-link was built with an inconsistent kind/value combination."""


class IllegalLinkInsertionError(HyperProgramError):
    """A hyper-link kind is not legal at the requested syntactic position."""


class LinkStoreError(HyperProgramError):
    """Base class for the password-protected link registry (Figure 7)."""


class BadPasswordError(LinkStoreError, PermissionError):
    """The password supplied to the link registry was wrong."""


class UnknownHyperProgramError(LinkStoreError, KeyError):
    """No hyper-program is registered under the given index."""


class UnknownHyperLinkError(LinkStoreError, KeyError):
    """A hyper-program has no link at the given index."""


class HyperProgramCollectedError(LinkStoreError):
    """The weakly-referenced hyper-program has been garbage collected."""


class CompilationError(HyperProgramError):
    """The textual form of a hyper-program failed to compile.

    Carries the generated *textual form* and the underlying compiler
    diagnostic, matching the paper's Section 5.4.2 behaviour of reporting
    errors in terms of the translated text.
    """

    def __init__(self, message: str, textual_form: str | None = None,
                 diagnostics: str | None = None):
        super().__init__(message)
        self.textual_form = textual_form
        self.diagnostics = diagnostics


class LoadingError(HyperProgramError):
    """A compiled class could not be loaded into the running system."""


# ---------------------------------------------------------------------------
# Java grammar / legality
# ---------------------------------------------------------------------------

class GrammarError(ReproError):
    """Base class for the Java-subset grammar package."""


class LexError(GrammarError):
    """The lexer met an unrecognised character sequence."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(message)
        self.line = line
        self.column = column


class ParseError(GrammarError):
    """The parser could not derive the requested production."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(message)
        self.line = line
        self.column = column


# ---------------------------------------------------------------------------
# Editor / browser / UI
# ---------------------------------------------------------------------------

class EditorError(ReproError):
    """Base class for editor failures."""


class EditPositionError(EditorError, ValueError):
    """An editing operation addressed a position outside the buffer."""


class NothingToUndoError(EditorError):
    """Undo/redo was requested with an empty history."""


class BrowserError(ReproError):
    """Base class for Object/Class Browser failures."""


class NoSuchPanelError(BrowserError, KeyError):
    """A browser panel id does not exist."""


class UIError(ReproError):
    """Base class for the windowing-simulation UI."""


class NoFrontWindowError(UIError):
    """An action needed a front-most window of a given kind and none exists."""


# ---------------------------------------------------------------------------
# Reflection / evolution
# ---------------------------------------------------------------------------

class ReflectionError(ReproError):
    """Base class for the meta-object / linguistic-reflection layer."""


class NoSuchMemberError(ReflectionError, AttributeError):
    """A requested method, field or constructor does not exist."""


class EvolutionError(ReproError):
    """A schema-evolution step failed; the transaction is rolled back."""
