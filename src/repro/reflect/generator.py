"""Type-safe linguistic reflection.

Section 4 of the paper: "the executing application generates new program
fragments in the form of source code, invokes a dynamically callable
compiler, and finally links the results of the compilation into its own
execution.  We use this technique to process a hyper-program."

A :class:`Generator` is a named source-producing function plus a
*validation* step: the generated source is checked (compiled) before it is
linked, so generation errors surface at generation time — the "type-safe"
part of the discipline.  Both the hyper-program compiler and the evolution
engine (:mod:`repro.evolve.evolution`) are clients.
"""

from __future__ import annotations

import ast
from typing import Any, Callable, Mapping

from repro.errors import CompilationError
from repro.reflect.loader import ClassLoader, LoadedModule


class Generator:
    """A reusable source generator.

    ``produce`` maps arbitrary inputs to Python source text.  ``generate``
    runs it and validates the output parses; ``generate_and_load`` also
    compiles and links the result into the running program.
    """

    def __init__(self, name: str,
                 produce: Callable[..., str],
                 loader: ClassLoader | None = None):
        self.name = name
        self._produce = produce
        self._loader = loader if loader is not None else ClassLoader()
        self.generation_count = 0

    def generate(self, *args: Any, **kwargs: Any) -> str:
        """Produce and validate source (parse check only, no execution)."""
        source = self._produce(*args, **kwargs)
        if not isinstance(source, str):
            raise CompilationError(
                f"generator {self.name!r} produced "
                f"{type(source).__name__}, not source text"
            )
        try:
            ast.parse(source)
        except SyntaxError as exc:
            raise CompilationError(
                f"generator {self.name!r} produced invalid source: {exc}",
                textual_form=source,
                diagnostics=str(exc),
            ) from exc
        self.generation_count += 1
        return source

    def generate_and_load(self, *args: Any,
                          bindings: Mapping[str, Any] | None = None,
                          **kwargs: Any) -> LoadedModule:
        """Generate, compile, and link into the running program."""
        source = self.generate(*args, **kwargs)
        return self._loader.load_source(source, bindings=bindings)

    @property
    def loader(self) -> ClassLoader:
        return self._loader

    def __repr__(self) -> str:
        return f"Generator({self.name!r}, generations={self.generation_count})"


def generate_and_load(produce: Callable[..., str], *args: Any,
                      bindings: Mapping[str, Any] | None = None,
                      loader: ClassLoader | None = None,
                      **kwargs: Any) -> LoadedModule:
    """One-shot linguistic reflection: generate source, compile, link."""
    generator = Generator(getattr(produce, "__name__", "anonymous"),
                          produce, loader)
    return generator.generate_and_load(*args, bindings=bindings, **kwargs)
