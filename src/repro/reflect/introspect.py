"""Reflection entry points.

Thin, cached constructors for the meta-objects of
:mod:`repro.reflect.metaobjects` — the analogue of ``obj.getClass()`` and
``Class.forName`` in the paper's Java.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ReflectionError
from repro.reflect.metaobjects import JClass, JConstructor, JField, JMethod

_class_cache: dict[type, JClass] = {}


def for_class(cls: type) -> JClass:
    """The (cached) :class:`JClass` meta-object for a Python class."""
    meta = _class_cache.get(cls)
    if meta is None:
        meta = JClass(cls)
        _class_cache[cls] = meta
    return meta


def for_object(obj: Any) -> JClass:
    """``obj.getClass()`` — the meta-object for an object's class."""
    return for_class(type(obj))


def method_of(cls: type, name: str) -> JMethod:
    """Look up a method meta-object, as ``Class.getMethod`` would."""
    return for_class(cls).get_method(name)


def field_of(cls: type, name: str) -> JField:
    """Look up a field meta-object, as ``Class.getField`` would."""
    return for_class(cls).get_field(name)


def constructor_of(cls: type) -> JConstructor:
    return for_class(cls).get_constructor()


def class_by_name(qualified: str, namespace: dict[str, Any] | None = None) -> JClass:
    """Resolve ``module.QualName`` to a meta-object (``Class.forName``).

    ``namespace`` lets callers resolve dynamically compiled classes that
    live in loader namespaces rather than importable modules.
    """
    if namespace is not None:
        simple = qualified.rsplit(".", 1)[-1]
        candidate = namespace.get(simple)
        if isinstance(candidate, type):
            return for_class(candidate)
    module_name, __, qualname = qualified.rpartition(".")
    if not module_name:
        raise ReflectionError(f"{qualified!r} is not a qualified class name")
    import importlib

    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ReflectionError(
            f"cannot import module {module_name!r} for class {qualified!r}"
        ) from exc
    target: Any = module
    for part in qualname.split("."):
        target = getattr(target, part, None)
        if target is None:
            raise ReflectionError(f"no class {qualified!r}")
    if not isinstance(target, type):
        raise ReflectionError(f"{qualified!r} names {target!r}, not a class")
    return for_class(target)
