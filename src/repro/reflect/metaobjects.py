"""Java-shaped meta-objects over Python classes.

The paper's textual-form generation (Section 4.2) is written against Java
core reflection: a link to a static method stores a ``Method`` instance and
the generator calls ``getName()`` and ``getDeclaringClass().getName()`` on
it; a link to an object calls ``getClass().getName()``.  These classes
reproduce that API surface over Python, so the hyper-programming core reads
exactly like the paper.

Names follow Java's camelCase *and* Python's snake_case — both spellings
are provided, with snake_case as the implementation and camelCase aliases
for fidelity to the quoted code.
"""

from __future__ import annotations

import inspect
from typing import Any, Optional

from repro.errors import NoSuchMemberError


class JClass:
    """Meta-object for a class (``java.lang.Class`` analogue)."""

    def __init__(self, cls: type):
        if not isinstance(cls, type):
            raise TypeError(f"JClass wraps classes, not {type(cls).__name__}")
        self._cls = cls

    # -- identity ---------------------------------------------------------

    @property
    def python_class(self) -> type:
        return self._cls

    def get_name(self) -> str:
        """Fully qualified name, ``module.QualName``."""
        return f"{self._cls.__module__}.{self._cls.__qualname__}"

    def get_simple_name(self) -> str:
        return self._cls.__name__

    def __eq__(self, other: object) -> bool:
        return isinstance(other, JClass) and other._cls is self._cls

    def __hash__(self) -> int:
        return hash(self._cls)

    def __repr__(self) -> str:
        return f"JClass({self.get_name()})"

    # -- hierarchy ----------------------------------------------------------

    def get_superclass(self) -> Optional["JClass"]:
        bases = [base for base in self._cls.__bases__ if base is not object]
        if bases:
            return JClass(bases[0])
        if self._cls is not object:
            return JClass(object)
        return None

    def get_interfaces(self) -> tuple["JClass", ...]:
        """Abstract bases beyond the first concrete superclass."""
        return tuple(JClass(base) for base in self._cls.__bases__[1:])

    def is_interface(self) -> bool:
        """True for classes that are purely abstract (no concrete methods)."""
        abstract = getattr(self._cls, "__abstractmethods__", frozenset())
        return bool(abstract)

    def is_instance(self, obj: Any) -> bool:
        return isinstance(obj, self._cls)

    # -- members ------------------------------------------------------------

    def get_methods(self) -> tuple["JMethod", ...]:
        """All callable members, including inherited ones, sorted by name."""
        methods = []
        for name, __ in inspect.getmembers(self._cls, callable):
            if name.startswith("__") and name != "__init__":
                continue
            if name == "__init__":
                continue
            methods.append(JMethod(self._cls, name))
        return tuple(sorted(methods, key=lambda m: m.get_name()))

    def get_method(self, name: str) -> "JMethod":
        attr = inspect.getattr_static(self._cls, name, None)
        if attr is None or not self._is_callable_member(name):
            raise NoSuchMemberError(
                f"{self.get_name()} has no method {name!r}"
            )
        return JMethod(self._cls, name)

    def _is_callable_member(self, name: str) -> bool:
        attr = inspect.getattr_static(self._cls, name, None)
        if isinstance(attr, (staticmethod, classmethod)):
            return True
        return callable(attr) or isinstance(attr, property) is False and \
            callable(getattr(self._cls, name, None))

    def get_fields(self) -> tuple["JField", ...]:
        """Declared persistent fields (annotations/slots) plus class-level
        non-callable attributes (static fields)."""
        from repro.store.registry import declared_fields

        names: list[str] = list(declared_fields(self._cls))
        for name, value in vars(self._cls).items():
            if name.startswith("_") or callable(value) or \
                    isinstance(value, (staticmethod, classmethod, property)):
                continue
            if name not in names:
                names.append(name)
        return tuple(JField(self._cls, name) for name in sorted(names))

    def get_field(self, name: str) -> "JField":
        for field in self.get_fields():
            if field.get_name() == name:
                return field
        raise NoSuchMemberError(f"{self.get_name()} has no field {name!r}")

    def get_constructor(self) -> "JConstructor":
        return JConstructor(self._cls)

    def new_instance(self, *args: Any, **kwargs: Any) -> Any:
        return self._cls(*args, **kwargs)

    # Java spellings ----------------------------------------------------------

    getName = get_name
    getSimpleName = get_simple_name
    getSuperclass = get_superclass
    getMethods = get_methods
    getMethod = get_method
    getFields = get_fields
    getField = get_field
    getConstructor = get_constructor
    newInstance = new_instance


class JMethod:
    """Meta-object for a method (``java.lang.reflect.Method`` analogue)."""

    def __init__(self, declaring_class: type, name: str):
        self._cls = declaring_class
        self._name = name
        if inspect.getattr_static(declaring_class, name, None) is None:
            raise NoSuchMemberError(
                f"{declaring_class.__qualname__} has no member {name!r}"
            )

    def get_name(self) -> str:
        return self._name

    def get_declaring_class(self) -> JClass:
        """The most-derived class in the MRO that actually defines the method."""
        for klass in self._cls.__mro__:
            if self._name in vars(klass):
                return JClass(klass)
        return JClass(self._cls)

    def is_static(self) -> bool:
        attr = inspect.getattr_static(self._cls, self._name)
        return isinstance(attr, staticmethod)

    def is_class_method(self) -> bool:
        attr = inspect.getattr_static(self._cls, self._name)
        return isinstance(attr, classmethod)

    def parameter_names(self) -> tuple[str, ...]:
        func = getattr(self._cls, self._name)
        try:
            params = list(inspect.signature(func).parameters)
        except (TypeError, ValueError):
            return ()
        if not self.is_static() and params and params[0] in ("self", "cls"):
            params = params[1:]
        return tuple(params)

    def invoke(self, target: Any, *args: Any, **kwargs: Any) -> Any:
        """Invoke as Java reflection would: ``target`` is ignored for
        static methods (pass ``None``)."""
        if self.is_static() or self.is_class_method():
            return getattr(self._cls, self._name)(*args, **kwargs)
        if target is None:
            raise TypeError(
                f"instance method {self._name} requires a target object"
            )
        return getattr(target, self._name)(*args, **kwargs)

    def qualified_name(self) -> str:
        """``Class.method`` — the string the textual form emits for a
        static-method hyper-link (paper Section 4.2)."""
        return f"{self.get_declaring_class().get_simple_name()}.{self._name}"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, JMethod) and other._cls is self._cls
                and other._name == self._name)

    def __hash__(self) -> int:
        return hash((self._cls, self._name))

    def __repr__(self) -> str:
        return f"JMethod({self.qualified_name()})"

    getName = get_name
    getDeclaringClass = get_declaring_class


class JField:
    """Meta-object for a field; supports both instance and static fields.

    A field meta-object is also how the system links to a *location* rather
    than a value (paper Sections 2 and 5.4.1): the location is
    (holder, field-name), and reading it at run time yields whatever the
    location currently contains — preserving delayed binding.
    """

    def __init__(self, declaring_class: type, name: str):
        self._cls = declaring_class
        self._name = name

    def get_name(self) -> str:
        return self._name

    def get_declaring_class(self) -> JClass:
        for klass in self._cls.__mro__:
            if self._name in vars(klass) or \
                    self._name in klass.__dict__.get("__annotations__", {}):
                return JClass(klass)
        return JClass(self._cls)

    def is_static(self) -> bool:
        """True when the field lives on the class itself (a class attribute
        that instances have not shadowed)."""
        return self._name in vars(self._cls) and \
            self._name not in self._cls.__dict__.get("__annotations__", {})

    def get(self, target: Any = None) -> Any:
        holder = self._cls if target is None else target
        try:
            return getattr(holder, self._name)
        except AttributeError:
            raise NoSuchMemberError(
                f"{holder!r} has no field {self._name!r}"
            ) from None

    def set(self, target: Any, value: Any) -> None:
        holder = self._cls if target is None else target
        setattr(holder, self._name, value)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, JField) and other._cls is self._cls
                and other._name == self._name)

    def __hash__(self) -> int:
        return hash((self._cls, self._name, "field"))

    def __repr__(self) -> str:
        return f"JField({self._cls.__qualname__}.{self._name})"

    getName = get_name
    getDeclaringClass = get_declaring_class


class JConstructor:
    """Meta-object for a constructor."""

    def __init__(self, cls: type):
        self._cls = cls

    def get_declaring_class(self) -> JClass:
        return JClass(self._cls)

    def get_name(self) -> str:
        return self._cls.__name__

    def parameter_names(self) -> tuple[str, ...]:
        init = inspect.getattr_static(self._cls, "__init__", None)
        if init is None or init is object.__init__:
            return ()
        try:
            params = list(inspect.signature(self._cls.__init__).parameters)
        except (TypeError, ValueError):
            return ()
        return tuple(params[1:])  # drop self

    def new_instance(self, *args: Any, **kwargs: Any) -> Any:
        return self._cls(*args, **kwargs)

    def __repr__(self) -> str:
        return f"JConstructor({self._cls.__qualname__})"

    getName = get_name
    getDeclaringClass = get_declaring_class
    newInstance = new_instance
