"""Reflection substrate.

Hyper-programming needs two reflective capabilities (paper, Section 1):

* **Core reflection** — the textual-form generator calls ``getName`` /
  ``getDeclaringClass`` on ``Method`` instances and ``getClass`` on linked
  objects (Section 4.2).  :mod:`repro.reflect.metaobjects` provides the
  Java-shaped meta-objects (:class:`JClass`, :class:`JMethod`,
  :class:`JField`, :class:`JConstructor`) over Python classes.
* **Linguistic reflection** — "the executing application generates new
  program fragments in the form of source code, invokes a dynamically
  callable compiler, and finally links the results of the compilation into
  its own execution" (Section 4).  :mod:`repro.reflect.generator` provides
  the generator discipline and :mod:`repro.reflect.loader` the
  ``ClassLoader`` analogue that links compiled code into the running
  program.
"""

from repro.reflect.metaobjects import JClass, JConstructor, JField, JMethod
from repro.reflect.introspect import for_class, for_object
from repro.reflect.loader import ClassLoader, LoadedModule
from repro.reflect.generator import Generator, generate_and_load

__all__ = [
    "JClass",
    "JMethod",
    "JField",
    "JConstructor",
    "for_class",
    "for_object",
    "ClassLoader",
    "LoadedModule",
    "Generator",
    "generate_and_load",
]
