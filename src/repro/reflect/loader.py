"""Dynamic loading — the ``ClassLoader`` analogue.

In the paper (Section 4.3), dynamic compilation produces ``.class`` files
which "must then be loaded into the running system and converted to a
Class object ... by using a subclass of the class Classloader", after which
``newInstance`` creates objects of the loaded class.

The Python analogue executes compiled code objects in a fresh module
namespace.  Each load gets its own namespace (like each Java class loader
defining its own namespace), and the loader can *inject* bindings — the
analogue of the generated ``import`` statements in the paper's Figure 8
textual form (``import compiler.DynamicCompiler; import Person;``).
"""

from __future__ import annotations

import types
from typing import Any, Mapping, Optional

from repro.errors import LoadingError


class LoadedModule:
    """The result of one dynamic load: a namespace plus its classes."""

    def __init__(self, name: str, namespace: dict[str, Any], source: str):
        self.name = name
        self.namespace = namespace
        self.source = source
        #: Classes defined by the load, in definition order.
        self.classes: tuple[type, ...] = tuple(
            value for value in namespace.values()
            if isinstance(value, type) and
            getattr(value, "__loaded_by__", None) is name
        )

    def get_class(self, simple_name: str) -> type:
        value = self.namespace.get(simple_name)
        if not isinstance(value, type):
            raise LoadingError(
                f"load {self.name!r} defines no class {simple_name!r}"
            )
        return value

    @property
    def principal_class(self) -> Optional[type]:
        """The first class defined — the paper's default principal class."""
        return self.classes[0] if self.classes else None

    def __repr__(self) -> str:
        return f"LoadedModule({self.name}, classes={[c.__name__ for c in self.classes]})"


class ClassLoader:
    """Loads compiled source into fresh namespaces and tracks the results."""

    def __init__(self, parent_bindings: Mapping[str, Any] | None = None):
        #: Bindings visible to every load (the "system classpath").
        self._parent = dict(parent_bindings or {})
        self._loads: dict[str, LoadedModule] = {}
        self._counter = 0

    def add_binding(self, name: str, value: Any) -> None:
        """Make ``value`` visible (as ``name``) to future loads."""
        self._parent[name] = value

    def load_source(self, source: str, *, name: str | None = None,
                    bindings: Mapping[str, Any] | None = None) -> LoadedModule:
        """Compile and execute ``source`` in a fresh namespace.

        ``bindings`` are extra names injected for this load only — the
        analogue of the textual form's generated imports.
        """
        self._counter += 1
        load_name = name or f"hyperload_{self._counter}"
        namespace: dict[str, Any] = {"__name__": load_name,
                                     "__builtins__": __builtins__}
        namespace.update(self._parent)
        if bindings:
            namespace.update(bindings)
        pre_existing = {key for key, value in namespace.items()
                        if isinstance(value, type)}
        try:
            code = compile(source, filename=f"<{load_name}>", mode="exec")
        except SyntaxError as exc:
            raise LoadingError(f"source for {load_name} does not compile: {exc}") from exc
        try:
            exec(code, namespace)
        except Exception as exc:
            raise LoadingError(f"executing {load_name} failed: {exc}") from exc
        # Tag classes defined by this load so LoadedModule can find them in
        # definition order (dicts preserve insertion order).
        for key, value in namespace.items():
            if isinstance(value, type) and key not in pre_existing and \
                    getattr(value, "__loaded_by__", None) is None:
                try:
                    value.__loaded_by__ = load_name
                except TypeError:
                    pass
        loaded = LoadedModule(load_name, namespace, source)
        self._loads[load_name] = loaded
        return loaded

    def as_module(self, loaded: LoadedModule) -> types.ModuleType:
        """Wrap a load as a real module object (handy for REPL use)."""
        module = types.ModuleType(loaded.name)
        module.__dict__.update(loaded.namespace)
        return module

    def loaded_names(self) -> tuple[str, ...]:
        return tuple(self._loads)

    def get_load(self, name: str) -> LoadedModule:
        try:
            return self._loads[name]
        except KeyError:
            raise LoadingError(f"no load named {name!r}") from None
