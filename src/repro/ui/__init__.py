"""The hyper-programming user interface (paper Section 5, Figure 12).

A small windowing simulation (window stack with a front-most window,
buttons, right-mouse-button events) that composes the hyper-program editor
and the OCB browser exactly as Section 5.4 describes:

* right button over a denotable entity in a browser window inserts a link
  into the *front-most editor* window;
* the editor's Insert Link button inserts a link to the object displayed
  in the *front-most browser* window;
* pressing a link button displays the entity in the top-most browser;
* Display Class and Go compile/run the hyper-program.

PJama could not persist AWT objects (Section 7); rendering here is text,
which exercises the same architecture without a display.
"""

from repro.ui.events import ButtonPress, Event, LinkPress, RightClick
from repro.ui.buttons import Button
from repro.ui.windows import BrowserWindow, EditorWindow, Window, WindowManager
from repro.ui.app import HyperProgrammingUI

__all__ = [
    "Event",
    "RightClick",
    "ButtonPress",
    "LinkPress",
    "Button",
    "Window",
    "EditorWindow",
    "BrowserWindow",
    "WindowManager",
    "HyperProgrammingUI",
]
