"""UI events.

The interactions Section 5.4.1 describes are modelled as small event
objects dispatched through the window manager: right-button presses over
panel entities (with the value/location half encoded) and named button
presses.
"""

from __future__ import annotations

from dataclasses import dataclass


class Event:
    """Base class for UI events."""


@dataclass(frozen=True)
class RightClick(Event):
    """Right mouse button over a denotable entity in a browser panel.

    ``half`` is ``"right"`` for a value link and ``"left"`` for a location
    link — "by pressing the right-hand mouse button over the right or left
    half of the panel respectively" (Section 5.4.1).
    """

    window_id: int
    panel_id: int
    entity_label: str
    half: str = "right"

    @property
    def as_location(self) -> bool:
        return self.half == "left"


@dataclass(frozen=True)
class ButtonPress(Event):
    """A named button pressed in a window (Insert Link, Go, ...)."""

    window_id: int
    button: str


@dataclass(frozen=True)
class LinkPress(Event):
    """A hyper-link button pressed inside an editor window."""

    window_id: int
    line: int
    link_index: int
