"""Windows and the window manager.

The paper's gestures depend on window stacking: links from the browser go
"into the front-most editor window", Insert Link links "the object
displayed in the front-most browser window", and pressing a link shows the
entity "in the top-most browser window" (Section 5.4.1).  The manager
keeps a stack, raises windows, and answers front-most-of-kind queries.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional, TypeVar

from repro.browser.ocb import OCB
from repro.editor.hyper import HyperProgramEditor
from repro.errors import NoFrontWindowError, UIError
from repro.ui.buttons import Button

_window_ids = itertools.count(1)

W = TypeVar("W", bound="Window")


class Window:
    """A titled window with named buttons."""

    def __init__(self, title: str):
        self.id = next(_window_ids)
        self.title = title
        self.buttons: dict[str, Button] = {}

    def add_button(self, button: Button) -> Button:
        self.buttons[button.name] = button
        return button

    def press(self, name: str) -> Any:
        try:
            button = self.buttons[name]
        except KeyError:
            raise UIError(
                f"window {self.title!r} has no button {name!r}; "
                f"available: {sorted(self.buttons)}"
            ) from None
        return button.press()

    def render(self) -> str:  # pragma: no cover - subclasses override
        return f"<{self.title}>"

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.id}, {self.title!r})"


class EditorWindow(Window):
    """A window wrapping one hyper-program editor."""

    def __init__(self, editor: HyperProgramEditor, title: str = ""):
        super().__init__(title or f"Hyper-Program Editor: "
                                  f"{editor.class_name or 'untitled'}")
        self.editor = editor

    def render(self) -> str:
        bar = " ".join(f"({name})" for name in self.buttons)
        body = self.editor.render()
        return f"== {self.title} ==\n{body}\n{bar}"


class BrowserWindow(Window):
    """A window wrapping one OCB browser."""

    def __init__(self, browser: OCB, title: str = "Object/Class Browser"):
        super().__init__(title)
        self.browser = browser

    def render(self) -> str:
        panels = self.browser.panels()
        parts = [f"== {self.title} =="]
        for panel in panels[-2:]:  # Figure 12 shows two panels
            parts.append(panel.render())
        bar = " ".join(f"({name})" for name in self.buttons)
        if bar:
            parts.append(bar)
        return "\n--\n".join(parts)


class WindowManager:
    """A window stack; the last element is the front-most window."""

    def __init__(self) -> None:
        self._stack: list[Window] = []

    def open(self, window: Window) -> Window:
        self._stack.append(window)
        return window

    def close(self, window: Window) -> None:
        if window in self._stack:
            self._stack.remove(window)

    def raise_window(self, window: Window) -> None:
        """Bring a window to the front."""
        if window not in self._stack:
            raise UIError(f"{window!r} is not open")
        self._stack.remove(window)
        self._stack.append(window)

    def window(self, window_id: int) -> Window:
        for window in self._stack:
            if window.id == window_id:
                return window
        raise UIError(f"no window with id {window_id}")

    def windows(self) -> tuple[Window, ...]:
        return tuple(self._stack)

    @property
    def front(self) -> Optional[Window]:
        return self._stack[-1] if self._stack else None

    def front_of_kind(self, kind: type[W]) -> W:
        """The front-most window of a given class."""
        for window in reversed(self._stack):
            if isinstance(window, kind):
                return window
        raise NoFrontWindowError(f"no open {kind.__name__}")

    def render(self) -> str:
        """All windows back-to-front (front-most last, as on screen)."""
        return "\n\n".join(window.render() for window in self._stack)
