"""Window buttons.

Each window carries named buttons (Insert Link, Display Class, Go, ...)
mapping to callables; the window manager dispatches
:class:`~repro.ui.events.ButtonPress` events to them.
"""

from __future__ import annotations

from typing import Any, Callable


class Button:
    """A named, pressable button."""

    def __init__(self, name: str, action: Callable[[], Any],
                 enabled: bool = True):
        self.name = name
        self._action = action
        self.enabled = enabled
        self.press_count = 0

    def press(self) -> Any:
        if not self.enabled:
            raise RuntimeError(f"button {self.name!r} is disabled")
        self.press_count += 1
        return self._action()

    def __repr__(self) -> str:
        state = "" if self.enabled else " (disabled)"
        return f"Button({self.name!r}{state})"
