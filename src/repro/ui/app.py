"""The integrated hyper-programming user interface (Figure 12).

"The user interface to the hyper-programming system has two components:
the hyper-program editor, which is used to construct and edit
hyper-programs, and the object/class browser, which is used to select the
persistent data to be linked into the hyper-programs."  (Section 5)

:class:`HyperProgrammingUI` wires the two together over a window manager
and implements the gestures of Section 5.4:

* :meth:`right_click` — a hyper-link to the selected entity is inserted
  into the front-most editor window (left half = location link);
* the editor's **Insert Link** button — a link to the object displayed in
  the front-most browser window is inserted into the selected editor;
* :meth:`press_link` — the associated entity is displayed in the top-most
  browser window;
* **Display Class** and **Go** — compile/load/execute (Section 5.4.2).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, TYPE_CHECKING

from repro.browser.ocb import OCB
from repro.core.editform import HyperLink
from repro.editor.hyper import HyperProgramEditor
from repro.errors import NoFrontWindowError, UIError
from repro.ui.buttons import Button
from repro.ui.events import ButtonPress, Event, LinkPress, RightClick
from repro.ui.windows import (
    BrowserWindow,
    EditorWindow,
    WindowManager,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.store.objectstore import ObjectStore


class HyperProgrammingUI:
    """One hyper-programming session: windows, gestures, actions."""

    def __init__(self, store: "ObjectStore | None" = None):
        self.store = store
        self.windows = WindowManager()
        self.event_log: list[Event] = []

    # ------------------------------------------------------------------
    # window creation
    # ------------------------------------------------------------------

    def open_editor(self, class_name: str = "",
                    check_insertions: bool = False) -> EditorWindow:
        editor = HyperProgramEditor(class_name,
                                    check_insertions=check_insertions)
        window = EditorWindow(editor)
        window.add_button(Button("Insert Link", lambda: self.insert_link_from_front_browser(window)))
        window.add_button(Button("Display Class", lambda: self.display_class(window)))
        window.add_button(Button("Go", lambda: self.go(window)))
        return self.windows.open(window)  # type: ignore[return-value]

    def open_browser(self, browser: Optional[OCB] = None) -> BrowserWindow:
        if browser is None:
            browser = OCB(self.store)
        window = BrowserWindow(browser)
        return self.windows.open(window)  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # gestures (Section 5.4.1)
    # ------------------------------------------------------------------

    def right_click(self, event: RightClick) -> HyperLink:
        """Right button over a denotable entity in a browser window:
        insert a hyper-link to it into the front-most editor window."""
        self.event_log.append(event)
        window = self.windows.window(event.window_id)
        if not isinstance(window, BrowserWindow):
            raise UIError("right-click link insertion starts in a browser")
        entity = window.browser.select_entity(
            event.panel_id, event.entity_label,
            as_location=event.as_location)
        editor_window = self.windows.front_of_kind(EditorWindow)
        link = entity.make_link(as_location=event.as_location)
        return editor_window.editor.insert_link(link)

    def insert_link_from_front_browser(self,
                                       editor_window: EditorWindow
                                       ) -> HyperLink:
        """The editor's Insert Link button: link to the object displayed
        in the front-most browser window, inserted into this editor."""
        browser_window = self.windows.front_of_kind(BrowserWindow)
        panel = browser_window.browser.front_panel
        if panel is None:
            raise NoFrontWindowError("the front browser has no open panel")
        entities = panel.entities()
        if not entities:
            raise UIError("the front panel shows nothing linkable")
        link = entities[0].make_link()
        return editor_window.editor.insert_link(link)

    def press_link(self, event: LinkPress) -> Any:
        """Pressing a link button in an editor: display the associated
        entity in the top-most browser window."""
        self.event_log.append(event)
        window = self.windows.window(event.window_id)
        if not isinstance(window, EditorWindow):
            raise UIError("link buttons live in editor windows")
        links = window.editor.basic.form.links_on_line(event.line)
        if not 0 <= event.link_index < len(links):
            raise UIError(
                f"line {event.line} has no link {event.link_index}"
            )
        entity = window.editor.press_link(links[event.link_index])
        browser_window = self.windows.front_of_kind(BrowserWindow)
        browser_window.browser.open_object(entity)
        return entity

    def press_button(self, event: ButtonPress) -> Any:
        self.event_log.append(event)
        return self.windows.window(event.window_id).press(event.button)

    def drag_entity(self, browser_window: BrowserWindow, panel_id: int,
                    entity_label: str, editor_window: EditorWindow,
                    position: tuple[int, int],
                    as_location: bool = False) -> HyperLink:
        """Drag-and-drop link insertion (the paper's planned gesture,
        Section 5.4.1): drop a browser entity at an explicit editor
        position rather than at the cursor."""
        entity = browser_window.browser.select_entity(
            panel_id, entity_label, as_location=as_location)
        link = entity.make_link(as_location=as_location)
        line, column = position
        editor_window.editor.basic.move_cursor(line, column)
        return editor_window.editor.insert_link(link)

    # ------------------------------------------------------------------
    # actions (Section 5.4.2)
    # ------------------------------------------------------------------

    def display_class(self, editor_window: EditorWindow) -> Any:
        """Display Class: compile and open the principal class in the
        front-most browser."""
        principal = editor_window.editor.display_class()
        browser_window = self.windows.front_of_kind(BrowserWindow)
        browser_window.browser.open_class(principal)
        return principal

    def go(self, editor_window: EditorWindow,
           args: Sequence[str] | None = None) -> Any:
        """Go: compile (if needed) and execute the main method."""
        return editor_window.editor.go(args)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def render(self) -> str:
        return self.windows.render()
