"""Hyper-Programming in Java — a complete Python reproduction.

Reproduces Zirintsis, Dunstan, Kirby & Morrison, "Hyper-Programming in
Java", Proc. 3rd International Workshop on Persistence and Java (PJW3),
1998: a hyper-programming system (programs containing both text and links
to persistent objects) together with every substrate it needs — an
orthogonally persistent object store, core and linguistic reflection, a
dynamic compiler, the three hyper-program representations, a three-layer
editor, an object/class browser, and the integrating user interface.

Quickstart::

    from repro import (ClassRegistry, ObjectStore, LinkStore,
                       DynamicCompiler, HyperProgram, HyperLinkHP,
                       persistent)

    registry = ClassRegistry()          # one registry threads all layers
    store = ObjectStore.open("/tmp/demo-store", registry=registry)
    links = LinkStore(store)            # resolves through store.registry
    DynamicCompiler.install(links)
    ...

The persistent store runs over a pluggable storage engine —
``ObjectStore.open(directory)`` uses the durable
:class:`~repro.store.engine.FileEngine`, ``ObjectStore.in_memory()`` an
ephemeral :class:`~repro.store.engine.MemoryEngine`, and
:func:`~repro.store.open_store` picks any backend by URL
(``"file:/path"``, ``"sqlite:/path"``, ``"memory:"``,
``"sharded:4:sqlite:/path"`` — see ``docs/architecture.md``).

See ``examples/quickstart.py`` for the paper's MarryExample end to end.
"""

from repro.errors import ReproError
from repro.store import (
    ClassRegistry,
    FileEngine,
    MemoryEngine,
    ObjectStore,
    PersistentWeakRef,
    ShardedEngine,
    SqliteEngine,
    StorageEngine,
    open_store,
    persistent,
)
from repro.reflect import (
    ClassLoader,
    Generator,
    JClass,
    JConstructor,
    JField,
    JMethod,
    for_class,
    for_object,
)
from repro.core import (
    ArrayElementLocation,
    ClassRef,
    ConstructorRef,
    DynamicCompiler,
    EditForm,
    FieldLocation,
    FieldRef,
    HyperLine,
    HyperLink,
    HyperLinkHP,
    HyperProgram,
    LinkKind,
    LinkStore,
    MethodRef,
    editing_to_storage,
    generate_textual_form,
    is_legal_insertion,
    production_for_kind,
    storage_to_editing,
)

# Single-sourced from pyproject.toml via package metadata; the literal
# fallback only serves PYTHONPATH-based runs where repro isn't installed.
try:
    from importlib.metadata import PackageNotFoundError, version
    __version__ = version("repro")
except PackageNotFoundError:
    __version__ = "1.2.0"

__all__ = [
    "ReproError",
    "ObjectStore",
    "open_store",
    "StorageEngine",
    "FileEngine",
    "MemoryEngine",
    "SqliteEngine",
    "ShardedEngine",
    "ClassRegistry",
    "PersistentWeakRef",
    "persistent",
    "JClass",
    "JMethod",
    "JField",
    "JConstructor",
    "for_class",
    "for_object",
    "ClassLoader",
    "Generator",
    "LinkKind",
    "production_for_kind",
    "HyperProgram",
    "HyperLinkHP",
    "HyperLine",
    "HyperLink",
    "EditForm",
    "MethodRef",
    "ClassRef",
    "ConstructorRef",
    "FieldRef",
    "FieldLocation",
    "ArrayElementLocation",
    "LinkStore",
    "DynamicCompiler",
    "editing_to_storage",
    "storage_to_editing",
    "generate_textual_form",
    "is_legal_insertion",
    "__version__",
]
