"""Orthogonally persistent object store — the PJama-analogue substrate.

The paper's hyper-programming system rests on "a persistent store with
root(s), reachability and referential integrity" (Section 1).  This package
provides that substrate for Python:

* :class:`~repro.store.objectstore.ObjectStore` — named roots, persistence by
  reachability, an identity map so every OID has at most one live object, and
  referential integrity (an OID reachable from a stored object always
  resolves).
* :class:`~repro.store.registry.ClassRegistry` — typed-object fidelity: every
  stored instance is re-bound to its registered class and checked against a
  schema fingerprint on fetch, which plain pickle does not guarantee.
* :mod:`~repro.store.engine` — pluggable storage engines behind one
  atomic-batch interface: :class:`~repro.store.engine.FileEngine` (a
  slotted-page heap file plus a write-ahead log, giving stabilisation
  (checkpoint) and crash recovery) and
  :class:`~repro.store.engine.MemoryEngine` (ephemeral, for scratch
  stores and tests).
* :mod:`~repro.store.gc` — a reachability collector over the stored graph
  with persistent *weak references*, as required by the paper's Figure 7 for
  collectable hyper-programs.
* :mod:`~repro.store.transactions` — begin/commit/abort built on the WAL, as
  assumed by the paper's Section 7 evolution discussion.
"""

from repro.store.oids import Oid, OidAllocator
from repro.store.registry import ClassRegistry, persistent
from repro.store.serializer import Serializer, Record
from repro.store.engine import (
    FileEngine,
    MemoryEngine,
    StorageEngine,
    WriteBatch,
)
from repro.store.objectstore import ObjectStore
from repro.store.weakrefs import PersistentWeakRef
from repro.store.transactions import Transaction

__all__ = [
    "Oid",
    "OidAllocator",
    "ClassRegistry",
    "persistent",
    "Serializer",
    "Record",
    "StorageEngine",
    "WriteBatch",
    "FileEngine",
    "MemoryEngine",
    "ObjectStore",
    "PersistentWeakRef",
    "Transaction",
]
