"""Orthogonally persistent object store — the PJama-analogue substrate.

The paper's hyper-programming system rests on "a persistent store with
root(s), reachability and referential integrity" (Section 1).  This package
provides that substrate for Python:

* :class:`~repro.store.objectstore.ObjectStore` — named roots, persistence by
  reachability, an identity map so every OID has at most one live object, and
  referential integrity (an OID reachable from a stored object always
  resolves).
* :class:`~repro.store.registry.ClassRegistry` — typed-object fidelity: every
  stored instance is re-bound to its registered class and checked against a
  schema fingerprint on fetch, which plain pickle does not guarantee.
* :mod:`~repro.store.engine` — pluggable storage engines behind one
  atomic-batch interface: :class:`~repro.store.engine.FileEngine` (a
  slotted-page heap file plus a write-ahead log, giving stabilisation
  (checkpoint) and crash recovery),
  :class:`~repro.store.engine.MemoryEngine` (ephemeral, for scratch
  stores and tests), :class:`~repro.store.engine.SqliteEngine` (one
  transactional SQLite file) and
  :class:`~repro.store.engine.ShardedEngine` (the OID space partitioned
  over N child engines with a two-phase cross-shard commit).  The
  :func:`open_store` factory picks a backend by URL.
* :mod:`~repro.store.gc` — a reachability collector over the stored graph
  with persistent *weak references*, as required by the paper's Figure 7 for
  collectable hyper-programs.
* :mod:`~repro.store.transactions` — begin/commit/abort built on the WAL, as
  assumed by the paper's Section 7 evolution discussion.
"""

from repro.store.oids import Oid, OidAllocator
from repro.store.registry import ClassRegistry, persistent
from repro.store.serializer import Record, RecordCodec, Serializer, parse_codec
from repro.store.engine import (
    FileEngine,
    MemoryEngine,
    ShardedEngine,
    SqliteEngine,
    StorageEngine,
    WriteBatch,
    engine_from_url,
)
from repro.store.commit import (
    AsyncPolicy,
    CommitPipeline,
    CommitTicket,
    DurabilityPolicy,
    GroupPolicy,
    PipelinedEngine,
    SyncPolicy,
)
from repro.store.serve import FetchPlanner, ObjectCache, ReadWriteLock
from repro.store.net import RemoteEngine, RouterEngine, StoreServer
from repro.store.objectstore import ObjectStore
from repro.store.weakrefs import PersistentWeakRef
from repro.store.transactions import Transaction


def open_store(url: str, registry=None) -> ObjectStore:
    """Open a store over the backend named by a storage URL.

    Understood URLs (see :mod:`repro.store.engine.factory`):

    * ``"file:/path"`` (or a bare path) — the heap + WAL file backend;
    * ``"sqlite:/path"`` — one transactional SQLite file;
    * ``"memory:"`` — ephemeral, nothing survives close;
    * ``"sharded:N:CHILD-URL"`` — N shards of the child backend, e.g.
      ``"sharded:4:sqlite:/path"``.

    A query string tunes the stack: engine keys are listed in the
    factory module; store-level keys are ``?cache_objects=N`` (bound
    the live-object cache — at most N clean objects pinned strongly,
    the tail demoted to weak references), ``?compress=zlib:1`` (a
    per-record codec for new writes; ``zlib`` / ``lzma``, optional
    ``:level``) and ``?encode_workers=N`` (stabilise encoder pool
    size, ``0`` = inline).
    """
    return ObjectStore.from_url(url, registry=registry)


__all__ = [
    "Oid",
    "OidAllocator",
    "ClassRegistry",
    "persistent",
    "Serializer",
    "Record",
    "RecordCodec",
    "parse_codec",
    "StorageEngine",
    "WriteBatch",
    "FileEngine",
    "MemoryEngine",
    "SqliteEngine",
    "ShardedEngine",
    "PipelinedEngine",
    "CommitPipeline",
    "CommitTicket",
    "DurabilityPolicy",
    "SyncPolicy",
    "GroupPolicy",
    "AsyncPolicy",
    "engine_from_url",
    "RemoteEngine",
    "RouterEngine",
    "StoreServer",
    "ObjectStore",
    "ObjectCache",
    "ReadWriteLock",
    "FetchPlanner",
    "open_store",
    "PersistentWeakRef",
    "Transaction",
]
