"""The ephemeral in-process backend.

``MemoryEngine`` keeps the object table, root table and allocator cursor
in plain dictionaries.  It exists for scratch stores (a browser session
over objects that were never meant to outlive the process) and for test
runs, where it removes all file I/O from the store contract tests.

Durability semantics are honest rather than faked: a batch is "durable"
for exactly as long as the engine object lives, and *nothing* survives
:meth:`MemoryEngine.close` — the engine-specific tests pin that a fresh
engine over the same (nonexistent) location starts empty.  Atomicity
still holds: :meth:`apply` stages the whole batch before publishing it,
so a failing write leaves prior state untouched.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import UnknownOidError
from repro.store.engine.base import StorageEngine, WriteBatch
from repro.store.oids import FIRST_OID, Oid
from repro.store.serve.locks import ReadWriteLock


class MemoryEngine(StorageEngine):
    """Ephemeral dict-backed storage; fast, atomic, gone on close."""

    name = "memory"

    def __init__(self) -> None:
        super().__init__()
        self._records: dict[Oid, bytes] = {}
        self._roots: dict[str, Oid] = {}
        self._next_oid = int(FIRST_OID)
        # Readers share; apply publishes exclusively, so a concurrent
        # reader sees each batch all-or-nothing (a half-published batch
        # could otherwise expose a parent whose child write is still
        # pending in the same batch).
        self._state_lock = ReadWriteLock()

    # -- reads ----------------------------------------------------------

    def read(self, oid: Oid) -> bytes:
        self._check_open()
        with self._state_lock.read_locked():
            try:
                return self._records[oid]
            except KeyError:
                raise UnknownOidError(int(oid)) from None

    def fetch_many(self, oids: Iterable[Oid]) -> dict[Oid, bytes]:
        self._check_open()
        with self._state_lock.read_locked():
            records = self._records
            return {oid: records[oid] for oid in oids if oid in records}

    def contains(self, oid: Oid) -> bool:
        return oid in self._records

    def oids(self) -> tuple[Oid, ...]:
        with self._state_lock.read_locked():
            return tuple(self._records)

    @property
    def object_count(self) -> int:
        return len(self._records)

    def roots(self) -> dict[str, Oid]:
        return dict(self._roots)

    @property
    def next_oid(self) -> int:
        return self._next_oid

    @property
    def page_count(self) -> int:
        # No pages; report one "unit" per stored record for statistics.
        return len(self._records)

    # -- writes ---------------------------------------------------------

    def apply(self, batch: WriteBatch) -> None:
        self._check_open()
        # Stage first so a bad write (non-bytes payload) cannot publish a
        # half-applied batch.
        staged = [(oid, bytes(raw)) for oid, raw in batch.writes]
        with self._state_lock.write_locked():
            for oid, raw in staged:
                self._records[oid] = raw
                self.record_writes += 1
            for oid in batch.deletes:
                self._records.pop(oid, None)
            if batch.roots is not None:
                self._roots = dict(batch.roots)
            if batch.next_oid is not None:
                self._next_oid = max(self._next_oid, batch.next_oid)
        self.batches_applied += 1

    def close(self) -> None:
        if self._closed:
            return
        # Nothing persists: dropping the dictionaries is the whole point.
        self._records.clear()
        self._roots.clear()
        super().close()
