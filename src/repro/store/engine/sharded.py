"""The scale-out backend: the OID space partitioned over child engines.

``ShardedEngine`` composes N child :class:`StorageEngine` instances —
any backends, including a mixture — into one engine.  Record ``oid``
lives on shard ``oid % N``; the root table and the allocator cursor live
on shard 0, the **meta shard**.  Reads and per-shard writes fan out in
parallel on a small thread pool (one worker per shard), which is where
the horizontal win comes from: a wide batch becomes N narrower batches
whose I/O overlaps.

Atomicity across shards cannot be delegated to the children (each child
is only atomic for *its* slice), so :meth:`ShardedEngine.apply` runs a
two-phase protocol built entirely out of the children's own atomic
``apply``:

1. **Prepare** — each involved shard durably stages its encoded
   sub-batch under the reserved staging OID (one atomic child batch per
   shard, in parallel), tagged with a fresh per-batch token; then a
   :meth:`StorageEngine.sync` barrier on those shards.
2. **Commit marker** — shard 0 durably writes the reserved marker
   record carrying the same token, followed by a ``sync`` barrier.
   This is the commit point for the whole batch.
3. **Apply** — each involved shard applies its sub-batch and deletes its
   staging record *in one atomic child batch* (parallel again), then the
   marker is cleared.

Opening the engine recovers: a marker on shard 0 means the batch
committed, so any shard still holding a staging record *with the
marker's token* redoes it (idempotent — record writes are put-by-OID,
deletes tolerate absence, the allocator cursor is monotonic); staging
records with any other token, or any staging found with no marker,
belong to a batch that never committed and are discarded.  A crash at
any point therefore yields the old state or the new state across *all*
shards, never a mixture.

The ``sync`` barriers and the token make this hold even against
power-loss reordering between shard files: stagings are on stable
storage before the marker, the marker before any phase-3 effect, and a
stale marker whose lazy clear was lost can never adopt a later batch's
stagings (token mismatch).  The cross-shard guarantee is still only as
strong as each child's own durability — a ``MemoryEngine`` shard keeps
nothing across close, honestly.

Reserved OIDs sit at ``2**62`` and above, far outside anything the
allocator will ever issue; they are filtered out of every aggregate view
(``oids``, ``object_count``, ``contains``), so the staging machinery —
and the shard-topology record on shard 0 (the shard count is persisted
on first open and validated on every reopen, so a store can never be
silently opened with the wrong ``N`` and misroute every OID) — is
invisible above the engine layer.

Like every other backend, the engine assumes a single writer at a time;
the parallelism is per-batch fan-out, not concurrent ``apply`` calls.
This is the broker arrangement (ZBroker, PAPERS.md): one logical store
API routed over many physical stores.

Children may themselves be
:class:`~repro.store.commit.pipeline.PipelinedEngine` wrappers (the URL
factory builds them from ``sharded:N:CHILD?shard_durability=async``):
the prepare and commit-marker phases still order durability through the
children's ``sync`` barriers (a pipelined ``sync`` drains the shard's
queue first), while the phase-3 applies ride the pipelines *off the
caller's critical path*: ``apply`` returns after the commit marker is
durable, and a background settle task flushes the involved shards
before submitting the marker deletion (a marker deletion durable ahead
of a shard's staged apply would make recovery discard that shard's
committed sub-batch; on the meta shard the deletion queues behind its
own phase-3 apply, so FIFO order covers it).  Crash recovery covers
every window (marker + staging redo, token-guarded discard), and the
next ``apply``/``sync``/``flush``/``close`` awaits the settle.  The net
effect is that the two-phase protocol stops multiplying the per-batch
fsync count.
"""

from __future__ import annotations

import os
import struct
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Optional, Sequence

from repro.errors import UnknownOidError
from repro.store.engine.base import StorageEngine, WriteBatch
from repro.store.obs.trace import current_span, run_with_span
from repro.store.obs.trace import span as trace_span
from repro.store.oids import Oid

#: OIDs at or above this value are reserved for the sharding protocol.
RESERVED_OID_BASE = 1 << 62

#: Per-shard staging record holding the encoded prepared sub-batch.
STAGE_OID = Oid(RESERVED_OID_BASE)

#: Shard-0 commit marker: present iff a prepared batch has committed.
MARKER_OID = Oid(RESERVED_OID_BASE + 1)

#: Shard-0 topology record: the shard count the store was created with.
TOPOLOGY_OID = Oid(RESERVED_OID_BASE + 2)

#: Bytes of per-batch token prefixed to staging and marker records.
_TOKEN_LEN = 16

#: Batches with at most this many record operations run their staging
#: and apply fans inline on the committing thread rather than on the
#: shard pool — the pool's per-item GIL handoff costs more than the
#: overlap buys for a handful of writes.
_INLINE_FAN_OPS = 16


def encode_batch(batch: WriteBatch) -> bytes:
    """Serialise a :class:`WriteBatch` for staging (little-endian framed)."""
    parts = [struct.pack("<I", len(batch.writes))]
    for oid, raw in batch.writes:
        raw = bytes(raw)
        parts.append(struct.pack("<QI", int(oid), len(raw)))
        parts.append(raw)
    parts.append(struct.pack("<I", len(batch.deletes)))
    for oid in batch.deletes:
        parts.append(struct.pack("<Q", int(oid)))
    if batch.roots is None:
        parts.append(b"\x00")
    else:
        parts.append(b"\x01")
        parts.append(struct.pack("<I", len(batch.roots)))
        for name, oid in batch.roots.items():
            encoded = name.encode("utf-8")
            parts.append(struct.pack("<HQ", len(encoded), int(oid)))
            parts.append(encoded)
    if batch.next_oid is None:
        parts.append(b"\x00")
    else:
        parts.append(b"\x01")
        parts.append(struct.pack("<Q", batch.next_oid))
    return b"".join(parts)


def decode_batch(blob: bytes) -> WriteBatch:
    """Inverse of :func:`encode_batch`."""
    batch = WriteBatch()
    view = memoryview(blob)
    offset = 0

    def take(fmt: str) -> tuple:
        nonlocal offset
        size = struct.calcsize(fmt)
        values = struct.unpack_from(fmt, view, offset)
        offset += size
        return values

    (write_count,) = take("<I")
    for _ in range(write_count):
        oid, length = take("<QI")
        batch.write(Oid(oid), bytes(view[offset:offset + length]))
        offset += length
    (delete_count,) = take("<I")
    for _ in range(delete_count):
        (oid,) = take("<Q")
        batch.delete(Oid(oid))
    (has_roots,) = take("<B")
    if has_roots:
        roots: dict[str, Oid] = {}
        (root_count,) = take("<I")
        for _ in range(root_count):
            name_len, oid = take("<HQ")
            name = bytes(view[offset:offset + name_len]).decode("utf-8")
            offset += name_len
            roots[name] = Oid(oid)
        batch.set_roots(roots)
    (has_next,) = take("<B")
    if has_next:
        (next_oid,) = take("<Q")
        batch.advance_next_oid(next_oid)
    return batch


class ShardedEngine(StorageEngine):
    """N child engines behind one engine; two-phase atomic batches."""

    name = "sharded"

    def __init__(self, children: Sequence[StorageEngine]):
        super().__init__()
        children = tuple(children)
        if not children:
            raise ValueError("ShardedEngine needs at least one child engine")
        if len({id(child) for child in children}) != len(children):
            raise ValueError("each shard needs its own engine instance")
        for child in children:
            if child.closed:
                raise ValueError("child engines must be open")
        self._children = children
        # An async child acknowledges before durability, so the engine
        # as a whole does too (the single-shard fast path is exactly
        # one child apply); durability-sensitive callers (transaction
        # commit, the store's stabilise wait) check this flag.
        self.asynchronous = any(child.asynchronous for child in children)
        self._pool = ThreadPoolExecutor(max_workers=len(children),
                                        thread_name_prefix="repro-shard")
        #: Token of the batch currently between prepare and commit (also
        #: lets the fault-injection tests drive the phases separately).
        self._batch_token: Optional[bytes] = None
        #: The in-flight background settle (marker clear) of the last
        #: cross-shard apply, if any; awaited before the next protocol
        #: action (single writer at a time).
        self._settle_future = None
        # Native 2PC telemetry (pull gauges via obs): cross-shard commit
        # count and wall time per protocol phase.
        self.two_phase_commits = 0
        self.prepare_ns = 0
        self.marker_ns = 0
        self.apply_ns = 0
        try:
            self._check_topology()
            self._recover()
        except BaseException:
            # A failed open must not leak the children (or the pool):
            # the engine took ownership of them above.
            self._pool.shutdown(wait=True)
            for child in children:
                child.close()
            raise

    def _check_topology(self) -> None:
        """Pin the shard count: ``oid % N`` routing silently scatters
        records if a store is ever reopened with a different ``N``."""
        meta = self._children[0]
        blob = struct.pack("<I", len(self._children))
        if meta.contains(TOPOLOGY_OID):
            (stored,) = struct.unpack("<I", meta.read(TOPOLOGY_OID))
            if stored != len(self._children):
                raise ValueError(
                    f"store was created with {stored} shards, cannot open "
                    f"it with {len(self._children)}"
                )
        else:
            meta.apply(WriteBatch().write(TOPOLOGY_OID, blob))

    # -- topology -------------------------------------------------------

    @property
    def children(self) -> tuple[StorageEngine, ...]:
        """The child engines, by shard index (tests, fault injection)."""
        return self._children

    @property
    def shard_count(self) -> int:
        return len(self._children)

    def shard_of(self, oid: Oid) -> int:
        """The index of the shard that owns ``oid``."""
        return int(oid) % len(self._children)

    def _fan(self, fn, items: Iterable, inline: bool = False) -> list:
        """Run ``fn`` over ``items`` on the shard pool; propagate errors.

        ``inline=True`` runs the items sequentially on the calling
        thread instead.  Write-side fans use it for small batches: a
        pool dispatch is a GIL handoff per item, and when concurrent
        reader threads are saturating the interpreter, every handoff
        can cost many scheduler switch intervals — far more than the
        few records of staging work it would overlap.
        """
        if inline:
            return [fn(item) for item in items]
        active = current_span()
        if active is not None:
            # Contextvars do not follow work onto pool threads; carry
            # the active span across so per-shard leaf spans (a child
            # WAL fsync, a remote request) attach to the right trace.
            return list(self._pool.map(
                lambda item: run_with_span(active, fn, item), items))
        return list(self._pool.map(fn, items))

    @staticmethod
    def _small(subs: dict[int, WriteBatch]) -> bool:
        """Whether a partitioned batch is too small to be worth fanning
        out (see :meth:`_fan`)."""
        ops = sum(len(sub.writes) + len(sub.deletes)
                  for sub in subs.values())
        return ops <= _INLINE_FAN_OPS

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        error: Optional[BaseException] = None
        try:
            self._await_settle()
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            error = exc
        self._pool.shutdown(wait=True)
        # Close every child even if one raises (a pipelined child's
        # close surfaces its commit failures); re-raise the first error
        # once the rest are released.
        for child in self._children:
            try:
                child.close()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if error is None:
                    error = exc
        super().close()
        if error is not None:
            raise error

    # -- reads ----------------------------------------------------------

    def read(self, oid: Oid) -> bytes:
        self._check_open()
        if int(oid) >= RESERVED_OID_BASE:
            raise UnknownOidError(int(oid))
        return self._children[self.shard_of(oid)].read(oid)

    def contains(self, oid: Oid) -> bool:
        self._check_open()
        if int(oid) >= RESERVED_OID_BASE:
            return False
        return self._children[self.shard_of(oid)].contains(oid)

    def fetch_many(self, oids: Iterable[Oid]) -> dict[Oid, bytes]:
        """Bulk read, fanned out per shard on the shard pool: the
        closure planner's wave of N OIDs becomes at most ``shard_count``
        concurrent child bulk reads whose I/O overlaps — this is the
        read-path twin of the write fan-out."""
        self._check_open()
        per_shard: dict[int, list[Oid]] = {}
        for oid in oids:
            if int(oid) >= RESERVED_OID_BASE:
                continue
            per_shard.setdefault(self.shard_of(oid), []).append(oid)
        if not per_shard:
            return {}
        if len(per_shard) == 1:
            shard, wanted = next(iter(per_shard.items()))
            return self._children[shard].fetch_many(wanted)
        with trace_span("fanout.fetch_many"):
            active = current_span()
            futures = [
                self._pool.submit(run_with_span, active,
                                  self._children[shard].fetch_many,
                                  wanted)
                for shard, wanted in per_shard.items()
            ]
            found: dict[Oid, bytes] = {}
            for future in futures:
                found.update(future.result())
        return found

    def oids(self) -> tuple[Oid, ...]:
        self._check_open()
        per_shard = self._fan(
            lambda child: [oid for oid in child.oids()
                           if int(oid) < RESERVED_OID_BASE],
            self._children,
        )
        return tuple(oid for shard_oids in per_shard for oid in shard_oids)

    @property
    def object_count(self) -> int:
        # One reserved-OID-filtered snapshot per shard (oids() already
        # does exactly that): counting and filtering in a single read
        # per child keeps the background marker clear — which may land
        # between two reads of the meta shard — from skewing the count.
        return len(self.oids())

    def roots(self) -> dict[str, Oid]:
        self._check_open()
        return self._children[0].roots()

    @property
    def next_oid(self) -> int:
        self._check_open()
        return self._children[0].next_oid

    @property
    def page_count(self) -> int:
        self._check_open()
        return sum(child.page_count for child in self._children)

    # -- writes: the two-phase protocol ---------------------------------

    def partition(self, batch: WriteBatch) -> dict[int, WriteBatch]:
        """Split ``batch`` into per-shard sub-batches.

        Roots and the allocator cursor always land on the meta shard
        (shard 0).  Payloads are coerced to bytes here, so a bad write
        raises before any shard has seen I/O.
        """
        subs: dict[int, WriteBatch] = {}

        def sub_for(shard: int) -> WriteBatch:
            if shard not in subs:
                subs[shard] = WriteBatch()
            return subs[shard]

        for oid, raw in batch.writes:
            if int(oid) >= RESERVED_OID_BASE:
                raise ValueError(f"oid {int(oid)} is reserved for the "
                                 "sharding protocol")
            sub_for(self.shard_of(oid)).write(oid, bytes(raw))
        for oid in batch.deletes:
            if int(oid) >= RESERVED_OID_BASE:
                raise ValueError(f"oid {int(oid)} is reserved for the "
                                 "sharding protocol")
            sub_for(self.shard_of(oid)).delete(oid)
        if batch.roots is not None:
            sub_for(0).set_roots(batch.roots)
        if batch.next_oid is not None:
            sub_for(0).advance_next_oid(batch.next_oid)
        return subs

    def prepare(self, subs: dict[int, WriteBatch],
                token: Optional[bytes] = None) -> bytes:
        """Phase 1: durably stage each shard's sub-batch on that shard,
        tagged with the batch token, then a durability barrier.

        The per-shard staging blobs (``encode_batch`` of each
        sub-batch) are built and written in parallel on the shard pool
        via ``_fan`` — the write-side counterpart of ``fetch_many``'s
        fan-out.  The store's stabilise encode phase aligns its chunks
        with ``shard_of`` so each encoded chunk's records land in one
        sub-batch here, keeping that fan-out balanced.

        Public (like ``FileEngine.log_batch``) so crash recovery is
        testable: a process dying after a partial or complete prepare,
        with no commit marker, must expose none of the batch on reopen.
        Returns the token (freshly generated when not supplied).
        """
        self._check_open()
        if token is None:
            token = os.urandom(_TOKEN_LEN)
        self._batch_token = token

        def stage(item: tuple[int, WriteBatch]) -> None:
            shard, sub = item
            child = self._children[shard]
            child.apply(
                WriteBatch().write(STAGE_OID, token + encode_batch(sub))
            )
            child.sync()

        self._fan(stage, subs.items(), inline=self._small(subs))
        return token

    def write_commit_marker(self, token: Optional[bytes] = None) -> None:
        """Phase 2: the commit point — one atomic write on the meta
        shard carrying the batch token, then a durability barrier.

        Public for fault injection: a marker present on reopen means the
        batch committed and any shard still staged under the marker's
        token is redone.
        """
        self._check_open()
        if token is None:
            token = self._batch_token
        if token is None:
            raise ValueError("no prepared batch to commit")
        meta = self._children[0]
        meta.apply(WriteBatch().write(MARKER_OID, token))
        meta.sync()

    def _apply_staged(self, subs: dict[int, WriteBatch]) -> None:
        """Phase 3: apply each sub-batch and drop its staging record in
        one atomic child batch per shard."""

        def apply_one(item: tuple[int, WriteBatch]) -> None:
            shard, sub = item
            combined = WriteBatch()
            combined.writes = list(sub.writes)
            combined.deletes = list(sub.deletes) + [STAGE_OID]
            combined.roots = sub.roots
            combined.next_oid = sub.next_oid
            self._children[shard].apply(combined)

        self._fan(apply_one, subs.items(), inline=self._small(subs))

    def _clear_commit_marker(self) -> None:
        self._children[0].apply(WriteBatch().delete(MARKER_OID))
        self._batch_token = None

    def _settle_in_background(self, subs: dict[int, WriteBatch]) -> None:
        """Clear the commit marker off the caller's critical path, with
        the durability order recovery depends on.

        The marker may only disappear after every involved shard's
        phase-3 apply is durable — were the deletion to land first, a
        crash would leave a committed-but-staged shard with no marker,
        and recovery would discard its sub-batch.  The settle task
        flushes the non-meta shards (a no-op for direct children, a
        pipeline drain for ``shard_durability`` children) and then
        submits the marker deletion; on the meta shard the deletion
        queues *behind* its own phase-3 apply, so FIFO order covers
        shard 0.  The next ``apply`` (and ``sync``/``flush``/``close``)
        awaits the task, preserving the single-writer protocol.
        """
        involved = [shard for shard in subs if shard != 0]

        def settle() -> None:
            for shard in involved:
                self._children[shard].flush()
            self._clear_commit_marker()

        if hasattr(self._children[0], "pipeline"):
            # Pipelined meta shard: its commit lock serialises the
            # background marker deletion against concurrent readers.
            self._settle_future = self._pool.submit(settle)
        else:
            # Direct meta shard: clear synchronously (the pre-pipeline
            # behaviour) rather than race readers through the child's
            # unsynchronised state.
            settle()

    def _await_settle(self) -> None:
        future, self._settle_future = self._settle_future, None
        if future is not None:
            future.result()

    def apply(self, batch: WriteBatch) -> None:
        self._check_open()
        # Wait out the previous apply's background marker clear (it is
        # the tail of that batch's protocol; the engine is single-writer).
        self._await_settle()
        # A leftover marker means an earlier apply died (or raised) after
        # its commit point: settle that batch first, or this batch could
        # overwrite the marker and orphan a committed-but-unapplied
        # staging — and replay ordering would break for the fast path.
        if self._children[0].contains(MARKER_OID):
            self._recover()
        subs = self.partition(batch)
        if not subs:
            self.batches_applied += 1
            return
        if len(subs) == 1:
            # One shard involved: that child's own apply is already
            # all-or-nothing, so the cross-shard protocol would only add
            # three extra durable writes.
            shard, sub = next(iter(subs.items()))
            self._children[shard].apply(sub)
        else:
            t0 = time.perf_counter_ns()
            with trace_span("twophase.prepare"):
                token = self.prepare(subs)
            t1 = time.perf_counter_ns()
            with trace_span("twophase.marker"):
                self.write_commit_marker(token)
            t2 = time.perf_counter_ns()
            with trace_span("twophase.apply"):
                self._apply_staged(subs)
            t3 = time.perf_counter_ns()
            self._settle_in_background(subs)
            self.two_phase_commits += 1
            self.prepare_ns += t1 - t0
            self.marker_ns += t2 - t1
            self.apply_ns += t3 - t2
        self.record_writes += len(batch.writes)
        self.batches_applied += 1

    # -- recovery -------------------------------------------------------

    def _recover(self) -> None:
        """Finish or roll back a batch interrupted mid-protocol."""
        meta = self._children[0]
        committed_token: Optional[bytes] = None
        if meta.contains(MARKER_OID):
            committed_token = bytes(meta.read(MARKER_OID))[:_TOKEN_LEN]

        def settle(child: StorageEngine) -> None:
            if not child.contains(STAGE_OID):
                return
            staged = bytes(child.read(STAGE_OID))
            if committed_token is not None \
                    and staged[:_TOKEN_LEN] == committed_token:
                sub = decode_batch(staged[_TOKEN_LEN:])
                sub.delete(STAGE_OID)
                child.apply(sub)
            else:
                # Never committed (no marker), or staged by a *later*
                # batch than a stale marker whose clear was lost: abort.
                child.apply(WriteBatch().delete(STAGE_OID))

        self._fan(settle, self._children)
        if committed_token is not None:
            # Same barrier as the apply path: every redone sub-batch
            # must be durable before the marker deletion can be.
            self._fan(lambda child: child.flush(), self._children)
            self._clear_commit_marker()

    # -- maintenance ----------------------------------------------------

    def compact(self) -> int:
        self._check_open()
        self._await_settle()
        return sum(self._fan(lambda child: child.compact(), self._children))

    def flush(self) -> None:
        """Drain the background settle and every child's commit pipeline
        (children opened with a ``shard_durability`` policy run one
        pipeline per shard; plain children inherit the no-op)."""
        self._check_open()
        self._await_settle()
        self._fan(lambda child: child.flush(), self._children)

    def sync(self) -> None:
        """Durability barrier across every shard (the single-shard apply
        fast path commits with the child's own durability level, so a
        caller needing power-loss durability syncs explicitly)."""
        self._check_open()
        self._await_settle()
        self._fan(lambda child: child.sync(), self._children)
