"""Pluggable storage engines for the persistent store.

The :class:`~repro.store.objectstore.ObjectStore` implements the paper's
*logical* model — roots, persistence by reachability, referential
integrity, typed fidelity — while everything *physical* (where record
bytes live, how a batch of writes becomes durable atomically) is behind
the :class:`StorageEngine` interface:

* :class:`FileEngine` — the durable backend: a slotted-page heap file plus
  a write-ahead log and an append-only manifest delta log, giving
  single-fsync crash-safe commits (the seed welded an earlier version of
  this layout into the store itself);
* :class:`MemoryEngine` — an ephemeral in-process backend for scratch
  stores and fast test runs; nothing survives :meth:`StorageEngine.close`;
* :class:`SqliteEngine` — one transactional SQLite file (WAL mode,
  concurrent readers); a batch is one SQL transaction;
* :class:`ShardedEngine` — the scale-out backend: the OID space
  partitioned over N child engines (any backends, including mixed), with
  parallel fan-out and a two-phase cross-shard commit;
* :class:`~repro.store.commit.pipeline.PipelinedEngine` — any engine
  wrapped in a commit pipeline (:mod:`repro.store.commit`): group
  commit and async durability behind the same ``apply`` interface,
  selected by ``?durability=`` URL parameters.

Engines exchange work with the store through :class:`WriteBatch`: one
batch carries record writes, record deletes, the new root table and the
OID-allocator high-water mark, and :meth:`StorageEngine.apply` makes the
whole batch durable atomically (all of it or none of it).

Engines are normally constructed from a storage URL via
:func:`engine_from_url` (``"file:/path"``, ``"sqlite:/path"``,
``"memory:"``, ``"sharded:4:sqlite:/path"``) — see
:func:`repro.store.open_store` for the store-level entry point.

Routing one logical store API over interchangeable physical backends is
the broker pattern (ZBroker); see ``docs/architecture.md`` for how to add
another backend.
"""

from repro.store.engine.base import StorageEngine, WriteBatch
from repro.store.engine.factory import engine_from_url
from repro.store.engine.filesystem import FileEngine
from repro.store.engine.memory import MemoryEngine
from repro.store.engine.sharded import ShardedEngine
from repro.store.engine.sqlite import SqliteEngine

# PipelinedEngine lives in repro.store.commit (which imports this
# package's base module, so re-exporting it here would be circular);
# repro.store re-exports it next to the engines.

__all__ = [
    "StorageEngine",
    "WriteBatch",
    "FileEngine",
    "MemoryEngine",
    "SqliteEngine",
    "ShardedEngine",
    "engine_from_url",
]
