"""The durable file backend: slotted-page heap + write-ahead log + snapshot.

This is the layout the seed built directly into ``ObjectStore``, extracted
behind :class:`~repro.store.engine.base.StorageEngine`.  A store directory
holds three files:

* ``store.heap`` — record bytes in slotted pages
  (:class:`~repro.store.heap.HeapFile`);
* ``store.wal`` — the write-ahead log
  (:class:`~repro.store.wal.WriteAheadLog`);
* ``store.meta`` — an atomically-replaced JSON snapshot of the object
  table, root table and allocator cursor.

:meth:`FileEngine.apply` follows the classic checkpoint + log discipline:
append the batch to the WAL and commit it (fsync), then apply it to the
heap, atomically replace the metadata snapshot, and truncate the log.
Opening the engine replays committed WAL batches over the snapshot, so a
crash at any point yields either the old state or the new state, never a
mixture.
"""

from __future__ import annotations

import json
import os

from repro.errors import UnknownOidError
from repro.store.engine.base import StorageEngine, WriteBatch
from repro.store.heap import HeapFile, RecordId
from repro.store.oids import FIRST_OID, NULL_OID, Oid
from repro.store.wal import (
    ENTRY_BEGIN,
    ENTRY_DELETE,
    ENTRY_NEXT_OID,
    ENTRY_ROOT,
    ENTRY_UNROOT,
    ENTRY_WRITE,
    LogEntry,
    WriteAheadLog,
)

_HEAP_NAME = "store.heap"
_WAL_NAME = "store.wal"
_META_NAME = "store.meta"

#: Snapshot format written by this engine.  Format 1 (the seed) carried a
#: per-record signature table; signatures are now rebuilt lazily by the
#: store layer, so format 2 drops them.  Both formats are readable.
_META_FORMAT = 2


class FileEngine(StorageEngine):
    """Crash-safe storage in a directory of heap + WAL + snapshot files."""

    name = "file"

    def __init__(self, directory: str):
        super().__init__()
        self._directory = directory
        os.makedirs(directory, exist_ok=True)
        self._heap = HeapFile(os.path.join(directory, _HEAP_NAME))
        self._wal = WriteAheadLog(os.path.join(directory, _WAL_NAME))
        self._table: dict[Oid, RecordId] = {}
        self._roots: dict[str, Oid] = {}
        self._next_oid = int(FIRST_OID)
        self._txn_counter = 0
        self._load_metadata()
        self._recover()

    # -- lifecycle --------------------------------------------------------

    @property
    def directory(self) -> str:
        return self._directory

    @property
    def heap(self) -> HeapFile:
        """The underlying heap file (statistics, tests, fault injection)."""
        return self._heap

    @property
    def wal(self) -> WriteAheadLog:
        """The underlying write-ahead log (tests, fault injection)."""
        return self._wal

    def close(self) -> None:
        if self._closed:
            return
        self._heap.close()
        self._wal.close()
        super().close()

    # -- metadata snapshot --------------------------------------------------

    def _meta_path(self) -> str:
        return os.path.join(self._directory, _META_NAME)

    def _load_metadata(self) -> None:
        path = self._meta_path()
        if not os.path.exists(path):
            return
        with open(path, "r", encoding="utf-8") as fh:
            meta = json.load(fh)
        self._next_oid = max(self._next_oid, int(meta["next_oid"]))
        self._roots = {name: Oid(oid) for name, oid in meta["roots"].items()}
        self._table = {Oid(int(oid)): RecordId(rid[0], rid[1])
                       for oid, rid in meta["objects"].items()}
        # Format-1 snapshots also carried "signatures"; the store layer
        # rebuilds those lazily now, so the key is simply ignored.

    def _write_metadata(self) -> None:
        meta = {
            "format": _META_FORMAT,
            "next_oid": self._next_oid,
            "roots": {name: int(oid) for name, oid in self._roots.items()},
            "objects": {str(int(oid)): [rid.page_no, rid.slot]
                        for oid, rid in self._table.items()},
        }
        path = self._meta_path()
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(meta, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    # -- recovery -----------------------------------------------------------

    def _recover(self) -> None:
        """Replay committed WAL batches over the metadata snapshot."""
        batches = self._wal.committed_batches()
        if not batches:
            self._wal.truncate()
            return
        for batch in batches:
            for entry in batch:
                if entry.kind == ENTRY_WRITE:
                    self._apply_write(entry.oid, entry.data)
                elif entry.kind == ENTRY_DELETE:
                    self._apply_delete(entry.oid)
                elif entry.kind == ENTRY_ROOT:
                    self._roots[entry.name] = entry.oid
                elif entry.kind == ENTRY_UNROOT:
                    self._roots.pop(entry.name, None)
                elif entry.kind == ENTRY_NEXT_OID:
                    self._next_oid = max(self._next_oid, int(entry.oid))
        self._checkpoint()

    # -- reads ----------------------------------------------------------

    def read(self, oid: Oid) -> bytes:
        self._check_open()
        try:
            rid = self._table[oid]
        except KeyError:
            raise UnknownOidError(int(oid)) from None
        return self._heap.read(rid)

    def contains(self, oid: Oid) -> bool:
        return oid in self._table

    def oids(self) -> tuple[Oid, ...]:
        return tuple(self._table)

    @property
    def object_count(self) -> int:
        return len(self._table)

    def roots(self) -> dict[str, Oid]:
        return dict(self._roots)

    @property
    def next_oid(self) -> int:
        return self._next_oid

    @property
    def page_count(self) -> int:
        return self._heap.page_count

    # -- writes ---------------------------------------------------------

    def apply(self, batch: WriteBatch) -> None:
        self._check_open()
        self.log_batch(batch)
        self._apply_committed(batch)
        self._checkpoint()
        self.batches_applied += 1

    def log_batch(self, batch: WriteBatch) -> int:
        """The WAL half of :meth:`apply`: append the batch and commit it
        (fsync), *without* applying it to the heap or snapshot.

        Exposed separately so crash recovery can be exercised: a process
        dying after ``log_batch`` but before the checkpoint must find the
        batch replayed on the next open.  Returns the transaction id.
        """
        self._check_open()
        self._txn_counter += 1
        txn = self._txn_counter
        self._wal.append(LogEntry(ENTRY_BEGIN, txn))
        for oid, raw in batch.writes:
            self._wal.append(LogEntry(ENTRY_WRITE, txn, oid, raw))
        for oid in batch.deletes:
            self._wal.append(LogEntry(ENTRY_DELETE, txn, oid))
        if batch.roots is not None:
            for name in self._roots:
                if name not in batch.roots:
                    self._wal.append(LogEntry(ENTRY_UNROOT, txn, NULL_OID,
                                              b"", name))
            for name, oid in batch.roots.items():
                self._wal.append(LogEntry(ENTRY_ROOT, txn, oid, b"", name))
        if batch.next_oid is not None:
            self._wal.append(LogEntry(ENTRY_NEXT_OID, txn,
                                      Oid(batch.next_oid)))
        self._wal.commit(txn)
        return txn

    def _apply_committed(self, batch: WriteBatch) -> None:
        for oid, raw in batch.writes:
            self._apply_write(oid, raw)
        for oid in batch.deletes:
            self._apply_delete(oid)
        if batch.roots is not None:
            self._roots = dict(batch.roots)
        if batch.next_oid is not None:
            self._next_oid = max(self._next_oid, batch.next_oid)

    def _checkpoint(self) -> None:
        self._heap.flush()
        self._write_metadata()
        self._wal.truncate()

    def _apply_write(self, oid: Oid, record_bytes: bytes) -> None:
        old = self._table.pop(oid, None)
        if old is not None:
            self._heap.delete(old)
        self._table[oid] = self._heap.insert(record_bytes)
        self.record_writes += 1

    def _apply_delete(self, oid: Oid) -> None:
        rid = self._table.pop(oid, None)
        if rid is not None:
            self._heap.delete(rid)

    def compact(self) -> int:
        self._check_open()
        compacted = self._heap.compact_fragmented()
        if compacted:
            self._heap.flush()
        return compacted
