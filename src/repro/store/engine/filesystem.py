"""The durable file backend: slotted-page heap + WAL + manifest log.

This is the layout the seed built directly into ``ObjectStore``, extracted
behind :class:`~repro.store.engine.base.StorageEngine`.  A store directory
holds three files:

* ``store.heap`` — record bytes in slotted pages
  (:class:`~repro.store.heap.HeapFile`);
* ``store.wal`` — the write-ahead log
  (:class:`~repro.store.wal.WriteAheadLog`);
* ``store.manifest`` — an append-only **manifest log** of metadata: one
  optional *base* entry (a full snapshot of the object table, root
  table and allocator cursor) followed by one *delta* entry per applied
  batch.  Replacing the seed's atomically-rewritten full JSON snapshot,
  a delta costs O(batch) bytes instead of O(stored objects) per commit.

:meth:`FileEngine.apply` commits with a **single fsync**: append the
batch to the WAL and commit it (the fsync — this is the durability
point), apply it to the heap's buffered pages, and append a manifest
delta *without* syncing.  A **checkpoint** — flush+fsync the heap,
fsync the manifest, truncate the WAL — runs only when the WAL outgrows
``checkpoint_wal_bytes`` (and on ``close``), amortising the remaining
fsyncs over many batches.  Once the manifest accumulates
``manifest_compact_deltas`` deltas it is compacted: atomically rewritten
as one fresh base entry.

Opening the engine replays the manifest (base, then deltas; a torn tail
is discarded) and then replays committed WAL batches over it, so a crash
at any point yields either the old state or the new state, never a
mixture: every delta past the last checkpoint has its batch still in the
WAL, and replay rebuilds heap records whose pages never reached disk.

:meth:`FileEngine.apply_many` is the group-commit hook: it appends every
batch in the group to the WAL and fsyncs *once*, which is what the
commit pipeline (``durability=group``) uses to make N concurrent commits
cost one fsync.

Format-1/2 snapshots (``store.meta``) from earlier versions are
migrated on open: loaded, written out as a manifest base entry, and the
legacy file removed.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Optional

from repro.errors import CorruptHeapError, UnknownOidError
from repro.store.engine.base import StorageEngine, WriteBatch
from repro.store.heap import DEFAULT_CACHE_PAGES, HeapFile, RecordId
from repro.store.obs.trace import span as trace_span
from repro.store.oids import FIRST_OID, NULL_OID, Oid
from repro.store.serve.locks import ReadWriteLock
from repro.store.wal import (
    ENTRY_BEGIN,
    ENTRY_DELETE,
    ENTRY_NEXT_OID,
    ENTRY_ROOT,
    ENTRY_UNROOT,
    ENTRY_WRITE,
    LogEntry,
    WriteAheadLog,
    frame_payload,
    iter_frames,
)

_HEAP_NAME = "store.heap"
_WAL_NAME = "store.wal"
_MANIFEST_NAME = "store.manifest"
#: Legacy full-snapshot file (formats 1 and 2), migrated on open.
_META_NAME = "store.meta"

#: Manifest format written by this engine.  Format 1 (the seed) was a
#: full JSON snapshot with a per-record signature table; format 2
#: dropped the signatures; format 3 is the append-only manifest log.
_MANIFEST_FORMAT = 3

#: Checkpoint (heap+manifest fsync, WAL truncate) once the WAL holds
#: this many bytes of committed-but-uncheckpointed batches.
DEFAULT_CHECKPOINT_WAL_BYTES = 256 * 1024

#: Compact the manifest back to a single base entry after this many
#: delta entries (bounds replay work on open).
DEFAULT_MANIFEST_COMPACT_DELTAS = 1024


def _encode_entry(entry: dict) -> bytes:
    payload = json.dumps(entry, separators=(",", ":")).encode("utf-8")
    return frame_payload(payload)


class ManifestLog:
    """Append-only, CRC-framed JSON log of metadata entries.

    Each entry is framed ``u32 length | u32 crc32 | payload`` (the same
    framing as the WAL, via :func:`repro.store.wal.frame_payload`); the
    payload is one JSON object with a ``"kind"`` of ``"base"`` (full
    snapshot) or ``"delta"`` (one batch's metadata changes).  A torn
    tail (bad length or CRC) ends — and :meth:`load` truncates away —
    whatever a crash left half-written, so later appends start on a
    clean frame boundary.
    """

    def __init__(self, path: str):
        self._path = path
        self._file = open(path, "ab+")
        self.fsyncs = 0

    @property
    def path(self) -> str:
        return self._path

    def append(self, entry: dict) -> None:
        self._file.write(_encode_entry(entry))

    def sync(self) -> None:
        with trace_span("manifest.fsync"):
            self._file.flush()
            os.fsync(self._file.fileno())
        self.fsyncs += 1

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def load(self) -> list[dict]:
        """Decode every complete entry; truncate a torn tail."""
        self._file.seek(0)
        data = self._file.read()
        entries: list[dict] = []
        pos = 0
        for end, payload in iter_frames(data):
            try:
                entry = json.loads(payload.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                break
            entries.append(entry)
            pos = end
        if pos != len(data):
            self._file.seek(pos)
            self._file.truncate()
            self._file.flush()
        return entries

    def rewrite(self, entry: dict) -> None:
        """Atomically replace the whole log with one (base) entry."""
        tmp = self._path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(_encode_entry(entry))
            fh.flush()
            os.fsync(fh.fileno())
        self._file.close()
        os.replace(tmp, self._path)
        self._file = open(self._path, "ab+")

    def __enter__(self) -> "ManifestLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class FileEngine(StorageEngine):
    """Crash-safe storage in a directory of heap + WAL + manifest files."""

    name = "file"

    def __init__(self, directory: str, *,
                 checkpoint_wal_bytes: int = DEFAULT_CHECKPOINT_WAL_BYTES,
                 manifest_compact_deltas: int =
                 DEFAULT_MANIFEST_COMPACT_DELTAS,
                 heap_cache_pages: int = DEFAULT_CACHE_PAGES):
        super().__init__()
        if checkpoint_wal_bytes < 1:
            raise ValueError("checkpoint_wal_bytes must be >= 1, got "
                             f"{checkpoint_wal_bytes}")
        if manifest_compact_deltas < 1:
            raise ValueError("manifest_compact_deltas must be >= 1, got "
                             f"{manifest_compact_deltas}")
        self._directory = directory
        self._checkpoint_wal_bytes = checkpoint_wal_bytes
        self._manifest_compact_deltas = manifest_compact_deltas
        # Readers share this lock; applying a batch's in-memory effects
        # (object table + heap) takes the write side, so a concurrent
        # read observes a batch all-or-nothing and can never follow a
        # record id into a slot the same batch just tombstoned.
        self._state_lock = ReadWriteLock()
        os.makedirs(directory, exist_ok=True)
        self._heap = HeapFile(os.path.join(directory, _HEAP_NAME),
                              cache_pages=heap_cache_pages)
        self._wal = WriteAheadLog(os.path.join(directory, _WAL_NAME))
        self._manifest = ManifestLog(os.path.join(directory, _MANIFEST_NAME))
        self._table: dict[Oid, RecordId] = {}
        self._roots: dict[str, Oid] = {}
        self._next_oid = int(FIRST_OID)
        self._txn_counter = 0
        self._delta_count = 0
        self.checkpoints = 0
        self._dirty = False
        self._recovering = False
        self._load_metadata()
        self._recover()

    # -- lifecycle --------------------------------------------------------

    @property
    def directory(self) -> str:
        return self._directory

    @property
    def heap(self) -> HeapFile:
        """The underlying heap file (statistics, tests, fault injection)."""
        return self._heap

    @property
    def wal(self) -> WriteAheadLog:
        """The underlying write-ahead log (tests, fault injection)."""
        return self._wal

    @property
    def manifest(self) -> ManifestLog:
        """The underlying manifest log (tests, fault injection)."""
        return self._manifest

    def close(self) -> None:
        if self._closed:
            return
        self._checkpoint()
        self._manifest.close()
        self._heap.close()
        self._wal.close()
        super().close()

    # -- manifest log -------------------------------------------------------

    def _base_entry(self) -> dict:
        return {
            "kind": "base",
            "format": _MANIFEST_FORMAT,
            "next_oid": self._next_oid,
            "roots": {name: int(oid) for name, oid in self._roots.items()},
            "objects": {str(int(oid)): [rid.page_no, rid.slot]
                        for oid, rid in self._table.items()},
        }

    def _append_delta(self, batch: WriteBatch) -> None:
        delta_set: dict[str, list[int]] = {}
        for oid, _ in batch.writes:
            rid = self._table.get(oid)
            if rid is not None:  # absent: also deleted in this batch
                delta_set[str(int(oid))] = [rid.page_no, rid.slot]
        entry = {
            "kind": "delta",
            "set": delta_set,
            "del": sorted({int(oid) for oid in batch.deletes}),
            "roots": None if batch.roots is None else
            {name: int(oid) for name, oid in batch.roots.items()},
            "next_oid": batch.next_oid,
        }
        self._manifest.append(entry)
        self._delta_count += 1

    def _load_base(self, entry: dict) -> None:
        self._next_oid = max(int(FIRST_OID), int(entry["next_oid"]))
        self._roots = {name: Oid(oid)
                       for name, oid in entry["roots"].items()}
        self._table = {Oid(int(oid)): RecordId(rid[0], rid[1])
                       for oid, rid in entry["objects"].items()}

    def _load_delta(self, entry: dict) -> None:
        for oid, rid in entry["set"].items():
            self._table[Oid(int(oid))] = RecordId(rid[0], rid[1])
        for oid in entry["del"]:
            self._table.pop(Oid(int(oid)), None)
        if entry["roots"] is not None:
            self._roots = {name: Oid(oid)
                           for name, oid in entry["roots"].items()}
        if entry["next_oid"] is not None:
            self._next_oid = max(self._next_oid, int(entry["next_oid"]))

    def _load_metadata(self) -> None:
        entries = self._manifest.load()
        legacy = os.path.join(self._directory, _META_NAME)
        if not entries:
            if os.path.exists(legacy):
                self._migrate_legacy_snapshot(legacy)
            return
        if os.path.exists(legacy):
            # A crash between the migration's manifest sync and this
            # remove left the (now stale) snapshot behind; the manifest
            # is authoritative from here on.
            os.remove(legacy)
        for entry in entries:
            if entry.get("kind") == "base":
                self._load_base(entry)
                self._delta_count = 0
            else:
                self._load_delta(entry)
                self._delta_count += 1

    def _migrate_legacy_snapshot(self, path: str) -> None:
        """Read a format-1/2 ``store.meta`` snapshot and re-home it as
        the manifest's base entry (the legacy file is then removed; a
        crash in between leaves both, and the manifest — same content —
        wins on the next open)."""
        with open(path, "r", encoding="utf-8") as fh:
            meta = json.load(fh)
        self._next_oid = max(self._next_oid, int(meta["next_oid"]))
        self._roots = {name: Oid(oid) for name, oid in meta["roots"].items()}
        self._table = {Oid(int(oid)): RecordId(rid[0], rid[1])
                       for oid, rid in meta["objects"].items()}
        # Format-1 snapshots also carried "signatures"; the store layer
        # rebuilds those lazily now, so the key is simply ignored.
        self._manifest.append(self._base_entry())
        self._manifest.sync()
        os.remove(path)

    # -- recovery -----------------------------------------------------------

    def _recover(self) -> None:
        """Replay committed WAL batches over the manifest state."""
        batches = self._wal.committed_batches()
        if not batches:
            self._wal.truncate()
            return
        self._recovering = True
        try:
            for entries in batches:
                self._apply_committed(self._batch_from_entries(entries))
        finally:
            self._recovering = False
        self._checkpoint()

    def _batch_from_entries(self, entries: list[LogEntry]) -> WriteBatch:
        batch = WriteBatch()
        roots: Optional[dict[str, Oid]] = None
        for entry in entries:
            if entry.kind == ENTRY_WRITE:
                batch.write(entry.oid, entry.data)
            elif entry.kind == ENTRY_DELETE:
                batch.delete(entry.oid)
            elif entry.kind == ENTRY_ROOT:
                if roots is None:
                    roots = dict(self._roots)
                roots[entry.name] = entry.oid
            elif entry.kind == ENTRY_UNROOT:
                if roots is None:
                    roots = dict(self._roots)
                roots.pop(entry.name, None)
            elif entry.kind == ENTRY_NEXT_OID:
                batch.advance_next_oid(int(entry.oid))
        if roots is not None:
            batch.set_roots(roots)
        return batch

    # -- reads ----------------------------------------------------------

    def read(self, oid: Oid) -> bytes:
        self._check_open()
        with self._state_lock.read_locked():
            try:
                rid = self._table[oid]
            except KeyError:
                raise UnknownOidError(int(oid)) from None
            return self._heap.read(rid)

    def fetch_many(self, oids: Iterable[Oid]) -> dict[Oid, bytes]:
        self._check_open()
        found: dict[Oid, bytes] = {}
        with self._state_lock.read_locked():
            for oid in oids:
                rid = self._table.get(oid)
                if rid is not None:
                    found[oid] = self._heap.read(rid)
        return found

    def contains(self, oid: Oid) -> bool:
        return oid in self._table

    def oids(self) -> tuple[Oid, ...]:
        with self._state_lock.read_locked():
            return tuple(self._table)

    @property
    def object_count(self) -> int:
        return len(self._table)

    def roots(self) -> dict[str, Oid]:
        return dict(self._roots)

    @property
    def next_oid(self) -> int:
        return self._next_oid

    @property
    def page_count(self) -> int:
        return self._heap.page_count

    # -- writes ---------------------------------------------------------

    def apply(self, batch: WriteBatch) -> None:
        self._check_open()
        self._log_batch(batch, sync=True)
        self._apply_committed(batch)
        self.batches_applied += 1
        self._maybe_checkpoint()

    def apply_many(self, batches: Iterable[WriteBatch]) -> None:
        """The group-commit path: every batch is WAL-logged, then one
        fsync commits the whole group, then each batch is applied.

        Each batch keeps its own transaction frame in the log, so
        atomicity is still per batch — a crash mid-group replays the
        committed prefix."""
        self._check_open()
        batches = list(batches)
        if not batches:
            return
        try:
            for batch in batches:
                self._log_batch(batch, sync=False)
            self._wal.sync()
        except BaseException:
            # Half-logged group: checkpoint now, so the WAL keeps no
            # committed-but-never-applied frames for a crash replay to
            # resurrect (their submitters are getting an error, not an
            # acknowledgement).
            self._checkpoint()
            raise
        for batch in batches:
            self._apply_committed(batch)
            self.batches_applied += 1
        self._maybe_checkpoint()

    def log_batch(self, batch: WriteBatch) -> int:
        """The WAL half of :meth:`apply`: append the batch and commit it
        (fsync), *without* applying it to the heap or manifest.

        Exposed separately so crash recovery can be exercised: a process
        dying after ``log_batch`` but before the apply must find the
        batch replayed on the next open.  Returns the transaction id.
        """
        return self._log_batch(batch, sync=True)

    def _log_batch(self, batch: WriteBatch, sync: bool) -> int:
        self._check_open()
        self._txn_counter += 1
        txn = self._txn_counter
        self._wal.append(LogEntry(ENTRY_BEGIN, txn))
        for oid, raw in batch.writes:
            self._wal.append(LogEntry(ENTRY_WRITE, txn, oid, raw))
        for oid in batch.deletes:
            self._wal.append(LogEntry(ENTRY_DELETE, txn, oid))
        if batch.roots is not None:
            for name in self._roots:
                if name not in batch.roots:
                    self._wal.append(LogEntry(ENTRY_UNROOT, txn, NULL_OID,
                                              b"", name))
            for name, oid in batch.roots.items():
                self._wal.append(LogEntry(ENTRY_ROOT, txn, oid, b"", name))
        if batch.next_oid is not None:
            self._wal.append(LogEntry(ENTRY_NEXT_OID, txn,
                                      Oid(batch.next_oid)))
        self._wal.commit(txn, sync=sync)
        return txn

    def _apply_committed(self, batch: WriteBatch) -> None:
        # In-memory effects land atomically with respect to readers; the
        # manifest delta (writer-only state) is appended outside the
        # exclusive section so readers are not blocked on its file I/O.
        with self._state_lock.write_locked():
            for oid, raw in batch.writes:
                self._apply_write(oid, raw)
            for oid in batch.deletes:
                self._apply_delete(oid)
            if batch.roots is not None:
                self._roots = dict(batch.roots)
            if batch.next_oid is not None:
                self._next_oid = max(self._next_oid, batch.next_oid)
        self._append_delta(batch)
        self._dirty = True

    def _maybe_checkpoint(self) -> None:
        if self._wal.size() >= self._checkpoint_wal_bytes:
            self._checkpoint()

    def _checkpoint(self) -> None:
        """Make the heap and manifest independently durable, then drop
        the WAL: heap pages first, then the metadata that points into
        them, then the log whose replay would rebuild both."""
        if not self._dirty and self._wal.size() == 0:
            return
        self._heap.flush()
        self._manifest.sync()
        self._wal.truncate()
        self.checkpoints += 1
        self._dirty = False
        if self._delta_count >= self._manifest_compact_deltas:
            self.compact_manifest()

    def compact_manifest(self) -> None:
        """Rewrite the manifest as a single base entry (atomic replace);
        bounds the metadata replayed on the next open."""
        self._check_open()
        self._manifest.rewrite(self._base_entry())
        self._delta_count = 0

    def _apply_write(self, oid: Oid, record_bytes: bytes) -> None:
        old = self._table.pop(oid, None)
        if old is not None:
            self._drop_record(old)
        self._table[oid] = self._heap.insert(record_bytes)
        self.record_writes += 1

    def _apply_delete(self, oid: Oid) -> None:
        rid = self._table.pop(oid, None)
        if rid is not None:
            self._drop_record(rid)

    def _drop_record(self, rid: RecordId) -> None:
        try:
            self._heap.delete(rid)
        except CorruptHeapError:
            if not self._recovering:
                raise
            # WAL replay after a crash: the manifest delta that named
            # this record id was durable, but the heap pages it points
            # into never reached disk.  The record is being rebuilt
            # from the WAL right now, so the dangling id is expected.

    def compact(self) -> int:
        self._check_open()
        compacted = self._heap.compact_fragmented()
        if compacted:
            self._heap.flush()
        return compacted
