"""Engine construction from storage URLs.

Callers pick a backend by URL instead of wiring engine objects by hand:

* ``memory:`` — an ephemeral :class:`MemoryEngine`;
* ``file:/path/to/dir`` — a :class:`FileEngine` over that directory;
* ``sqlite:/path/to/db`` — a :class:`SqliteEngine` over that file;
* ``sharded:N:CHILD-URL`` — a :class:`ShardedEngine` over N children of
  the child scheme; the child URL's location is treated as a *base
  directory* and each shard gets its own location inside it
  (``shard0``, ``shard1``, … for ``file:``; ``shard0.sqlite``, … for
  ``sqlite:``).  ``sharded:4:memory:`` composes four memory shards.

A string with no (known) scheme is taken as a plain filesystem path and
opened with the file engine, so existing ``ObjectStore.open(path)``
habits carry over: ``open_store("/tmp/s")`` == ``open_store("file:/tmp/s")``.
"""

from __future__ import annotations

import os

from repro.store.engine.base import StorageEngine
from repro.store.engine.filesystem import FileEngine
from repro.store.engine.memory import MemoryEngine
from repro.store.engine.sharded import ShardedEngine
from repro.store.engine.sqlite import SqliteEngine

SCHEMES = ("memory", "file", "sqlite", "sharded")


def _split_scheme(url: str) -> tuple[str | None, str]:
    scheme, sep, rest = url.partition(":")
    if sep and scheme in SCHEMES:
        return scheme, rest
    if sep and len(scheme) > 1 and scheme.isalpha():
        raise ValueError(
            f"unknown storage scheme {scheme!r} in {url!r}; "
            f"known schemes: {', '.join(SCHEMES)}"
        )
    # No colon, or something path-like (a single-letter drive prefix, a
    # path with a colon in it): a bare filesystem path for the default
    # file backend.
    return None, url


def _sharded_children(rest: str) -> list[StorageEngine]:
    count_text, sep, child_url = rest.partition(":")
    if not sep:
        raise ValueError(
            "sharded URLs look like 'sharded:N:CHILD-URL', "
            f"got 'sharded:{rest}'"
        )
    try:
        count = int(count_text)
    except ValueError:
        raise ValueError(
            f"shard count must be an integer, got {count_text!r}"
        ) from None
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    child_scheme, location = _split_scheme(child_url)
    if child_scheme == "sharded":
        raise ValueError("sharded children cannot themselves be sharded")
    if child_scheme is None and location in SCHEMES:
        raise ValueError(
            f"child URL {child_url!r} looks like a scheme missing its "
            f"colon — did you mean '{location}:'?"
        )
    if child_scheme == "memory":
        return [MemoryEngine() for _ in range(count)]
    if child_scheme == "sqlite":
        os.makedirs(location, exist_ok=True)
        return [SqliteEngine(os.path.join(location, f"shard{index}.sqlite"))
                for index in range(count)]
    # file scheme or a bare path: one subdirectory per shard.
    os.makedirs(location, exist_ok=True)
    return [FileEngine(os.path.join(location, f"shard{index}"))
            for index in range(count)]


def engine_from_url(url: str) -> StorageEngine:
    """Construct (opening or creating) the storage engine ``url`` names."""
    if not url:
        raise ValueError("empty storage URL")
    scheme, rest = _split_scheme(url)
    if scheme == "memory":
        if rest:
            raise ValueError(f"memory: takes no location, got {rest!r}")
        return MemoryEngine()
    if scheme == "sqlite":
        if not rest:
            raise ValueError("sqlite: needs a database path")
        return SqliteEngine(rest)
    if scheme == "sharded":
        return ShardedEngine(_sharded_children(rest))
    if not rest:
        raise ValueError("file: needs a directory path")
    return FileEngine(rest)
