"""Engine construction from storage URLs.

Callers pick a backend by URL instead of wiring engine objects by hand:

* ``memory:`` — an ephemeral :class:`MemoryEngine`;
* ``file:/path/to/dir`` — a :class:`FileEngine` over that directory;
* ``sqlite:/path/to/db`` — a :class:`SqliteEngine` over that file;
* ``sharded:N:CHILD-URL`` — a :class:`ShardedEngine` over N children of
  the child scheme; the child URL's location is treated as a *base
  directory* and each shard gets its own location inside it
  (``shard0``, ``shard1``, … for ``file:``; ``shard0.sqlite``, … for
  ``sqlite:``).  ``sharded:4:memory:`` composes four memory shards.
* ``remote:HOST:PORT`` (or ``remote:unix:/path.sock``) — a
  :class:`~repro.store.net.client.RemoteEngine` client of a store
  server process (``scripts/store_server.py``);
* ``routed:HOST1:P1,HOST2:P2,...`` — a
  :class:`~repro.store.net.router.RouterEngine` front-end mapping OID
  ranges over N backend store servers (``oid % N``), with the sharded
  engine's two-phase commit running across the servers.

Schemes live in a registry (:func:`register_scheme`): each entry names
its legal query keys and a builder, so new backends — the network
schemes above are plugged in exactly this way — extend the factory
without touching its parsing; an unknown scheme's error names every
registered scheme.

A string with no (known) scheme is taken as a plain filesystem path and
opened with the file engine, so existing ``ObjectStore.open(path)``
habits carry over: ``open_store("/tmp/s")`` == ``open_store("file:/tmp/s")``.

A trailing query string tunes the engine, ``?key=value&key=value``:

===========================  ============================================
key                          meaning
===========================  ============================================
``durability``               wrap the engine in a commit pipeline with
                             this policy: ``sync`` (inline, serialised),
                             ``group`` (coalesced group commits) or
                             ``async`` (acknowledge before durable)
``group_window_ms``          group-commit linger window (float ms,
                             default 0: natural batching only)
``group_max_batches``        most batches per group commit (default 64)
``async_max_pending``        submission backpressure bound (default 256)
``checkpoint_wal_bytes``     [file] WAL size that triggers a checkpoint
``manifest_compact_deltas``  [file] manifest deltas before compaction
``heap_cache_pages``         [file] bound on cached heap page images
``synchronous``              [sqlite] PRAGMA synchronous level
``shard_durability``         [sharded] wrap every *child* in a pipeline
                             with this policy (the ``group_*`` /
                             ``async_*`` knobs apply to those pipelines
                             too)
``connect_timeout``          [remote/routed] seconds to establish each
                             server connection (default 5)
``op_timeout``               [remote/routed] seconds to wait for one
                             reply (default 30; 0 waits forever)
``read_retries``             [remote/routed] reconnect-retry bound for
                             idempotent reads (default 2; writes are
                             never retried)
===========================  ============================================

``file:/p?durability=group&group_window_ms=2`` is the canonical example;
unknown keys, malformed pairs and out-of-range values raise
``ValueError`` naming the offending key.

A few query keys belong to the *store* layer rather than any engine:
``cache_objects`` bounds the store's live-object cache, ``compress``
names a per-record codec for new writes (``zlib``, ``zlib:1`` …
``zlib:9``, ``lzma``, ``lzma:0`` … ``lzma:9``, or ``none``) and
``encode_workers`` sizes the stabilise encoder pool (``0`` = inline),
``trace_sample`` head-samples 1 in N store ops into the span tracer,
``slow_trace_ms`` always keeps traces for store ops slower than the
threshold, and ``trace_log`` names a JSONL sink for kept spans.
:func:`split_store_url` peels such keys off (``ObjectStore.from_url``
and ``open_store`` call it); handing them straight to
:func:`engine_from_url` raises a ``ValueError`` that says so.
"""

from __future__ import annotations

import os
from typing import Callable, NamedTuple, Optional

from repro.store.commit.pipeline import PipelinedEngine
from repro.store.commit.policy import DurabilityPolicy, make_policy
from repro.store.engine.base import StorageEngine
from repro.store.engine.filesystem import FileEngine
from repro.store.engine.memory import MemoryEngine
from repro.store.engine.sharded import ShardedEngine
from repro.store.engine.sqlite import SqliteEngine

#: Pipeline keys, honoured for every scheme.
_PIPELINE_KEYS = ("durability", "group_window_ms", "group_max_batches",
                  "async_max_pending")

#: Keys consumed by the ObjectStore layer, valid for every scheme; the
#: engine factory never sees them (``split_store_url`` peels them off).
#: The trace keys configure the store's sampling tracer (the server
#: process takes the equivalent via ``store_server.py --trace-log``).
STORE_KEYS = ("cache_objects", "compress", "encode_workers",
              "trace_sample", "slow_trace_ms", "trace_log")

#: Observability keys, honoured for every scheme.  ``open_store``
#: consumes them via ``split_store_url`` (metrics default *on* at the
#: store layer); a bare ``engine_from_url`` call honours an explicit
#: ``metrics=1`` / ``slow_op_ms=N`` by wrapping the engine in a
#: :class:`~repro.store.obs.TimedEngine`, and leaves plain URLs
#: unwrapped.
_OBS_KEYS = ("metrics", "slow_op_ms")


class SchemeSpec(NamedTuple):
    """One row of the scheme registry.

    ``keys`` are the scheme's own query-parameter names (the pipeline
    keys are valid for every scheme and need not be listed); ``build``
    turns the URL's location part plus its parsed query parameters into
    an opened engine.
    """

    keys: tuple[str, ...]
    build: Callable[[str, dict], StorageEngine]


#: The scheme registry: every storage scheme the factory understands.
#: The built-in backends register below; the network schemes
#: (``remote:``, ``routed:``) plug in the same way with lazily-imported
#: builders, and out-of-tree backends may call :func:`register_scheme`.
_SCHEME_REGISTRY: dict[str, SchemeSpec] = {}

#: Registered scheme names, kept in registration order for messages and
#: backward compatibility (``factory.SCHEMES`` predates the registry).
SCHEMES: tuple[str, ...] = ()


def register_scheme(name: str, keys: tuple[str, ...],
                    build: Callable[[str, dict], StorageEngine]) -> None:
    """Add a storage scheme to the registry (idempotent per name).

    ``build(rest, params)`` receives the URL after ``name:`` (query
    string already stripped and parsed into ``params``) and must return
    an opened engine.  ``keys`` become the scheme's legal query
    parameters alongside the pipeline keys.
    """
    if not name or not name.isalpha() or len(name) < 2:
        raise ValueError(
            f"scheme name must be alphabetic and at least two "
            f"characters, got {name!r}"
        )
    _SCHEME_REGISTRY[name] = SchemeSpec(tuple(keys), build)
    global SCHEMES
    if name not in SCHEMES:
        SCHEMES = SCHEMES + (name,)


def registered_schemes() -> tuple[str, ...]:
    """Every scheme the factory currently understands."""
    return SCHEMES


def _split_scheme(url: str) -> tuple[str | None, str]:
    scheme, sep, rest = url.partition(":")
    if sep and scheme in _SCHEME_REGISTRY:
        return scheme, rest
    if sep and len(scheme) > 1 and scheme.isalpha():
        raise ValueError(
            f"unknown storage scheme {scheme!r} in {url!r}; "
            f"known schemes: {', '.join(registered_schemes())}"
        )
    # No colon, or something path-like (a single-letter drive prefix, a
    # path with a colon in it): a bare filesystem path for the default
    # file backend.
    return None, url


def _parse_query(query: str, url: str) -> dict[str, str]:
    params: dict[str, str] = {}
    for pair in query.split("&"):
        if not pair:
            continue
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ValueError(
                f"malformed query parameter {pair!r} in {url!r}; "
                "expected key=value"
            )
        if key in params:
            raise ValueError(f"duplicate query parameter {key!r} in {url!r}")
        params[key] = value
    return params


def _check_keys(params: dict[str, str], scheme: str, url: str,
                extra: tuple[str, ...] = ()) -> None:
    store_level = sorted(set(params) & set(STORE_KEYS))
    if store_level:
        raise ValueError(
            f"query parameter(s) {', '.join(map(repr, store_level))} in "
            f"{url!r} configure the store, not the engine; open the URL "
            f"with open_store()/ObjectStore.from_url (or split it with "
            f"repro.store.engine.factory.split_store_url first)"
        )
    known = (set(_PIPELINE_KEYS) | set(_OBS_KEYS)
             | set(_SCHEME_REGISTRY[scheme].keys) | set(extra))
    unknown = sorted(set(params) - known)
    if unknown:
        raise ValueError(
            f"unknown query parameter(s) {', '.join(map(repr, unknown))} "
            f"for {scheme}: URLs in {url!r}; known keys: "
            f"{', '.join(sorted(known))}"
        )


def _int_param(params: dict[str, str], key: str) -> Optional[int]:
    if key not in params:
        return None
    try:
        return int(params[key])
    except ValueError:
        raise ValueError(
            f"query parameter {key} must be an integer, "
            f"got {params[key]!r}"
        ) from None


def _float_param(params: dict[str, str], key: str) -> Optional[float]:
    if key not in params:
        return None
    try:
        return float(params[key])
    except ValueError:
        raise ValueError(
            f"query parameter {key} must be a number, got {params[key]!r}"
        ) from None


def _obs_params(params: dict[str, str], url: str) -> dict:
    """Pop and validate the observability keys.  Returns a dict with
    ``metrics`` (bool) and/or ``slow_op_ms`` (float) for whichever keys
    were present."""
    out: dict = {}
    if "metrics" in params:
        value = params.pop("metrics")
        if value not in ("0", "1"):
            raise ValueError(
                f"query parameter metrics must be 0 or 1, got {value!r} "
                f"in {url!r}"
            )
        out["metrics"] = value == "1"
    if "slow_op_ms" in params:
        threshold = _float_param(params, "slow_op_ms")
        del params["slow_op_ms"]
        if threshold is not None and threshold <= 0:
            raise ValueError(
                f"query parameter slow_op_ms must be > 0, got {threshold}"
            )
        out["slow_op_ms"] = threshold
    return out


def _policy_from_params(kind: Optional[str],
                        params: dict[str, str]) -> Optional[DurabilityPolicy]:
    if kind is None:
        return None
    window_ms = _float_param(params, "group_window_ms")
    max_batches = _int_param(params, "group_max_batches")
    max_pending = _int_param(params, "async_max_pending")
    return make_policy(
        kind,
        window_ms=0.0 if window_ms is None else window_ms,
        max_batches=64 if max_batches is None else max_batches,
        max_pending=256 if max_pending is None else max_pending,
    )


def _sharded_children(rest: str,
                      params: dict[str, str]) -> list[StorageEngine]:
    count_text, sep, child_url = rest.partition(":")
    if not sep:
        raise ValueError(
            "sharded URLs look like 'sharded:N:CHILD-URL', "
            f"got 'sharded:{rest}'"
        )
    try:
        count = int(count_text)
    except ValueError:
        raise ValueError(
            f"shard count must be an integer, got {count_text!r}"
        ) from None
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    child_scheme, location = _split_scheme(child_url)
    if child_scheme == "sharded":
        raise ValueError("sharded children cannot themselves be sharded")
    if child_scheme in ("remote", "routed"):
        raise ValueError(
            f"sharded children cannot be {child_scheme}: engines — "
            f"compose remote servers with 'routed:' instead"
        )
    if child_scheme is None and location in _SCHEME_REGISTRY:
        raise ValueError(
            f"child URL {child_url!r} looks like a scheme missing its "
            f"colon — did you mean '{location}:'?"
        )
    # Build the shard policy before any child is opened, so a bad
    # parameter cannot leak N opened engines.  One shared instance is
    # enough — a policy is a stateless parameter bag; only the wrapper
    # (and its pipeline) is per-child.
    shard_policy = _policy_from_params(params.get("shard_durability"),
                                       params)
    if child_scheme == "memory":
        children: list[StorageEngine] = [MemoryEngine()
                                         for _ in range(count)]
    elif child_scheme == "sqlite":
        os.makedirs(location, exist_ok=True)
        children = [SqliteEngine(os.path.join(location,
                                              f"shard{index}.sqlite"),
                                 synchronous=params.get("synchronous",
                                                        "NORMAL"))
                    for index in range(count)]
    else:
        # file scheme or a bare path: one subdirectory per shard.
        file_kwargs = _file_kwargs(params)
        os.makedirs(location, exist_ok=True)
        children = [FileEngine(os.path.join(location, f"shard{index}"),
                               **file_kwargs)
                    for index in range(count)]
    if shard_policy is not None:
        children = [PipelinedEngine(child, shard_policy)
                    for child in children]
    return children


def _file_kwargs(params: dict[str, str]) -> dict:
    """FileEngine keyword arguments named in a URL's query parameters."""
    file_kwargs: dict = {}
    wal_bytes = _int_param(params, "checkpoint_wal_bytes")
    if wal_bytes is not None:
        file_kwargs["checkpoint_wal_bytes"] = wal_bytes
    compact_deltas = _int_param(params, "manifest_compact_deltas")
    if compact_deltas is not None:
        file_kwargs["manifest_compact_deltas"] = compact_deltas
    cache_pages = _int_param(params, "heap_cache_pages")
    if cache_pages is not None:
        file_kwargs["heap_cache_pages"] = cache_pages
    return file_kwargs


def split_store_url(url: str) -> tuple[str, dict]:
    """Split store-level query parameters off a storage URL.

    Returns ``(engine_url, store_options)`` where ``engine_url`` keeps
    every engine-level parameter and ``store_options`` is ready to pass
    to ``ObjectStore(**store_options)``: ``cache_objects`` (the bounded
    object-cache capacity, an integer >= 1), ``compress`` (a per-record
    codec spec such as ``zlib:1``), ``encode_workers`` (stabilise
    encoder pool size, an integer >= 0), ``metrics`` (0/1, store
    telemetry — default on), ``slow_op_ms`` (log engine ops slower
    than this threshold), ``trace_sample`` (head-sample 1 in N store
    ops into the span tracer, ``0`` = off), ``slow_trace_ms`` (always
    keep traces for store ops slower than this) and ``trace_log`` (a
    JSONL sink path for kept spans and events).  Values are validated
    here so a bad store parameter fails before any engine is opened.
    """
    base, has_query, query = url.partition("?")
    if not has_query:
        return url, {}
    params = _parse_query(query, url)
    store_options: dict = dict(_obs_params(params, url))
    if "cache_objects" in params:
        capacity = _int_param(params, "cache_objects")
        if capacity is not None and capacity < 1:
            raise ValueError(
                f"query parameter cache_objects must be >= 1, "
                f"got {capacity}"
            )
        store_options["cache_objects"] = capacity
        del params["cache_objects"]
    if "compress" in params:
        from repro.store.serializer import parse_codec

        spec = params.pop("compress")
        try:
            parse_codec(spec)
        except ValueError as exc:
            raise ValueError(
                f"query parameter compress is invalid: {exc}"
            ) from None
        store_options["compress"] = spec
    if "encode_workers" in params:
        workers = _int_param(params, "encode_workers")
        if workers is not None and workers < 0:
            raise ValueError(
                f"query parameter encode_workers must be >= 0, "
                f"got {workers}"
            )
        store_options["encode_workers"] = workers
        del params["encode_workers"]
    if "trace_sample" in params:
        sample = _int_param(params, "trace_sample")
        if sample is not None and sample < 0:
            raise ValueError(
                f"query parameter trace_sample must be >= 0, "
                f"got {sample}"
            )
        store_options["trace_sample"] = sample
        del params["trace_sample"]
    if "slow_trace_ms" in params:
        slow_trace = _float_param(params, "slow_trace_ms")
        if slow_trace is not None and slow_trace <= 0:
            raise ValueError(
                f"query parameter slow_trace_ms must be > 0, "
                f"got {slow_trace}"
            )
        store_options["slow_trace_ms"] = slow_trace
        del params["slow_trace_ms"]
    if "trace_log" in params:
        trace_log = params.pop("trace_log")
        if not trace_log:
            raise ValueError(
                "query parameter trace_log needs a file path"
            )
        store_options["trace_log"] = trace_log
    if params:
        rest = "&".join(f"{key}={value}" for key, value in params.items())
        return f"{base}?{rest}", store_options
    return base, store_options


# -- scheme builders --------------------------------------------------------

def _build_memory(rest: str, params: dict) -> StorageEngine:
    if rest:
        raise ValueError(f"memory: takes no location, got {rest!r}")
    return MemoryEngine()


def _build_file(rest: str, params: dict) -> StorageEngine:
    if not rest:
        raise ValueError("file: needs a directory path")
    return FileEngine(rest, **_file_kwargs(params))


def _build_sqlite(rest: str, params: dict) -> StorageEngine:
    if not rest:
        raise ValueError("sqlite: needs a database path")
    return SqliteEngine(rest,
                        synchronous=params.get("synchronous", "NORMAL"))


def _build_sharded(rest: str, params: dict) -> StorageEngine:
    return ShardedEngine(_sharded_children(rest, params))


def _remote_kwargs(params: dict) -> dict:
    """RemoteEngine keyword arguments named in a URL's query
    parameters (shared by the ``remote:`` and ``routed:`` schemes)."""
    kwargs: dict = {}
    connect_timeout = _float_param(params, "connect_timeout")
    if connect_timeout is not None:
        kwargs["connect_timeout"] = connect_timeout
    op_timeout = _float_param(params, "op_timeout")
    if op_timeout is not None:
        kwargs["op_timeout"] = op_timeout
    retries = _int_param(params, "read_retries")
    if retries is not None:
        kwargs["read_retries"] = retries
    return kwargs


#: Client-tuning keys shared by the network schemes.
_REMOTE_KEYS = ("connect_timeout", "op_timeout", "read_retries")


def _build_remote(rest: str, params: dict) -> StorageEngine:
    from repro.store.net.client import RemoteEngine

    if not rest:
        raise ValueError("remote: needs HOST:PORT or unix:PATH")
    return RemoteEngine(rest, **_remote_kwargs(params))


def _build_routed(rest: str, params: dict) -> StorageEngine:
    from repro.store.net.router import RouterEngine

    endpoints = [endpoint for endpoint in rest.split(",") if endpoint]
    if not endpoints:
        raise ValueError(
            "routed: needs a comma-separated endpoint list, e.g. "
            "'routed:host1:p1,host2:p2'"
        )
    return RouterEngine(endpoints, **_remote_kwargs(params))


register_scheme("memory", (), _build_memory)
register_scheme("file", ("checkpoint_wal_bytes", "manifest_compact_deltas",
                         "heap_cache_pages"), _build_file)
register_scheme("sqlite", ("synchronous",), _build_sqlite)
register_scheme("sharded", ("shard_durability",), _build_sharded)
register_scheme("remote", _REMOTE_KEYS, _build_remote)
register_scheme("routed", _REMOTE_KEYS, _build_routed)


def engine_from_url(url: str) -> StorageEngine:
    """Construct (opening or creating) the storage engine ``url`` names."""
    if not url:
        raise ValueError("empty storage URL")
    base, has_query, query = url.partition("?")
    params = _parse_query(query, url) if has_query else {}
    if not base:
        raise ValueError(f"storage URL {url!r} has no location before '?'")
    scheme, rest = _split_scheme(base)
    extra_keys: tuple[str, ...] = ()
    if scheme == "sharded":
        # Child-scheme keys ride along on sharded URLs and configure
        # every shard: 'sharded:4:file:/p?heap_cache_pages=64'.
        child_part = rest.partition(":")[2]
        if child_part:
            child_scheme = _split_scheme(child_part)[0]
            spec = _SCHEME_REGISTRY.get(
                child_scheme if child_scheme is not None else "file")
            extra_keys = spec.keys if spec is not None else ()
    _check_keys(params, scheme if scheme is not None else "file", url,
                extra_keys)
    kinds = {params.get("durability"), params.get("shard_durability")}
    if not kinds & {"group", "async"}:
        # The tuning knobs configure the committer thread; a sync-only
        # (or policy-less) URL carrying them is a likely typo for
        # durability=group — reject it rather than silently ignore.
        for key in ("group_window_ms", "group_max_batches",
                    "async_max_pending"):
            if key in params:
                raise ValueError(
                    f"query parameter {key} needs durability=group or "
                    f"durability=async (or shard_durability=) alongside "
                    f"it in {url!r}"
                )
    # Validate policy parameters before constructing anything, so a bad
    # value cannot leak an opened engine (file handles, on-disk files).
    obs = _obs_params(params, url)
    policy = _policy_from_params(params.get("durability"), params)
    build = _SCHEME_REGISTRY[scheme if scheme is not None else "file"].build
    engine = build(rest, params)
    if policy is not None:
        engine = PipelinedEngine(engine, policy)
    if obs.get("metrics") or obs.get("slow_op_ms") is not None:
        # An explicit ask for telemetry at the engine level; plain URLs
        # stay unwrapped here (open_store wraps by default at the store
        # layer instead).
        from repro.store.obs import TimedEngine, bind_engine_metrics

        engine = TimedEngine(engine,
                             slow_op_ms=obs.get("slow_op_ms"))
        bind_engine_metrics(engine, engine.metrics)
    return engine
