"""The SQLite backend: one transactional database file per store.

``SqliteEngine`` keeps all three pieces of durable state in a single
SQLite file:

* ``objects(oid, record)`` — the object table (record bytes are opaque
  BLOBs; serialisation stays above the engine layer);
* ``roots(name, oid)`` — the root table;
* ``meta(key, value)`` — the allocator cursor under ``next_oid``.

:meth:`SqliteEngine.apply` maps one :class:`WriteBatch` onto one SQL
transaction (``BEGIN IMMEDIATE`` … ``COMMIT``), so atomicity and crash
recovery are inherited from SQLite's journal rather than re-implemented.
The database runs in WAL mode: once open, readers (other connections,
including other ``SqliteEngine`` instances over the same file) are not
blocked by the writer.  *Opening* an engine does a brief schema
check/create that may wait (up to the 30 s busy timeout) for an
in-flight write transaction on the same file.

``synchronous`` defaults to ``NORMAL``, the standard WAL setting —
commits survive process crashes; an OS/power crash may lose the last
few commits but can never corrupt or tear a batch.  Pass
``synchronous="FULL"`` for an fsync per commit, or call
:meth:`SqliteEngine.sync` as an explicit durability barrier (the
sharded engine does this at its two-phase commit points).

The object-relational mapping is deliberately thin — OID-keyed BLOBs,
not one column per field — following the "store the object model in
relational tables, keep the semantics above" approach of the
object-relational text-indexing work in PAPERS.md.
"""

from __future__ import annotations

import os
import sqlite3
import threading
from typing import Iterable

from repro.errors import StoreClosedError, UnknownOidError
from repro.store.engine.base import StorageEngine, WriteBatch
from repro.store.oids import FIRST_OID, Oid

#: Most OIDs per ``SELECT ... IN`` chunk (SQLite's default bound on host
#: parameters is 999; stay comfortably under it).
_FETCH_CHUNK = 500

_SCHEMA = """
CREATE TABLE IF NOT EXISTS objects (
    oid    INTEGER PRIMARY KEY,
    record BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS roots (
    name TEXT PRIMARY KEY,
    oid  INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value INTEGER NOT NULL
);
"""

_SYNCHRONOUS_LEVELS = ("OFF", "NORMAL", "FULL", "EXTRA")


class SqliteEngine(StorageEngine):
    """Transactional single-file storage over the stdlib ``sqlite3``."""

    name = "sqlite"

    def __init__(self, path: str, *, synchronous: str = "NORMAL"):
        super().__init__()
        if synchronous.upper() not in _SYNCHRONOUS_LEVELS:
            raise ValueError(f"unknown synchronous level {synchronous!r}")
        self._path = path
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        # check_same_thread=False: the sharded engine drives child engines
        # from worker threads (one shard per worker, never concurrently on
        # the same connection); the stdlib module serialises access anyway.
        # timeout: opening performs schema writes, which must wait out an
        # in-flight transaction held by another engine over the same file.
        self._conn: sqlite3.Connection | None = sqlite3.connect(
            path, check_same_thread=False, isolation_level=None,
            timeout=30.0,
        )
        conn = self._conn
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute(f"PRAGMA synchronous={synchronous.upper()}")
        # Incremental vacuum lets compact() hand freed pages back without
        # a full VACUUM rewrite; only effective when set before the first
        # table is created, i.e. on a fresh database.
        conn.execute("PRAGMA auto_vacuum=INCREMENTAL")
        conn.executescript(_SCHEMA)
        conn.execute(
            "INSERT OR IGNORE INTO meta(key, value) VALUES('next_oid', ?)",
            (int(FIRST_OID),),
        )
        # Mirror the small metadata in memory so reads stay dict-cheap,
        # like the other backends; the database remains the truth on open.
        self._roots = {
            name: Oid(oid)
            for name, oid in conn.execute("SELECT name, oid FROM roots")
        }
        self._next_oid = int(conn.execute(
            "SELECT value FROM meta WHERE key='next_oid'"
        ).fetchone()[0])
        # Reads run on one connection *per reader thread*: WAL mode gives
        # each read its own committed snapshot, so N serving threads read
        # concurrently (and never observe the writer connection's
        # half-executed transaction).  Connections are created lazily and
        # all closed with the engine.
        self._read_local = threading.local()
        self._read_conns: list[sqlite3.Connection] = []
        self._read_conns_lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------

    @property
    def path(self) -> str:
        return self._path

    def close(self) -> None:
        if self._closed:
            return
        # Mark closed before reaping, so a reader racing this cannot
        # register (and leak) a fresh connection afterwards — it either
        # made the list in time and is closed here, or it observes the
        # flag and backs out.
        self._closed = True
        if self._conn is not None:
            self._conn.close()
            self._conn = None
        with self._read_conns_lock:
            conns, self._read_conns = self._read_conns, []
        for conn in conns:
            conn.close()
        super().close()

    # -- reads ----------------------------------------------------------

    def _read_conn(self) -> sqlite3.Connection:
        """This thread's read connection (created on first use)."""
        conn = getattr(self._read_local, "conn", None)
        if conn is None:
            # check_same_thread=False so close() may reap the connection
            # from whichever thread closes the engine.
            conn = sqlite3.connect(self._path, check_same_thread=False,
                                   isolation_level=None, timeout=30.0)
            with self._read_conns_lock:
                if self._closed:
                    conn.close()
                    raise StoreClosedError(
                        "the storage engine has been closed")
                self._read_conns.append(conn)
            self._read_local.conn = conn
        return conn

    def read(self, oid: Oid) -> bytes:
        self._check_open()
        row = self._read_conn().execute(
            "SELECT record FROM objects WHERE oid=?", (int(oid),)
        ).fetchone()
        if row is None:
            raise UnknownOidError(int(oid))
        return bytes(row[0])

    def fetch_many(self, oids: Iterable[Oid]) -> dict[Oid, bytes]:
        """One ``SELECT ... IN`` per chunk — the closure planner's waves
        cost a handful of statements instead of a round trip per OID."""
        self._check_open()
        wanted = [int(oid) for oid in oids]
        conn = self._read_conn()
        found: dict[Oid, bytes] = {}
        for start in range(0, len(wanted), _FETCH_CHUNK):
            chunk = wanted[start:start + _FETCH_CHUNK]
            marks = ",".join("?" * len(chunk))
            for oid, record in conn.execute(
                f"SELECT oid, record FROM objects WHERE oid IN ({marks})",
                chunk,
            ):
                found[Oid(oid)] = bytes(record)
        return found

    def contains(self, oid: Oid) -> bool:
        self._check_open()
        row = self._read_conn().execute(
            "SELECT 1 FROM objects WHERE oid=?", (int(oid),)
        ).fetchone()
        return row is not None

    def oids(self) -> tuple[Oid, ...]:
        self._check_open()
        return tuple(
            Oid(row[0])
            for row in self._read_conn().execute("SELECT oid FROM objects")
        )

    @property
    def object_count(self) -> int:
        self._check_open()
        return self._read_conn().execute(
            "SELECT COUNT(*) FROM objects"
        ).fetchone()[0]

    def roots(self) -> dict[str, Oid]:
        return dict(self._roots)

    @property
    def next_oid(self) -> int:
        return self._next_oid

    @property
    def page_count(self) -> int:
        self._check_open()
        return self._read_conn().execute("PRAGMA page_count").fetchone()[0]

    # -- writes ---------------------------------------------------------

    def apply(self, batch: WriteBatch) -> None:
        self.apply_many([batch])

    def apply_many(self, batches) -> None:
        """One SQL transaction for the whole group — the group-commit
        hook: SQLite pays its journal commit once however many batches
        the pipeline coalesced (each batch stays atomic a fortiori)."""
        self._check_open()
        batches = list(batches)
        if not batches:
            return
        # Coerce payloads up front so a bad write raises before the
        # transaction starts — atomicity by not beginning, not by rollback.
        staged = [[(int(oid), bytes(raw)) for oid, raw in batch.writes]
                  for batch in batches]
        conn = self._conn
        conn.execute("BEGIN IMMEDIATE")
        try:
            for batch, writes in zip(batches, staged):
                self._execute_batch(conn, batch, writes)
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        # Only a committed transaction reaches the mirrors.
        for batch, writes in zip(batches, staged):
            if batch.roots is not None:
                self._roots = dict(batch.roots)
            if batch.next_oid is not None:
                self._next_oid = max(self._next_oid, int(batch.next_oid))
            self.record_writes += len(writes)
            self.batches_applied += 1

    def _execute_batch(self, conn, batch: WriteBatch,
                       writes: list[tuple[int, bytes]]) -> None:
        # Batch order contract: writes first (last write to an OID
        # wins), then deletes — an OID both written and deleted in one
        # batch ends up absent.
        conn.executemany(
            "INSERT OR REPLACE INTO objects(oid, record) VALUES(?, ?)",
            writes,
        )
        conn.executemany(
            "DELETE FROM objects WHERE oid=?",
            [(int(oid),) for oid in batch.deletes],
        )
        if batch.roots is not None:
            conn.execute("DELETE FROM roots")
            conn.executemany(
                "INSERT INTO roots(name, oid) VALUES(?, ?)",
                [(name, int(oid))
                 for name, oid in batch.roots.items()],
            )
        if batch.next_oid is not None:
            conn.execute(
                "UPDATE meta SET value=MAX(value, ?) "
                "WHERE key='next_oid'",
                (int(batch.next_oid),),
            )

    def compact(self) -> int:
        self._check_open()
        freed = self._conn.execute("PRAGMA freelist_count").fetchone()[0]
        self._conn.execute("PRAGMA incremental_vacuum")
        return freed

    def sync(self) -> None:
        """Durability barrier: fsync the WAL (and the database file), so
        every committed batch survives power loss even at
        ``synchronous=NORMAL``."""
        self._check_open()
        for path in (self._path + "-wal", self._path):
            try:
                fd = os.open(path, os.O_RDONLY)
            except FileNotFoundError:
                continue
            try:
                os.fsync(fd)
            finally:
                os.close(fd)
