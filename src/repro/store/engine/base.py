"""The abstract storage-engine interface.

A storage engine owns the *durable* half of the store's state:

* the **object table** — record bytes addressed by OID;
* the **root table** — the name -> OID bindings as of the last batch;
* the **allocator cursor** — the next OID a fresh allocator may issue.

The :class:`~repro.store.objectstore.ObjectStore` owns everything live
(identity map, dirty tracking, graph traversal) and talks to the engine
only through reads and :meth:`StorageEngine.apply`, which commits one
:class:`WriteBatch` atomically.  Engines never interpret record bytes —
serialisation stays above this layer.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterable, Optional

from repro.errors import StoreClosedError, UnknownOidError
from repro.store.oids import Oid

if TYPE_CHECKING:  # pragma: no cover
    from repro.store.commit.pipeline import CommitTicket


class WriteBatch:
    """One atomic unit of durable work.

    A batch carries record writes and deletes, optionally a full
    replacement root table (``None`` leaves the engine's roots untouched)
    and a new allocator high-water mark.  :meth:`StorageEngine.apply`
    guarantees all-or-nothing semantics for the whole batch.

    Within one batch, every backend applies the same order: all writes
    first (in call order, so the *last* write to an OID wins), then all
    deletes — an OID that is both written and deleted in the same batch
    ends up absent, regardless of the order the calls were made in.  The
    contract tests pin both rules.
    """

    __slots__ = ("writes", "deletes", "roots", "next_oid")

    def __init__(self) -> None:
        self.writes: list[tuple[Oid, bytes]] = []
        self.deletes: list[Oid] = []
        self.roots: Optional[dict[str, Oid]] = None
        self.next_oid: Optional[int] = None

    def write(self, oid: Oid, record_bytes: bytes) -> "WriteBatch":
        self.writes.append((oid, record_bytes))
        return self

    def delete(self, oid: Oid) -> "WriteBatch":
        self.deletes.append(oid)
        return self

    def set_roots(self, roots: dict[str, Oid]) -> "WriteBatch":
        """Replace the engine's root table with ``roots`` on apply."""
        self.roots = dict(roots)
        return self

    def advance_next_oid(self, next_oid: int) -> "WriteBatch":
        self.next_oid = int(next_oid)
        return self

    @property
    def is_empty(self) -> bool:
        return (not self.writes and not self.deletes
                and self.roots is None and self.next_oid is None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        roots = "unchanged" if self.roots is None else len(self.roots)
        return (f"WriteBatch(writes={len(self.writes)}, "
                f"deletes={len(self.deletes)}, roots={roots}, "
                f"next_oid={self.next_oid})")


class StorageEngine(ABC):
    """Atomic batch write, read-by-OID, root table and allocator metadata.

    Subclasses implement the physical layout; the contract tests in
    ``tests/store/test_engines.py`` pin the behaviour every backend must
    share.
    """

    #: Short backend identifier ("file", "memory", ...).
    name: str = "abstract"

    #: Whether ``apply`` may return before the batch is durable.  Only
    #: the pipelined wrapper under an ``async`` durability policy sets
    #: this; callers that must not outrun durability (the store's
    #: stabilise, the transaction layer) check it before deciding
    #: whether to wait on the commit ticket.
    asynchronous: bool = False

    def __init__(self) -> None:
        self._closed = False
        #: Records written to backing storage since this engine was
        #: opened.  The store's incremental stabilisation is *verified*
        #: through this counter: an unchanged object graph must not move
        #: it.
        self.record_writes = 0
        #: Batches durably applied since open.
        self.batches_applied = 0

    # -- lifecycle ------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Flush and release resources; the engine is unusable after."""
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError("the storage engine has been closed")

    def __enter__(self) -> "StorageEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- reads ----------------------------------------------------------

    @abstractmethod
    def read(self, oid: Oid) -> bytes:
        """The stored record bytes for ``oid``.

        Raises :class:`~repro.errors.UnknownOidError` when no record is
        stored under that OID.
        """

    @abstractmethod
    def contains(self, oid: Oid) -> bool:
        """Whether a record is stored under ``oid``."""

    def fetch_many(self, oids: Iterable[Oid]) -> dict[Oid, bytes]:
        """Bulk read: the stored record bytes for every OID in ``oids``
        that is present; absent OIDs are simply omitted from the result
        (callers decide whether a miss is an integrity error).

        The default is a sequential loop over :meth:`read`.  Backends
        with a cheaper bulk shape override it — the sharded engine fans
        the request out across its shards in parallel, the SQLite engine
        issues one ``SELECT ... IN``, the pipelined wrapper serves
        pending writes from its overlay — which is what makes the
        store's wave-planned fetch (:mod:`repro.store.serve.prefetch`)
        cost one round trip per closure *generation* instead of one per
        OID.

        Like :meth:`read`, ``fetch_many`` must be safe to call from
        several reader threads concurrently, including concurrently with
        one writer thread inside :meth:`apply` — readers then observe
        each batch all-or-nothing, never half-applied.
        """
        self._check_open()
        found: dict[Oid, bytes] = {}
        for oid in oids:
            try:
                found[oid] = self.read(oid)
            except UnknownOidError:
                continue
        return found

    @abstractmethod
    def oids(self) -> Iterable[Oid]:
        """Every stored OID (no particular order)."""

    @property
    @abstractmethod
    def object_count(self) -> int:
        """Number of stored records."""

    # -- metadata -------------------------------------------------------

    @abstractmethod
    def roots(self) -> dict[str, Oid]:
        """The durable root table as of the last applied batch."""

    @property
    @abstractmethod
    def next_oid(self) -> int:
        """The durable OID-allocator cursor."""

    @property
    @abstractmethod
    def page_count(self) -> int:
        """Physical storage units in use (pages for the file engine,
        records for the memory engine); feeds store statistics."""

    # -- writes ---------------------------------------------------------

    @abstractmethod
    def apply(self, batch: WriteBatch) -> None:
        """Make ``batch`` durable atomically.

        After ``apply`` returns, every write, delete, root change and
        allocator advance in the batch is visible and survives whatever
        "durable" means for the backend; if it raises before the commit
        point, none of them are.
        """

    def apply_many(self, batches: Iterable[WriteBatch]) -> None:
        """Apply several batches, in order, each one atomically.

        The default is a sequential loop; backends with a shared commit
        cost override it so a whole group pays that cost once — the
        file engine appends every batch to the WAL and fsyncs a single
        time, the SQLite engine wraps the group in one SQL transaction.
        This is the hook the commit pipeline's group commit drives.
        """
        self._check_open()
        for batch in batches:
            self.apply(batch)

    def apply_async(self, batch: WriteBatch) -> "CommitTicket":
        """Submit ``batch`` and return its durability future.

        Direct engines commit inline and return an already-settled
        ticket, so callers can treat every engine uniformly; the
        pipelined wrapper returns a live ticket that resolves when the
        committer thread has made the batch durable.
        """
        from repro.store.commit.pipeline import completed_ticket
        self.apply(batch)
        return completed_ticket(batch)

    def flush(self) -> None:
        """Block until every submitted batch has been committed.

        A no-op for direct engines, whose ``apply`` already returns
        post-commit; the pipelined wrapper drains its queue and
        re-raises any commit failure, and the sharded engine fans the
        barrier out to its children.
        """
        self._check_open()

    def compact(self) -> int:
        """Reclaim space left behind by deletes; returns the number of
        storage units compacted.  Optional — defaults to a no-op."""
        return 0

    def sync(self) -> None:
        """Force every batch applied so far onto stable storage.

        A durability *barrier* for backends whose ``apply`` commits
        without an fsync (``SqliteEngine`` at the default
        ``synchronous=NORMAL``): after ``sync`` returns, those batches
        survive power loss, not just process death.  Backends that
        already fsync per batch (``FileEngine``) or have no durability
        to force (``MemoryEngine``) inherit this no-op.  The sharded
        engine uses it to order its two-phase commit across shards.
        """
        self._check_open()
