"""The bounded object cache: an LRU hot set over a weak-reference tail.

The plain :class:`~repro.store.cache.IdentityMap` pins every object it
has ever fetched, so a long read session over a large store grows without
bound.  ``ObjectCache`` keeps the identity guarantee while bounding what
the *store itself* pins:

* the **hot set** — up to ``capacity`` objects held strongly, in LRU
  order (every :meth:`object_for` hit refreshes recency; internal walks
  use :meth:`peek` and do not);
* the **tail** — demoted objects held through :mod:`weakref`.  A demoted
  object stays resolvable exactly as long as anything else keeps it
  alive (application code, or a live parent object whose state
  references it); once the last strong reference goes, it is collected
  and a later fetch simply re-materialises it from the engine.  Identity
  is never violated: the weak entry resolves to the one live object or
  to nothing.

Eviction is *demotion*, never removal, because removing a live object
from the map would let a second copy materialise behind the
application's back (and let stabilise allocate it a second OID).  Three
kinds of victim refuse demotion and stay strong:

* **dirty objects** — the store's demotion guard compares the victim's
  current state against its last-stored snapshot; unstabilised mutations
  must not become collectable;
* **non-weakrefable objects** — plain ``list``/``dict``/``set``/
  ``bytearray`` nodes cannot be weakly referenced in CPython, so the
  bound is enforced over registered-class instances (the overwhelming
  population in a hyper-program store) and container nodes stay pinned;
* objects the guard cannot judge (snapshot raises): kept, conservatively.

Demotion calls the store's demotion hook so the store drops its
clean-state snapshot of the victim — a snapshot holds strong references
to the victim's children and would otherwise keep whole demoted chains
alive through the bookkeeping rather than through the object graph.

The dirty-check has one unavoidable race: mutating a plain Python
object takes no lock, so a mutation landing in the instant between the
guard's clean-judgement and the demotion leaves a dirty object in the
weak tier.  The contract therefore is: **a thread that mutates an
object while other threads are fetching must keep it alive (hold a
strong reference) until the next stabilise** — the same rule as for
objects mutated after demotion.  Single-threaded mutators never hit
this: their mutations happen strictly between enforcement points, and
a dirty victim is always refused.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from typing import Any, Callable, Iterator, Optional

from repro.store.cache import IdentityMap
from repro.store.oids import Oid

#: ``guard(oid, obj) -> bool`` — may this clean victim be demoted?
DemotionGuard = Callable[[Oid, Any], bool]


class ObjectCache(IdentityMap):
    """Identity map with a bounded strong set (LRU + weakref demotion)."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        super().__init__()
        if capacity is not None and capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        # Reuse the base map as the strong tier, but in LRU order.
        self._by_oid: OrderedDict[Oid, Any] = OrderedDict()
        #: Demoted tail: oid -> (weak reference, id() at demotion time,
        #: so the reverse entry can be purged after the object dies).
        self._weak: dict[Oid, tuple[weakref.ref, int]] = {}
        self._guard: Optional[DemotionGuard] = None
        self._demotion_hook: Optional[Callable[[Oid], None]] = None
        #: Observability: demotions and weak-tier deaths since creation.
        self.demotions = 0
        self.weak_deaths = 0

    # -- configuration ---------------------------------------------------

    @property
    def capacity(self) -> Optional[int]:
        return self._capacity

    def set_demotion_guard(self, guard: Optional[DemotionGuard]) -> None:
        self._guard = guard

    def set_demotion_hook(self,
                          hook: Optional[Callable[[Oid], None]]) -> None:
        self._demotion_hook = hook

    # -- lookups ---------------------------------------------------------

    def _weak_live(self, oid: Oid) -> Optional[Any]:
        """Resolve a weak entry, purging it if the object has died.
        Caller holds the mutex."""
        entry = self._weak.get(oid)
        if entry is None:
            return None
        obj = entry[0]()
        if obj is None:
            del self._weak[oid]
            if self._oid_by_id.get(entry[1]) == oid:
                del self._oid_by_id[entry[1]]
            self.weak_deaths += 1
        return obj

    def object_for(self, oid: Oid) -> Optional[Any]:
        with self._mutex:
            obj = self._by_oid.get(oid)
            if obj is not None:
                self._by_oid.move_to_end(oid)
                return obj
            obj = self._weak_live(oid)
            if obj is not None:
                # Promote back into the hot set; someone is using it.
                del self._weak[oid]
                self._by_oid[oid] = obj
                self._enforce()
            return obj

    def hit(self, oid: Oid) -> Optional[Any]:
        """Optimistic probe (see :meth:`IdentityMap.hit`).

        Unbounded caches answer with a bare atomic ``dict.get`` — with
        no capacity there is no LRU order to maintain and nothing is
        ever demoted, so a strong-tier read needs no mutex (a miss
        falls back to the caller's locked path, which also probes the
        weak tail).  Bounded caches keep the mutex: a hit moves the
        entry in the LRU order and may promote it out of the weak
        tail, neither of which is a single atomic operation.  The
        distinction matters under reader stampedes — see
        :meth:`~repro.store.objectstore.ObjectStore.object_for`.
        """
        if self._capacity is None:
            return self._by_oid.get(oid)
        return self.object_for(oid)

    def peek(self, oid: Oid) -> Optional[Any]:
        with self._mutex:
            obj = self._by_oid.get(oid)
            if obj is not None:
                return obj
            return self._weak_live(oid)

    def oid_for(self, obj: Any) -> Optional[Oid]:
        with self._mutex:
            oid = self._oid_by_id.get(id(obj))
            if oid is None:
                return None
            if self._by_oid.get(oid) is obj:
                return oid
            entry = self._weak.get(oid)
            if entry is not None and entry[0]() is obj:
                return oid
            return None

    def __contains__(self, oid: Oid) -> bool:
        with self._mutex:
            return oid in self._by_oid or self._weak_live(oid) is not None

    def __len__(self) -> int:
        with self._mutex:
            live_weak = sum(1 for ref, _ in self._weak.values()
                            if ref() is not None)
            return len(self._by_oid) + live_weak

    @property
    def strong_count(self) -> int:
        with self._mutex:
            return len(self._by_oid)

    # -- mutation --------------------------------------------------------

    def add(self, oid: Oid, obj: Any, enforce: bool = True) -> None:
        """Bind ``oid`` to ``obj`` in the strong tier.

        ``enforce=False`` defers capacity enforcement to an explicit
        :meth:`enforce_capacity` call: a bulk install (the store's fault
        path) must add every shell of a subgraph *before* any demotion
        runs, or an LRU victim another shell still needs could be
        demoted — and die — mid-installation.
        """
        with self._mutex:
            existing = self._by_oid.get(oid)
            if existing is None:
                existing = self._weak_live(oid)
            if existing is not None:
                if existing is not obj:
                    raise ValueError(
                        f"oid {oid} is already bound to another object")
                # Rebinding the same pair: treat as a use.
                if oid in self._weak:
                    del self._weak[oid]
                    self._by_oid[oid] = obj
                else:
                    self._by_oid.move_to_end(oid)
            else:
                self._by_oid[oid] = obj
            self._oid_by_id[id(obj)] = oid
            if enforce:
                self._enforce()

    def evict(self, oid: Oid) -> None:
        with self._mutex:
            obj = self._by_oid.pop(oid, None)
            if obj is not None:
                self._oid_by_id.pop(id(obj), None)
                return
            entry = self._weak.pop(oid, None)
            if entry is not None and self._oid_by_id.get(entry[1]) == oid:
                del self._oid_by_id[entry[1]]

    def clear(self) -> None:
        with self._mutex:
            self._by_oid.clear()
            self._weak.clear()
            self._oid_by_id.clear()

    # -- views -----------------------------------------------------------

    def items(self) -> Iterator[tuple[Oid, Any]]:
        with self._mutex:
            snapshot = list(self._by_oid.items())
            for oid in list(self._weak):
                obj = self._weak_live(oid)
                if obj is not None:
                    snapshot.append((oid, obj))
            return iter(snapshot)

    def oids(self) -> set[Oid]:
        with self._mutex:
            live = set(self._by_oid)
            for oid in list(self._weak):
                if self._weak_live(oid) is not None:
                    live.add(oid)
            return live

    # -- demotion --------------------------------------------------------

    def enforce_capacity(self) -> int:
        with self._mutex:
            return self._enforce()

    def _enforce(self) -> int:
        """Demote LRU victims until the strong set fits.  Caller holds
        the mutex.  Undemotable victims are rotated to the hot end
        (CLOCK-style) so the next pass examines fresh candidates, and
        the scan is budgeted: when the set is over capacity because of
        a large dirty or non-weakrefable population, one enforcement
        examines a bounded slice rather than re-judging every pinned
        entry (the guard can cost a re-encode per victim) on every
        fetch."""
        if self._capacity is None:
            return 0
        excess = len(self._by_oid) - self._capacity
        if excess <= 0:
            return 0
        budget = max(32, 4 * excess)
        demoted = 0
        for oid in list(self._by_oid.keys()):
            if len(self._by_oid) <= self._capacity or budget <= 0:
                break
            budget -= 1
            obj = self._by_oid.get(oid)
            if obj is None:
                continue
            if self._guard is not None:
                try:
                    allowed = self._guard(oid, obj)
                except Exception:
                    allowed = False  # cannot judge: keep it pinned
                if not allowed:
                    self._by_oid.move_to_end(oid)
                    continue
            try:
                ref = weakref.ref(obj)
            except TypeError:
                # Plain containers cannot be weakly referenced; they
                # stay strong (documented limitation).
                self._by_oid.move_to_end(oid)
                continue
            del self._by_oid[oid]
            self._weak[oid] = (ref, id(obj))
            demoted += 1
            self.demotions += 1
            if self._demotion_hook is not None:
                self._demotion_hook(oid)
        return demoted
