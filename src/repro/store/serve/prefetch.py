"""Closure planning: fault an object graph in engine-parallel waves.

The original fetch loop issued one ``engine.read`` per OID while walking
the reference closure — fine over a dict, but over a sharded store every
record is a full engine round trip and the shard pool sits idle.
``FetchPlanner`` walks the closure in *waves*: every OID discovered in
one generation is fetched with a single
:meth:`~repro.store.engine.base.StorageEngine.fetch_many` call, which
the sharded engine fans out across its shards in parallel (and the
SQLite engine turns into one ``SELECT ... IN``).  A graph of depth *d*
costs *d* bulk reads instead of one read per node.

The planner performs **no identity-map mutation** — it only reads the
engine and peeks at liveness through the callback it is given.  The
store runs planning outside its write lock (so N faulting threads
overlap their engine I/O) and installs the planned records under the
write lock afterwards, re-validating against concurrent faults and
evictions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.errors import UnknownOidError
from repro.store.engine.base import StorageEngine
from repro.store.obs.trace import span as trace_span
from repro.store.oids import Oid
from repro.store.serializer import Record, record_refs, unwrap_record


@dataclass
class FetchPlan:
    """The outcome of one closure walk: every record needed to
    materialise the requested roots, with its raw bytes (for the store's
    stored-signature bookkeeping) and decoded form."""

    #: oid -> (raw record bytes, decoded record), discovery order.
    records: dict[Oid, tuple[bytes, Record]] = field(default_factory=dict)
    #: Number of bulk-read waves the walk took (observability).
    waves: int = 0

    def __len__(self) -> int:
        return len(self.records)


class FetchPlanner:
    """Plans reference-closure fetches as shard-parallel waves."""

    def __init__(self, engine: StorageEngine):
        self._engine = engine
        # Native fault telemetry (pull gauges via obs): closure plans
        # built and bulk-read waves issued across all of them.
        self.plans = 0
        self.total_waves = 0

    def closure(self, roots: Iterable[Oid],
                is_live: Callable[[Oid], bool]) -> FetchPlan:
        """Fetch every stored record reachable from ``roots`` that is not
        already live.

        ``is_live`` answers whether an OID already has a live object (the
        store passes an identity-map peek); live subgraphs are not
        descended into — their records are not needed and their own
        references are already materialised.

        Raises :class:`~repro.errors.UnknownOidError` when a root or a
        stored reference does not resolve, naming the referer when one is
        known.  Over a sharded engine mid-commit this can be a transient
        torn-window read; the store retries the plan.
        """
        plan = FetchPlan()
        referer: dict[Oid, Optional[Oid]] = {}
        frontier: list[Oid] = []
        for oid in roots:
            if oid not in referer and not is_live(oid):
                referer[oid] = None
                frontier.append(oid)
        self.plans += 1
        while frontier:
            plan.waves += 1
            self.total_waves += 1
            # One leaf span per bulk-read wave: a traced fault shows
            # the closure depth and where the wide waves were.
            with trace_span("planner.wave"):
                fetched = self._engine.fetch_many(frontier)
            next_frontier: list[Oid] = []
            for oid in frontier:
                raw = fetched.get(oid)
                if raw is None:
                    parent = referer.get(oid)
                    if parent is None:
                        raise UnknownOidError(int(oid))
                    raise UnknownOidError(
                        f"stored object {int(parent)} references missing "
                        f"oid {int(oid)}"
                    )
                # Codec-framed records are unwrapped here so the plan
                # carries *raw* bytes: the store's stored-signature
                # bookkeeping is defined over the uncompressed encoding.
                raw = unwrap_record(raw)
                record = Record.from_bytes(raw)
                plan.records[oid] = (raw, record)
                for ref in record_refs(record, include_weak=True):
                    if ref in referer or ref in plan.records:
                        continue
                    if is_live(ref):
                        continue
                    referer[ref] = oid
                    next_frontier.append(ref)
            frontier = next_frontier
        return plan
