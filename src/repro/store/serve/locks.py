"""A writer-preferring read-write lock.

``ReadWriteLock`` lets any number of reader threads proceed together
while giving a writer exclusive access, with *writer preference*: once a
writer is waiting, new readers queue behind it, so a stream of cache-hit
reads cannot starve the faults and evictions that keep the cache
correct.

Re-entrancy rules (enforced, not advisory):

* a thread may nest read acquisitions inside read acquisitions;
* a thread may nest write acquisitions inside write acquisitions;
* a thread holding the *write* lock may take the read lock (it already
  excludes every other thread);
* a thread holding only the *read* lock may **not** request the write
  lock — the classic upgrade deadlock (two readers both waiting for the
  other to leave) is refused with ``RuntimeError`` so the bug surfaces
  at the call site instead of as a hang.  Release the read lock, take
  the write lock, and re-validate instead; the store's fault path is
  built exactly that way.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator


class ReadWriteLock:
    """Many readers or one writer; waiting writers block new readers."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        #: thread ident -> read depth, for every thread holding the
        #: read side (a writer taking the read side is counted here too).
        self._readers: dict[int, int] = {}
        self._writer: int | None = None
        self._write_depth = 0
        self._writers_waiting = 0
        #: Seqlock epoch for optimistic lock-free reads: odd while a
        #: writer holds the lock, even otherwise.  A reader samples it
        #: before and after an unlocked probe; an unchanged even value
        #: proves no write section overlapped the probe.  Plain ``int``
        #: loads and stores are atomic under the GIL, so sampling takes
        #: no mutex — which is the whole point: under a stampede of
        #: spinning readers, every mutex acquisition on this lock's
        #: condition becomes a GIL-convoy starvation point on few-core
        #: hosts, and the optimistic path keeps readers off it entirely.
        self.seq = 0
        #: Contention telemetry: write acquisitions, and nanoseconds
        #: writers spent blocked waiting out readers (only timed when
        #: the acquire actually waits — the uncontended path stays
        #: clock-free).  Surfaced as pull gauges by the store.
        self.write_acquires = 0
        self.writer_wait_ns = 0

    # -- read side -------------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        if self._writer is not None or self._writers_waiting:
            # Back off on plain attribute loads (GIL-atomic) *before*
            # touching the condition's mutex.  A stampede of reader
            # threads repeatedly acquiring and releasing that C-level
            # mutex can starve a writer's own mutex acquire for an
            # unbounded time on few-core hosts (mutex barging: the
            # thread already running wins the grab every time).
            # Sleeping also releases the GIL, so the writer's commit
            # work proceeds instead of waiting out switch intervals.
            # Nested acquisitions must not wait (the writer could be
            # queued behind this thread's own read hold — deadlock).
            if self._writer != me and me not in self._readers:
                while self._writer is not None or self._writers_waiting:
                    time.sleep(0.0005)
        with self._cond:
            if self._writer == me or me in self._readers:
                # Nested read (or read under our own write lock): granted
                # immediately — blocking on a waiting writer here would
                # deadlock against ourselves.
                self._readers[me] = self._readers.get(me, 0) + 1
                return
            while self._writer is not None or self._writers_waiting:
                self._cond.wait()
            self._readers[me] = 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            depth = self._readers.get(me)
            if depth is None:
                raise RuntimeError("release_read without acquire_read")
            if depth == 1:
                del self._readers[me]
                if not self._readers:
                    self._cond.notify_all()
            else:
                self._readers[me] = depth - 1

    # -- write side ------------------------------------------------------

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._write_depth += 1
                return
            if me in self._readers:
                raise RuntimeError(
                    "read-to-write upgrade would deadlock; release the "
                    "read lock, acquire the write lock, and re-validate"
                )
            self._writers_waiting += 1
            try:
                if self._writer is not None or self._readers:
                    waited_from = time.perf_counter_ns()
                    while self._writer is not None or self._readers:
                        self._cond.wait()
                    self.writer_wait_ns += (time.perf_counter_ns()
                                            - waited_from)
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._write_depth = 1
            self.write_acquires += 1
            self.seq += 1  # now odd: write section open

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise RuntimeError("release_write without acquire_write")
            self._write_depth -= 1
            if self._write_depth == 0:
                self._writer = None
                self.seq += 1  # back to even: write section closed
                self._cond.notify_all()

    # -- context managers ------------------------------------------------

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- introspection (tests) -------------------------------------------

    @property
    def read_held(self) -> bool:
        """Whether the calling thread holds the read side."""
        with self._cond:
            return threading.get_ident() in self._readers

    @property
    def write_held(self) -> bool:
        """Whether the calling thread holds the write side."""
        with self._cond:
            return self._writer == threading.get_ident()
