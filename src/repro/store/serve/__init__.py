"""The read-serving subsystem: concurrent fetch over a bounded cache.

The store's write path went concurrent in the commit-pipeline cycle
(``stabilize()`` is thread-safe and group-commits coalesce); this package
supplies the matching read path, so N serving threads can resolve OID
graphs against a live store:

* :class:`~repro.store.serve.locks.ReadWriteLock` — a writer-preferring
  read-write lock.  The store holds the read side for identity-map
  lookups (many threads at once) and the write side for the compound
  operations that must be atomic against them: installing a faulted
  subgraph, ``refresh``'s evict-and-refault, garbage-collection
  evictions.
* :class:`~repro.store.serve.cache.ObjectCache` — the bounded identity
  map: an LRU of strong references over a weak-reference tail, so a
  store serving millions of objects keeps at most ``cache_objects``
  clean objects pinned while identity is still preserved for every
  object the application can reach.
* :class:`~repro.store.serve.prefetch.FetchPlanner` — closure fetching
  in shard-parallel waves over the
  :meth:`~repro.store.engine.base.StorageEngine.fetch_many` bulk-read
  contract, instead of one engine round-trip per OID.
"""

from repro.store.serve.cache import ObjectCache
from repro.store.serve.locks import ReadWriteLock
from repro.store.serve.prefetch import FetchPlan, FetchPlanner

__all__ = ["ObjectCache", "ReadWriteLock", "FetchPlan", "FetchPlanner"]
