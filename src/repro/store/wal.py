"""Write-ahead log.

Durability for :class:`~repro.store.objectstore.ObjectStore` follows the
classic checkpoint + log discipline:

* the durable state is the heap file plus a metadata snapshot (roots,
  OID allocator cursor, object table);
* every :meth:`stabilise <repro.store.objectstore.ObjectStore.stabilize>`
  first appends the batch of object writes to the log and *commits* it
  (fsync), then applies the batch to the heap and atomically replaces the
  metadata snapshot, then truncates the log;
* recovery replays committed log batches over the snapshot, so a crash at
  any point yields either the old or the new state, never a mixture.

Each log entry is framed as ``u32 length | u32 crc32 | payload`` and the
payload starts with a one-byte entry type.  A torn tail (bad length or CRC)
ends replay — exactly the entries up to the last fsynced commit survive.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from typing import Iterator

from repro.errors import CorruptHeapError
from repro.store.obs.trace import span as trace_span
from repro.store.oids import Oid

ENTRY_BEGIN = b"B"
ENTRY_WRITE = b"W"
ENTRY_DELETE = b"D"
ENTRY_ROOT = b"R"
ENTRY_UNROOT = b"U"
ENTRY_NEXT_OID = b"N"
ENTRY_COMMIT = b"C"

_FRAME = struct.Struct("<II")


def frame_payload(payload: bytes) -> bytes:
    """One CRC frame: ``u32 length | u32 crc32 | payload``.

    Shared by the WAL and the file engine's manifest log, so the two
    append-only logs cannot drift apart in format handling.
    """
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def iter_frames(data: bytes) -> Iterator[tuple[int, bytes]]:
    """Yield ``(end_offset, payload)`` for every complete, CRC-valid
    frame; a torn tail (short frame or bad CRC) ends iteration — the
    caller's last ``end_offset`` is the clean truncation point."""
    pos = 0
    while pos + _FRAME.size <= len(data):
        length, crc = _FRAME.unpack_from(data, pos)
        start = pos + _FRAME.size
        end = start + length
        if end > len(data):
            return
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            return
        yield end, payload
        pos = end


@dataclass
class LogEntry:
    """One decoded log entry."""

    kind: bytes
    txn_id: int
    oid: Oid = Oid(0)
    data: bytes = b""
    name: str = ""

    def encode(self) -> bytes:
        buf = bytearray()
        buf.extend(self.kind)
        buf.extend(struct.pack("<Q", self.txn_id))
        if self.kind in (ENTRY_WRITE, ENTRY_DELETE, ENTRY_NEXT_OID):
            buf.extend(struct.pack("<Q", self.oid))
            buf.extend(self.data)
        elif self.kind in (ENTRY_ROOT, ENTRY_UNROOT):
            raw_name = self.name.encode("utf-8")
            buf.extend(struct.pack("<QI", self.oid, len(raw_name)))
            buf.extend(raw_name)
        return bytes(buf)

    @classmethod
    def decode(cls, payload: bytes) -> "LogEntry":
        kind = payload[0:1]
        txn_id = struct.unpack_from("<Q", payload, 1)[0]
        pos = 9
        if kind in (ENTRY_WRITE, ENTRY_DELETE, ENTRY_NEXT_OID):
            oid = struct.unpack_from("<Q", payload, pos)[0]
            return cls(kind, txn_id, Oid(oid), payload[pos + 8:])
        if kind in (ENTRY_ROOT, ENTRY_UNROOT):
            oid, name_len = struct.unpack_from("<QI", payload, pos)
            name = payload[pos + 12:pos + 12 + name_len].decode("utf-8")
            return cls(kind, txn_id, Oid(oid), b"", name)
        return cls(kind, txn_id)


class WriteAheadLog:
    """Append-only, CRC-framed log with batch commit."""

    def __init__(self, path: str):
        self._path = path
        self._file = open(path, "ab+")
        # Native telemetry, surfaced as pull gauges by
        # repro.store.obs.bind_engine_metrics.
        self.fsyncs = 0
        self.synced_bytes = 0
        self._unsynced_bytes = 0

    @property
    def path(self) -> str:
        return self._path

    def size(self) -> int:
        self._file.seek(0, os.SEEK_END)
        return self._file.tell()

    # -- writing ----------------------------------------------------------

    def append(self, entry: LogEntry) -> None:
        frame = frame_payload(entry.encode())
        self._file.write(frame)
        self._unsynced_bytes += len(frame)

    def commit(self, txn_id: int, sync: bool = True) -> None:
        """Append a commit marker and (by default) force it to disk.

        Group commit passes ``sync=False`` for every batch but the
        last, then issues one :meth:`sync` for the whole group — the
        markers are only acknowledged once that fsync returns.
        """
        self.append(LogEntry(ENTRY_COMMIT, txn_id))
        if sync:
            self.sync()

    def sync(self) -> None:
        # The durability point of every commit: a leaf span when the
        # surrounding work is being traced, free otherwise.
        with trace_span("wal.fsync"):
            self._file.flush()
            os.fsync(self._file.fileno())
        self.fsyncs += 1
        self.synced_bytes += self._unsynced_bytes
        self._unsynced_bytes = 0

    def truncate(self) -> None:
        """Discard the log after a successful checkpoint."""
        self._file.seek(0)
        self._file.truncate()
        self._unsynced_bytes = 0
        self.sync()

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    # -- replay -----------------------------------------------------------

    def _iter_raw(self) -> Iterator[LogEntry]:
        self._file.seek(0)
        data = self._file.read()
        pos = 0
        for end, payload in iter_frames(data):
            try:
                yield LogEntry.decode(payload)
            except (struct.error, IndexError, UnicodeDecodeError) as exc:
                raise CorruptHeapError(
                    f"undecodable log entry at offset {pos}: {exc}"
                ) from exc
            pos = end

    def committed_batches(self) -> list[list[LogEntry]]:
        """Entries of every committed batch, in commit order.

        Entries of a batch that never reached its commit marker are
        discarded, which is the atomicity guarantee.
        """
        batches: dict[int, list[LogEntry]] = {}
        committed: list[list[LogEntry]] = []
        for entry in self._iter_raw():
            if entry.kind == ENTRY_BEGIN:
                batches[entry.txn_id] = []
            elif entry.kind == ENTRY_COMMIT:
                if entry.txn_id in batches:
                    committed.append(batches.pop(entry.txn_id))
            else:
                batches.setdefault(entry.txn_id, []).append(entry)
        return committed

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
