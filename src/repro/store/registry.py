"""Class registry — typed-object fidelity for the persistent store.

PJama stores Java objects together with their classes, so a fetched object
is always an instance of the *same* class it was stored as.  A naive Python
port built on pickle loses that guarantee: pickle looks classes up by import
path at load time, silently binds to whatever is there, and performs no
schema check.  The registry restores the PJama behaviour:

* every persistent class is registered under a stable *qualified name*;
* registration computes a *schema fingerprint* over the class's declared
  persistent fields;
* on fetch, the stored fingerprint is compared with the live class's
  fingerprint and a :class:`~repro.errors.SchemaMismatchError` is raised on
  drift (unless an evolution step has installed a converter — see
  :mod:`repro.evolve.evolution`).

Persistent fields are declared either with ``__slots__``, with class-level
type annotations, or implicitly by whatever attributes instances carry at
store time (in declaration-independent alphabetical order).
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Iterable

from repro.errors import ClassNotRegisteredError, SchemaMismatchError


def qualified_name(cls: type) -> str:
    """The stable name a class is registered under: ``module.QualName``."""
    return f"{cls.__module__}.{cls.__qualname__}"


def declared_fields(cls: type) -> tuple[str, ...]:
    """The persistent fields a class declares, in a stable order.

    ``__slots__`` wins if present (in declaration order, including inherited
    slots, base classes first); otherwise class-level annotations are used
    (again base-first declaration order); otherwise the class declares no
    fixed schema and instances are stored with their live ``__dict__`` keys.
    """
    slots: list[str] = []
    annotations: list[str] = []
    for klass in reversed(cls.__mro__):
        raw_slots = klass.__dict__.get("__slots__")
        if raw_slots is not None:
            if isinstance(raw_slots, str):
                raw_slots = (raw_slots,)
            slots.extend(name for name in raw_slots if name not in slots)
        for name in klass.__dict__.get("__annotations__", {}):
            if not name.startswith("_") and name not in annotations:
                annotations.append(name)
    if slots:
        return tuple(slots)
    return tuple(annotations)


def schema_fingerprint(cls: type, fields: Iterable[str] | None = None) -> str:
    """A short hash identifying a class's persistent schema.

    The fingerprint covers the qualified name and the declared field list.
    It deliberately ignores method bodies: adding behaviour is not a schema
    change, but renaming/removing a field is.
    """
    if fields is None:
        fields = declared_fields(cls)
    payload = qualified_name(cls) + "(" + ",".join(fields) + ")"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class RegisteredClass:
    """Registry entry for one persistent class."""

    __slots__ = ("cls", "name", "fields", "fingerprint", "converters")

    def __init__(self, cls: type):
        self.cls = cls
        self.name = qualified_name(cls)
        self.fields = declared_fields(cls)
        self.fingerprint = schema_fingerprint(cls, self.fields)
        #: old-fingerprint -> converter(dict-of-old-fields) -> dict-of-new-fields
        self.converters: dict[str, Callable[[dict[str, Any]], dict[str, Any]]] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RegisteredClass({self.name}, fields={self.fields})"


class ClassRegistry:
    """Maps qualified class names to :class:`RegisteredClass` entries."""

    def __init__(self) -> None:
        self._by_name: dict[str, RegisteredClass] = {}
        self._by_class: dict[type, RegisteredClass] = {}

    # -- registration -------------------------------------------------

    def register(self, cls: type) -> RegisteredClass:
        """Register ``cls`` (idempotent) and return its entry.

        Re-registering the *same* class object refreshes the entry, which
        picks up schema changes made by evolution.  Registering a different
        class under an already-used name replaces the binding — this is how
        an evolved class supersedes its predecessor.
        """
        entry = RegisteredClass(cls)
        previous = self._by_name.get(entry.name)
        if previous is not None and previous.cls is not cls:
            # Carry converters across an evolution re-registration, and keep
            # accepting objects stored under the superseded fingerprint if
            # the field lists still agree.
            entry.converters.update(previous.converters)
            self._by_class.pop(previous.cls, None)
        self._by_name[entry.name] = entry
        self._by_class[cls] = entry
        return entry

    def register_converter(self, cls: type, old_fingerprint: str,
                           converter: Callable[[dict[str, Any]], dict[str, Any]]) -> None:
        """Install a converter mapping old-schema field dicts to the new schema."""
        self.entry_for_class(cls).converters[old_fingerprint] = converter

    # -- lookup ---------------------------------------------------------

    def is_registered(self, cls: type) -> bool:
        return cls in self._by_class

    def entry_for_class(self, cls: type) -> RegisteredClass:
        try:
            return self._by_class[cls]
        except KeyError:
            raise ClassNotRegisteredError(
                f"class {qualified_name(cls)} is not registered with this "
                f"store's registry; call store.registry.register(cls) or "
                f"decorate it with @persistent(registry=store.registry) — "
                f"note that each ObjectStore has its own registry unless "
                f"one is passed in explicitly"
            ) from None

    def entry_for_name(self, name: str) -> RegisteredClass:
        try:
            return self._by_name[name]
        except KeyError:
            raise ClassNotRegisteredError(
                f"no class registered under {name!r} with this store's "
                f"registry; register it before fetching objects stored as "
                f"that class"
            ) from None

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._by_name))

    # -- schema checking ------------------------------------------------

    def check_fingerprint(self, name: str, stored_fingerprint: str) -> RegisteredClass:
        """Validate a stored object's schema against the live class.

        Returns the entry when the fingerprints match or a converter is
        available for the stored fingerprint; raises
        :class:`SchemaMismatchError` otherwise.
        """
        entry = self.entry_for_name(name)
        if stored_fingerprint == entry.fingerprint:
            return entry
        if stored_fingerprint in entry.converters:
            return entry
        raise SchemaMismatchError(
            f"object stored as {name} with schema {stored_fingerprint} does "
            f"not match the live class (schema {entry.fingerprint}); run an "
            f"evolution step or register a converter"
        )


#: The module-level registry targeted by the bare ``@persistent`` form.
#: Stores no longer consult it implicitly — every :class:`ObjectStore`
#: either receives a registry or creates a private one — so classes
#: registered here must be shared deliberately:
#: ``ObjectStore.open(dir, registry=default_registry)``.
default_registry = ClassRegistry()


def persistent(cls: type | None = None, *,
               registry: ClassRegistry | None = None):
    """Class decorator marking a class as persistent.

    Usage, with the registry the store was built on::

        @persistent(registry=store.registry)
        class Person:
            name: str
            spouse: "Person | None"

    The bare form ``@persistent`` registers into the module-level
    :data:`default_registry`; pass that registry to the store explicitly
    (``ObjectStore.open(dir, registry=default_registry)``) for the store
    to see those classes.
    """
    target = registry if registry is not None else default_registry

    def decorate(klass: type) -> type:
        target.register(klass)
        return klass

    if cls is None:
        return decorate
    return decorate(cls)
