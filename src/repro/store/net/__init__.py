"""Network serving for the store: shard servers, wire protocol, clients.

The pieces, bottom up:

* :mod:`repro.store.net.protocol` — the compact length-prefixed binary
  frame format (uvarint length + CRC + opcode/status + body) and the
  body encodings, shared by both sides of every connection;
* :class:`~repro.store.net.server.StoreServer` — one process per shard
  group: wraps any engine URL and serves the full
  :class:`~repro.store.engine.base.StorageEngine` contract over TCP or
  a Unix socket (``scripts/store_server.py`` is the entry point);
* :class:`~repro.store.net.client.RemoteEngine` — the ``remote:``
  engine: a server seen through the engine seam, with a per-thread
  connection pool, pipelined ``fetch_many`` and bounded reconnect-retry
  on idempotent reads;
* :class:`~repro.store.net.router.RouterEngine` — the ``routed:``
  front-end: a :class:`~repro.store.engine.sharded.ShardedEngine` whose
  shards are remote servers, giving cross-server two-phase commits and
  fanned-out reads to any number of client processes.

``open_store("remote:HOST:PORT")`` and
``open_store("routed:h1:p1,h2:p2")`` select the client engines by URL;
see ``docs/architecture.md`` ("Network serving") for the wire-format
table and deployment shape.
"""

from repro.store.net.client import RemoteEngine
from repro.store.net.router import RouterEngine
from repro.store.net.server import StoreServer

__all__ = ["RemoteEngine", "RouterEngine", "StoreServer"]
