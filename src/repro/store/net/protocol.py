"""The store wire protocol: compact length-prefixed binary frames.

One frame travels in each direction per operation::

    uvarint(len(payload)) | u32 crc32(payload) | payload

The payload's first byte is the **opcode** on a request and the
**status** on a response; the rest is the operation body.  The CRC sits
in the same little-endian ``u32``-after-length position as the WAL's
:func:`repro.store.wal.frame_payload` frames and guards the payload the
same way — a frame whose CRC does not match is a protocol violation,
not a soft error, because a desynchronised stream cannot be trusted to
re-frame.  The length prefix is a LEB128 uvarint (the serializer's
integer wire format, :func:`repro.store.serializer.write_uvarint`)
rather than the WAL's fixed ``u32``, so tiny control frames cost two
bytes of framing instead of eight.

Bodies reuse the store's existing binary vocabulary wholesale:

* OIDs and counts are uvarints;
* a :class:`~repro.store.engine.base.WriteBatch` travels as the sharded
  engine's staging encoding
  (:func:`repro.store.engine.sharded.encode_batch`);
* root tables are ``count | (uvarint(len(name)) name uvarint(oid))*``;
* stats ride as UTF-8 JSON (they feed dashboards, not hot paths).

A frame longer than the receiver's ``max_frame`` bound is rejected
before any allocation happens — the length is read first, so a hostile
or corrupt length prefix cannot balloon memory.

The protocol is **trusted-network** transport (a deployment runs it
over localhost, Unix sockets or a private interconnect): there is no
authentication and no encryption, exactly like the memcached/redis
class of stores this layer is modelled on.
"""

from __future__ import annotations

import json
import socket
import struct
import zlib
from typing import Iterable, Optional

from repro.errors import RemoteDisconnectedError, WireProtocolError
from repro.store.oids import Oid
from repro.store.serializer import read_uvarint, write_uvarint

#: Bump on any incompatible frame/body change; exchanged in HELLO.
#: v2: the TRACE envelope carries a parent span id after the trace id,
#: so server-side spans link into the client's span tree.
PROTOCOL_VERSION = 2

#: Default ceiling on one frame's payload, either direction.  Large
#: enough for a fat ``apply_many`` group, small enough that a corrupt
#: length prefix cannot OOM the receiver.
MAX_FRAME_BYTES = 64 * 1024 * 1024

# -- opcodes (request payload byte 0) ---------------------------------------

OP_HELLO = 0x01
OP_FETCH = 0x02
OP_FETCH_MANY = 0x03
OP_CONTAINS = 0x04
OP_OIDS = 0x05
OP_ROOTS = 0x06
OP_SET_ROOTS = 0x07
OP_NEXT_OID = 0x08
OP_RESERVE = 0x09
OP_APPLY = 0x0A
OP_APPLY_MANY = 0x0B
OP_FLUSH = 0x0C
OP_SYNC = 0x0D
OP_COMPACT = 0x0E
OP_STATS = 0x0F
OP_RESET = 0x10
OP_SHUTDOWN = 0x11
#: Extended stats: server info plus a full metrics snapshot and the
#: recent span tail (JSON body, like OP_STATS).  An optional request
#: body ``uvarint trace_id`` filters the spans to that trace — the
#: hook a client uses to pull back its own trace's server-side
#: children for tree reassembly.
OP_STATS_FULL = 0x12
#: Trace envelope: ``uvarint trace_id | uvarint parent_span_id |
#: inner request``.  The server dispatches the inner request normally
#: and records a span subtree for it under the carried trace id, with
#: the dispatch span parented to ``parent_span_id`` (0: no parent) —
#: which is how client-side and server-side spans join into one tree.
OP_TRACE = 0x13

#: Human names for errors and stats.
OP_NAMES = {
    OP_HELLO: "hello", OP_FETCH: "fetch", OP_FETCH_MANY: "fetch_many",
    OP_CONTAINS: "contains", OP_OIDS: "oids", OP_ROOTS: "roots",
    OP_SET_ROOTS: "set_roots", OP_NEXT_OID: "next_oid",
    OP_RESERVE: "reserve", OP_APPLY: "apply",
    OP_APPLY_MANY: "apply_many", OP_FLUSH: "flush", OP_SYNC: "sync",
    OP_COMPACT: "compact", OP_STATS: "stats", OP_RESET: "reset",
    OP_SHUTDOWN: "shutdown", OP_STATS_FULL: "stats_full",
    OP_TRACE: "trace",
}

# -- statuses (response payload byte 0) -------------------------------------

ST_OK = 0x00
ST_NOT_FOUND = 0x01
ST_ERROR = 0x02

_CRC = struct.Struct("<I")


# -- framing ----------------------------------------------------------------

def frame_message(payload: bytes) -> bytes:
    """One wire frame around ``payload`` (opcode/status byte included)."""
    head = bytearray()
    write_uvarint(head, len(payload))
    head.extend(_CRC.pack(zlib.crc32(payload)))
    return bytes(head) + payload


class FrameStream:
    """Buffered frame reader/writer over one connected socket.

    Owns nothing but the framing: the caller decides payload meaning,
    connection lifetime and locking.  Every read error is normalised to
    one of two exceptions — :class:`RemoteDisconnectedError` when the
    peer vanished (EOF, reset, timeout) and :class:`WireProtocolError`
    when bytes arrived but violated the protocol — so both sides of the
    connection can make the same drop-the-connection decision.
    """

    def __init__(self, sock: socket.socket,
                 max_frame: int = MAX_FRAME_BYTES):
        self._sock = sock
        self._max_frame = max_frame
        self._buffer = b""

    @property
    def socket(self) -> socket.socket:
        return self._sock

    # -- sending ------------------------------------------------------------

    def send_message(self, payload: bytes) -> None:
        self.send_raw(frame_message(payload))

    def send_raw(self, data: bytes) -> None:
        """Send pre-framed bytes (the client's pipelining batches several
        frames into one send)."""
        try:
            self._sock.sendall(data)
        except (OSError, ValueError) as exc:
            raise RemoteDisconnectedError(
                f"connection lost while sending: {exc}"
            ) from exc

    # -- receiving ----------------------------------------------------------

    def _recv_chunk(self) -> bytes:
        try:
            chunk = self._sock.recv(65536)
        except (TimeoutError, socket.timeout) as exc:
            error = RemoteDisconnectedError(
                "timed out waiting for a reply"
            )
            # Flagged so the client can count timeouts apart from other
            # disconnects without parsing the message.
            error.timeout = True
            raise error from exc
        except (OSError, ValueError) as exc:
            raise RemoteDisconnectedError(
                f"connection lost while receiving: {exc}"
            ) from exc
        if not chunk:
            raise RemoteDisconnectedError("peer closed the connection")
        return chunk

    def _read_exact(self, size: int) -> bytes:
        while len(self._buffer) < size:
            self._buffer += self._recv_chunk()
        data, self._buffer = self._buffer[:size], self._buffer[size:]
        return data

    def _read_length(self) -> int:
        """The frame's uvarint length prefix, byte by byte."""
        value = 0
        shift = 0
        while True:
            byte = self._read_exact(1)[0]
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 63:
                raise WireProtocolError("unterminated frame length prefix")

    def recv_message(self, eof_ok: bool = False) -> Optional[bytes]:
        """The next frame's payload (CRC-checked), or ``None`` on a
        clean EOF between frames when ``eof_ok`` (the server's idle
        connections end that way)."""
        if eof_ok and not self._buffer:
            try:
                self._buffer = self._recv_chunk()
            except RemoteDisconnectedError:
                return None
        length = self._read_length()
        if length > self._max_frame:
            raise WireProtocolError(
                f"frame of {length} bytes exceeds the "
                f"{self._max_frame}-byte bound"
            )
        (crc,) = _CRC.unpack(self._read_exact(_CRC.size))
        payload = self._read_exact(length)
        if zlib.crc32(payload) != crc:
            raise WireProtocolError("frame payload failed its CRC check")
        if not payload:
            raise WireProtocolError("empty frame payload")
        return payload

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass


# -- body encoding ----------------------------------------------------------

def pack_oid(oid: int) -> bytes:
    buf = bytearray()
    write_uvarint(buf, int(oid))
    return bytes(buf)


def unpack_oid(body: bytes, pos: int = 0) -> tuple[Oid, int]:
    value, pos = read_uvarint(body, pos)
    return Oid(value), pos


def pack_oids(oids: Iterable[int]) -> bytes:
    oids = list(oids)
    buf = bytearray()
    write_uvarint(buf, len(oids))
    for oid in oids:
        write_uvarint(buf, int(oid))
    return bytes(buf)


def unpack_oids(body: bytes, pos: int = 0) -> tuple[list[Oid], int]:
    count, pos = read_uvarint(body, pos)
    oids = []
    for _ in range(count):
        value, pos = read_uvarint(body, pos)
        oids.append(Oid(value))
    return oids, pos


def pack_records(records: dict) -> bytes:
    """``fetch_many`` reply body: present OIDs with their record bytes."""
    buf = bytearray()
    write_uvarint(buf, len(records))
    parts = [bytes(buf)]
    for oid, raw in records.items():
        head = bytearray()
        write_uvarint(head, int(oid))
        write_uvarint(head, len(raw))
        parts.append(bytes(head))
        parts.append(bytes(raw))
    return b"".join(parts)


def unpack_records(body: bytes, pos: int = 0) -> tuple[dict, int]:
    count, pos = read_uvarint(body, pos)
    records: dict[Oid, bytes] = {}
    for _ in range(count):
        oid, pos = read_uvarint(body, pos)
        length, pos = read_uvarint(body, pos)
        if pos + length > len(body):
            raise WireProtocolError("record body overruns its frame")
        records[Oid(oid)] = body[pos:pos + length]
        pos += length
    return records, pos


def pack_roots(roots: dict) -> bytes:
    buf = bytearray()
    write_uvarint(buf, len(roots))
    for name, oid in roots.items():
        encoded = name.encode("utf-8")
        write_uvarint(buf, len(encoded))
        buf.extend(encoded)
        write_uvarint(buf, int(oid))
    return bytes(buf)


def unpack_roots(body: bytes, pos: int = 0) -> tuple[dict, int]:
    count, pos = read_uvarint(body, pos)
    roots: dict[str, Oid] = {}
    for _ in range(count):
        length, pos = read_uvarint(body, pos)
        if pos + length > len(body):
            raise WireProtocolError("root name overruns its frame")
        name = body[pos:pos + length].decode("utf-8")
        pos += length
        oid, pos = read_uvarint(body, pos)
        roots[name] = Oid(oid)
    return roots, pos


def pack_trace_envelope(trace_id: int, parent_span_id: int,
                        inner: bytes) -> bytes:
    """An ``OP_TRACE`` request wrapping ``inner`` (a complete request
    payload, opcode byte first)."""
    buf = bytearray([OP_TRACE])
    write_uvarint(buf, trace_id)
    write_uvarint(buf, parent_span_id)
    return bytes(buf) + inner


def unpack_trace_envelope(payload: bytes,
                          pos: int = 1) -> tuple[int, int, int]:
    """``(trace_id, parent_span_id, inner_offset)`` of an ``OP_TRACE``
    payload; ``pos`` starts after the opcode byte."""
    trace_id, pos = read_uvarint(payload, pos)
    parent_span_id, pos = read_uvarint(payload, pos)
    if pos >= len(payload):
        raise WireProtocolError("trace envelope carries no inner request")
    return trace_id, parent_span_id, pos


def pack_stats(stats: dict) -> bytes:
    return json.dumps(stats, sort_keys=True).encode("utf-8")


def unpack_stats(body: bytes) -> dict:
    try:
        return json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise WireProtocolError(f"malformed stats body: {exc}") from exc


# -- error transport --------------------------------------------------------

def pack_error(exc: BaseException) -> bytes:
    """``ST_ERROR`` body: exception type name + message, both UTF-8."""
    kind = type(exc).__name__.encode("utf-8")
    message = str(exc).encode("utf-8", "replace")
    buf = bytearray()
    write_uvarint(buf, len(kind))
    buf.extend(kind)
    return bytes(buf) + message


def unpack_error(body: bytes) -> tuple[str, str]:
    length, pos = read_uvarint(body, 0)
    if pos + length > len(body):
        raise WireProtocolError("error frame overruns its payload")
    kind = body[pos:pos + length].decode("utf-8")
    message = body[pos + length:].decode("utf-8", "replace")
    return kind, message
