"""The ``remote:`` engine — a store server seen through the engine seam.

``RemoteEngine`` implements the full
:class:`~repro.store.engine.base.StorageEngine` contract by forwarding
every operation to a :class:`~repro.store.net.server.StoreServer` over
the length-prefixed wire protocol.  Because it *is* an engine, the
whole stack above — :class:`~repro.store.objectstore.ObjectStore`, the
wave-planned fetch, transactions, GC — runs unchanged against a server
in another process (or another machine), which is what finally moves
the hot paths off this interpreter's GIL.

Connections: one socket **per calling thread** (a thread-local pool),
created lazily and re-used across operations, so concurrent reader
threads never serialise on a shared socket.  ``fetch_many`` pipelines:
a wave larger than ``fetch_chunk`` OIDs is split into several request
frames that are all written before any response is read, overlapping
the server's work with the transfer.

Failure semantics: an **idempotent read** (``read``, ``contains``,
``fetch_many``, ``oids``, ``roots``, ``next_oid``, ``stats``,
``flush``, ``sync``) that loses its connection reconnects and retries,
up to ``read_retries`` times, before raising
:class:`~repro.errors.RemoteDisconnectedError`; a server restart is
therefore invisible to readers holding old connections.  A **write**
(``apply``, ``apply_many``, ``reserve``) is never retried — the client
cannot know whether the lost request committed — and surfaces the
disconnect immediately.  Server-side exceptions arrive as typed error
frames and re-raise locally (``UnknownOidError``, ``ValueError``, …);
anything unrecognised becomes
:class:`~repro.errors.RemoteStoreError`.

Selected by URL: ``open_store("remote:HOST:PORT")`` or
``remote:unix:/path/to.sock``, with ``?connect_timeout=`` /
``?op_timeout=`` (seconds; ``op_timeout=0`` waits forever) and
``?read_retries=`` tuning each client.
"""

from __future__ import annotations

import socket
import threading
from typing import Iterable, Optional

from repro.errors import (
    RemoteDisconnectedError,
    RemoteStoreError,
    UnknownOidError,
    WireProtocolError,
)
from repro.store.engine.base import StorageEngine, WriteBatch
from repro.store.engine.sharded import encode_batch
from repro.store.net import protocol as wire
from repro.store.obs.trace import current_span
from repro.store.obs.trace import span as trace_span
from repro.store.oids import Oid
from repro.store.serializer import write_uvarint

__all__ = ["RemoteEngine"]

#: Server error kinds re-raised as their local exception type; anything
#: else becomes a :class:`RemoteStoreError` carrying the kind name.
_ERROR_TYPES = {
    "UnknownOidError": UnknownOidError,
    "ValueError": ValueError,
    "KeyError": KeyError,
    "WireProtocolError": WireProtocolError,
    "RemoteStoreError": RemoteStoreError,
}


def _parse_endpoint(endpoint: str) -> tuple[int, object]:
    """``HOST:PORT`` or ``unix:PATH`` -> (address family, address)."""
    if endpoint.startswith("unix:"):
        path = endpoint[len("unix:"):]
        if not path:
            raise ValueError("remote: unix endpoint needs a socket path")
        return socket.AF_UNIX, path
    host, sep, port_text = endpoint.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"remote endpoint {endpoint!r} is neither HOST:PORT nor "
            f"unix:PATH"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"remote endpoint port must be an integer, got {port_text!r}"
        ) from None
    return socket.AF_INET, (host, port)


class RemoteEngine(StorageEngine):
    """A client-side engine over one store-server connection pool."""

    name = "remote"

    def __init__(self, endpoint: str, *,
                 connect_timeout: float = 5.0,
                 op_timeout: float = 30.0,
                 read_retries: int = 2,
                 fetch_chunk: int = 512,
                 max_frame: int = wire.MAX_FRAME_BYTES):
        super().__init__()
        if connect_timeout <= 0:
            raise ValueError(
                f"connect_timeout must be > 0, got {connect_timeout}")
        if op_timeout < 0:
            raise ValueError(
                f"op_timeout must be >= 0, got {op_timeout}")
        if read_retries < 0:
            raise ValueError(
                f"read_retries must be >= 0, got {read_retries}")
        if fetch_chunk < 1:
            raise ValueError(
                f"fetch_chunk must be >= 1, got {fetch_chunk}")
        self.endpoint = endpoint
        self._family, self._address = _parse_endpoint(endpoint)
        self._connect_timeout = connect_timeout
        self._op_timeout = op_timeout if op_timeout > 0 else None
        self._read_retries = read_retries
        self._fetch_chunk = fetch_chunk
        self._max_frame = max_frame
        self._local = threading.local()
        self._streams_lock = threading.Lock()
        self._streams: set[wire.FrameStream] = set()
        # Native connection telemetry (pull gauges via obs).
        self.connects = 0
        self.reconnect_retries = 0
        self.timeouts = 0
        #: When nonzero, every request is wrapped in a ``TRACE``
        #: envelope carrying this id, so the server's span log links
        #: its work back to this client's operation.
        self.trace_id = 0

    # -- connection pool ----------------------------------------------------

    def _connect(self) -> wire.FrameStream:
        sock = socket.socket(self._family, socket.SOCK_STREAM)
        try:
            sock.settimeout(self._connect_timeout)
            sock.connect(self._address)
            if self._family == socket.AF_INET:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(self._op_timeout)
        except OSError as exc:
            sock.close()
            raise RemoteDisconnectedError(
                f"cannot connect to store server at {self.endpoint}: {exc}"
            ) from exc
        stream = wire.FrameStream(sock, self._max_frame)
        try:
            hello = bytearray([wire.OP_HELLO])
            write_uvarint(hello, wire.PROTOCOL_VERSION)
            stream.send_message(bytes(hello))
            self._parse_response(stream.recv_message())
        except BaseException:
            stream.close()
            raise
        with self._streams_lock:
            self._streams.add(stream)
        self.connects += 1
        return stream

    def _stream(self) -> wire.FrameStream:
        stream = getattr(self._local, "stream", None)
        if stream is None:
            stream = self._connect()
            self._local.stream = stream
        return stream

    def _drop_stream(self, stream: wire.FrameStream) -> None:
        self._local.stream = None
        with self._streams_lock:
            self._streams.discard(stream)
        stream.close()

    def close(self) -> None:
        """Close this client's connections; the server stays up."""
        if self._closed:
            return
        with self._streams_lock:
            streams, self._streams = list(self._streams), set()
        for stream in streams:
            stream.close()
        super().close()

    # -- request plumbing ---------------------------------------------------

    def _parse_response(self, payload: bytes) -> bytes:
        status = payload[0]
        body = payload[1:]
        if status == wire.ST_OK:
            return body
        if status == wire.ST_NOT_FOUND:
            oid, _pos = wire.unpack_oid(body)
            raise UnknownOidError(int(oid))
        if status == wire.ST_ERROR:
            kind, message = wire.unpack_error(body)
            exc_type = _ERROR_TYPES.get(kind)
            if exc_type is not None:
                raise exc_type(message)
            raise RemoteStoreError(f"server error {kind}: {message}")
        raise WireProtocolError(f"unknown response status 0x{status:02X}")

    def _envelope(self, payload: bytes) -> bytes:
        """Wrap one request in a ``TRACE`` envelope when a trace is
        active (the server unwraps, dispatches and records a span
        subtree parented to the carried span id).

        An active contextvar span wins — the server's dispatch span
        becomes its child, joining the cross-process tree.  The plain
        :attr:`trace_id` attribute is the parentless fallback for
        callers that only want flat id correlation."""
        active = current_span()
        if active is not None:
            return wire.pack_trace_envelope(active.trace_id,
                                            active.span_id, payload)
        if self.trace_id:
            return wire.pack_trace_envelope(self.trace_id, 0, payload)
        return payload

    def _note_failure(self, exc: BaseException) -> None:
        if getattr(exc, "timeout", False):
            self.timeouts += 1

    def _request(self, op: int, body: bytes = b"",
                 idempotent: bool = False) -> bytes:
        """One request/response exchange, with bounded reconnect-retry
        for idempotent operations.  Inside a traced operation the
        exchange is a ``net.<op>`` child span, and the request travels
        enveloped so the server's subtree hangs off that span."""
        self._check_open()
        with trace_span("net." + wire.OP_NAMES.get(op, hex(op))):
            return self._exchange(op, body, idempotent)

    def _exchange(self, op: int, body: bytes,
                  idempotent: bool) -> bytes:
        payload = self._envelope(bytes([op]) + body)
        attempts = 1 + (self._read_retries if idempotent else 0)
        last: Optional[BaseException] = None
        for _attempt in range(attempts):
            if last is not None:
                self.reconnect_retries += 1
            try:
                stream = self._stream()
            except RemoteDisconnectedError as exc:
                self._note_failure(exc)
                last = exc
                continue
            try:
                stream.send_message(payload)
                return self._parse_response(stream.recv_message())
            except (RemoteDisconnectedError, WireProtocolError) as exc:
                # Either way the stream is unusable; only a lost
                # connection on an idempotent op is worth retrying.
                self._drop_stream(stream)
                if isinstance(exc, WireProtocolError):
                    raise
                self._note_failure(exc)
                last = exc
        assert last is not None
        raise last

    # -- reads --------------------------------------------------------------

    def read(self, oid: Oid) -> bytes:
        return self._request(wire.OP_FETCH, wire.pack_oid(oid),
                             idempotent=True)

    def contains(self, oid: Oid) -> bool:
        body = self._request(wire.OP_CONTAINS, wire.pack_oid(oid),
                             idempotent=True)
        return body == b"\x01"

    def fetch_many(self, oids: Iterable[Oid]) -> dict[Oid, bytes]:
        """Bulk read, pipelined: every chunk's request frame is written
        before any response is read, so a deep wave costs one
        round-trip *latency* however many chunks it spans."""
        self._check_open()
        wanted = list(oids)
        if not wanted:
            return {}
        chunks = [wanted[i:i + self._fetch_chunk]
                  for i in range(0, len(wanted), self._fetch_chunk)]
        if len(chunks) == 1:
            body = self._request(
                wire.OP_FETCH_MANY, wire.pack_oids(chunks[0]),
                idempotent=True)
            return wire.unpack_records(body)[0]
        with trace_span("net.fetch_many"):
            return self._fetch_pipelined(chunks)

    def _fetch_pipelined(self, chunks: list[list[Oid]]) -> dict[Oid, bytes]:
        attempts = 1 + self._read_retries
        last: Optional[BaseException] = None
        for _attempt in range(attempts):
            if last is not None:
                self.reconnect_retries += 1
            try:
                stream = self._stream()
            except RemoteDisconnectedError as exc:
                self._note_failure(exc)
                last = exc
                continue
            try:
                stream.send_raw(b"".join(
                    wire.frame_message(self._envelope(
                        bytes([wire.OP_FETCH_MANY]) +
                        wire.pack_oids(chunk)))
                    for chunk in chunks))
                found: dict[Oid, bytes] = {}
                for _chunk in chunks:
                    body = self._parse_response(stream.recv_message())
                    found.update(wire.unpack_records(body)[0])
                return found
            except (RemoteDisconnectedError, WireProtocolError) as exc:
                self._drop_stream(stream)
                if isinstance(exc, WireProtocolError):
                    raise
                self._note_failure(exc)
                last = exc
        assert last is not None
        raise last

    def oids(self) -> tuple[Oid, ...]:
        body = self._request(wire.OP_OIDS, idempotent=True)
        return tuple(wire.unpack_oids(body)[0])

    @property
    def object_count(self) -> int:
        return int(self.stats()["object_count"])

    def roots(self) -> dict[str, Oid]:
        body = self._request(wire.OP_ROOTS, idempotent=True)
        return wire.unpack_roots(body)[0]

    @property
    def next_oid(self) -> int:
        body = self._request(wire.OP_NEXT_OID, idempotent=True)
        return int(wire.unpack_oid(body)[0])

    @property
    def page_count(self) -> int:
        return int(self.stats()["page_count"])

    def stats(self) -> dict:
        """The server's stats snapshot (engine counters, connection and
        request totals, uptime, pid)."""
        return wire.unpack_stats(self._request(wire.OP_STATS,
                                               idempotent=True))

    def stats_full(self, trace_id: Optional[int] = None) -> dict:
        """The server's extended telemetry: ``{"server": <stats>,
        "metrics": <registry snapshot>, "spans": [<recent spans>]}``.

        With ``trace_id``, ``spans`` is instead every retained span of
        that trace — the hook for cross-process tree reassembly."""
        body = b""
        if trace_id is not None:
            buf = bytearray()
            write_uvarint(buf, trace_id)
            body = bytes(buf)
        return wire.unpack_stats(self._request(wire.OP_STATS_FULL, body,
                                               idempotent=True))

    # -- writes -------------------------------------------------------------

    def apply(self, batch: WriteBatch) -> None:
        self._request(wire.OP_APPLY, encode_batch(batch))
        self.record_writes += len(batch.writes)
        self.batches_applied += 1

    def apply_many(self, batches: Iterable[WriteBatch]) -> None:
        batches = list(batches)
        if not batches:
            return
        buf = bytearray()
        write_uvarint(buf, len(batches))
        parts = [bytes(buf)]
        for batch in batches:
            blob = encode_batch(batch)
            head = bytearray()
            write_uvarint(head, len(blob))
            parts.append(bytes(head))
            parts.append(blob)
        self._request(wire.OP_APPLY_MANY, b"".join(parts))
        self.record_writes += sum(len(batch.writes) for batch in batches)
        self.batches_applied += len(batches)

    def set_roots(self, roots: dict[str, Oid]) -> None:
        """Replace the server's root table (the dedicated root-set op;
        equivalent to applying a batch carrying only ``set_roots``)."""
        self._request(wire.OP_SET_ROOTS, wire.pack_roots(roots))
        self.batches_applied += 1

    def reserve_oids(self, count: int) -> int:
        """Atomically reserve ``count`` fresh OIDs on the server;
        returns the first of the contiguous range.  This is how several
        client processes share one server's allocator without clashing."""
        buf = bytearray()
        write_uvarint(buf, count)
        body = self._request(wire.OP_RESERVE, bytes(buf))
        return int(wire.unpack_oid(body)[0])

    # -- maintenance --------------------------------------------------------

    def flush(self) -> None:
        self._request(wire.OP_FLUSH, idempotent=True)

    def sync(self) -> None:
        self._request(wire.OP_SYNC, idempotent=True)

    def compact(self) -> int:
        body = self._request(wire.OP_COMPACT)
        return int(wire.unpack_oid(body)[0])

    # -- admin --------------------------------------------------------------

    def reset(self) -> None:
        """Close and re-open the server's engine (admin; ephemeral
        server engines come back empty — the test suite's isolation)."""
        self._request(wire.OP_RESET)

    def shutdown_server(self) -> None:
        """Ask the server process to stop gracefully (admin)."""
        try:
            self._request(wire.OP_SHUTDOWN)
        except RemoteDisconnectedError:
            pass  # the server may win the race and drop us first

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemoteEngine({self.endpoint!r})"
