"""The store server: one process per shard group, any engine behind it.

A :class:`StoreServer` wraps whatever engine a storage URL names
(``file:``, ``sqlite:``, ``memory:``, ``sharded:N:...``, including all
their query parameters) and serves the full
:class:`~repro.store.engine.base.StorageEngine` contract over TCP or a
Unix socket, speaking the length-prefixed frames of
:mod:`repro.store.net.protocol`.  ``scripts/store_server.py`` is the
process entry point; the ``remote:`` engine
(:mod:`repro.store.net.client`) is the in-process view from the other
side of the socket.

Threading model: one acceptor thread (``repro-net-accept``) plus one
thread per connection (``repro-net-conn-N``).  Engine *reads* run
concurrently across connections — every backend's ``read``/
``fetch_many`` is reader-thread-safe — while every mutating operation
(``apply``, ``apply_many``, ``set_roots``, ``reserve``, ``compact``,
``reset``) serialises on one server-wide write lock, preserving the
engines' single-writer contract no matter how many clients are
connected.

Failure discipline per connection:

* an engine or value error inside a well-framed request is reported as
  an ``ST_ERROR`` (or ``ST_NOT_FOUND``) response and the connection
  keeps serving;
* a frame-level violation (bad CRC, oversized length, unterminated
  prefix) gets a best-effort error response and the connection is
  dropped — a desynchronised stream cannot be re-framed;
* a peer disconnect, mid-request or between requests, just closes the
  connection; the server and its other connections are unaffected.

``reset`` is the admin operation behind per-session test isolation: it
closes the engine and re-opens the same URL (ephemeral ``memory:``
engines come back empty; durable engines come back with their data).
``shutdown`` stops the whole server gracefully.  Both ride the same
trusted-network assumption as the rest of the protocol.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import Optional

from repro.errors import (
    RemoteDisconnectedError,
    StoreClosedError,
    UnknownOidError,
    WireProtocolError,
)
from repro.store.engine.base import StorageEngine, WriteBatch
from repro.store.engine.factory import engine_from_url
from repro.store.engine.sharded import decode_batch, encode_batch  # noqa: F401 - encode_batch re-exported for symmetry
from repro.store.net import protocol as wire
from repro.store.obs import (
    MetricsRegistry,
    SpanLog,
    TimedEngine,
    TraceLog,
    Tracer,
    bind_engine_metrics,
)
from repro.store.serializer import read_uvarint

__all__ = ["StoreServer"]


class StoreServer:
    """Serve one engine URL over a TCP or Unix socket."""

    def __init__(self, url: str, bind: str = "127.0.0.1:0",
                 max_frame: int = wire.MAX_FRAME_BYTES,
                 trace_log: Optional[str] = None):
        self._url = url
        self._max_frame = max_frame
        #: The server's own registry: per-op dispatch histograms plus
        #: the wrapped engine's instruments, returned whole by the
        #: ``stats_full`` op.
        self.metrics = MetricsRegistry()
        #: Recent dispatch spans (``stats_full`` returns the tail).
        self.spans = SpanLog()
        #: Envelope-driven tracing: a TRACE-wrapped request dispatches
        #: under a real span scope, so engine-phase children (WAL
        #: fsync, 2PC phases, pipeline groups) land in :attr:`spans`
        #: with the client's trace id — and, with ``trace_log``, in a
        #: durable JSONL sink alongside lifecycle events.
        self.tracer = Tracer(
            log=TraceLog(trace_log) if trace_log else None,
            spans=self.spans)
        self._op_hist = {
            op: self.metrics.histogram("server_op_ns", op=name)
            for op, name in wire.OP_NAMES.items()
        }
        self._engine = self._instrumented(engine_from_url(url))
        self._write_lock = threading.Lock()
        self._conn_lock = threading.Lock()
        self._connections: dict[int, socket.socket] = {}
        self._conn_seq = 0
        self._requests = 0
        self._started_at = time.time()
        self._closing = False
        self._stopped = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        try:
            self._listener, self.endpoint = self._bind(bind)
        except BaseException:
            self._engine.close()
            raise

    def _instrumented(self, engine: StorageEngine) -> StorageEngine:
        """Time the engine through the server's registry and surface its
        native counters as pull gauges (re-run on ``reset``: gauge
        callbacks re-bind to the fresh engine)."""
        if not isinstance(engine, TimedEngine):
            engine = TimedEngine(engine, self.metrics)
        bind_engine_metrics(engine, self.metrics)
        return engine

    @staticmethod
    def _bind(bind: str) -> tuple[socket.socket, str]:
        if bind.startswith("unix:"):
            path = bind[len("unix:"):]
            if not path:
                raise ValueError("unix: bind address needs a socket path")
            if os.path.exists(path):
                os.unlink(path)
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(path)
            endpoint = f"unix:{path}"
        else:
            host, sep, port_text = bind.rpartition(":")
            if not sep:
                raise ValueError(
                    f"bind address {bind!r} is neither HOST:PORT nor "
                    f"unix:PATH"
                )
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((host, int(port_text)))
            bound_host, bound_port = listener.getsockname()[:2]
            endpoint = f"{bound_host}:{bound_port}"
        listener.listen(128)
        return listener, endpoint

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "StoreServer":
        """Begin accepting connections on a background thread."""
        if self._accept_thread is not None:
            raise RuntimeError("server already started")
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-net-accept", daemon=True)
        self._accept_thread.start()
        self.tracer.event("server_start", endpoint=self.endpoint,
                          url=self._url, pid=os.getpid())
        return self

    def serve_forever(self) -> None:
        """Start and block until :meth:`stop` (or a ``shutdown`` op)."""
        self.start()
        self._stopped.wait()

    def stop(self) -> None:
        """Stop accepting, drop every connection, close the engine."""
        if self._closing:
            self._stopped.wait()
            return
        self._closing = True
        try:
            # shutdown(), not just close(): a thread blocked in accept()
            # is not woken by a cross-thread close() on Linux, but a
            # shutdown of the listening socket interrupts it immediately.
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        with self._conn_lock:
            conns = list(self._connections.values())
            self._connections.clear()
        for sock in conns:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
        thread = self._accept_thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=5)
        self.tracer.event("server_stop", endpoint=self.endpoint,
                          requests=self._requests)
        try:
            self._engine.close()
        finally:
            self.tracer.close()
            if self.endpoint.startswith("unix:"):
                try:
                    os.unlink(self.endpoint[len("unix:"):])
                except OSError:
                    pass
            self._stopped.set()

    def __enter__(self) -> "StoreServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- accept/connection loops --------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                break  # listener closed by stop()
            with self._conn_lock:
                if self._closing:
                    sock.close()
                    break
                self._conn_seq += 1
                conn_id = self._conn_seq
                self._connections[conn_id] = sock
            if sock.family == socket.AF_INET:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            threading.Thread(
                target=self._serve_connection, args=(conn_id, sock),
                name=f"repro-net-conn-{conn_id}", daemon=True,
            ).start()

    def _serve_connection(self, conn_id: int, sock: socket.socket) -> None:
        stream = wire.FrameStream(sock, self._max_frame)
        try:
            while not self._closing:
                try:
                    payload = stream.recv_message(eof_ok=True)
                except RemoteDisconnectedError:
                    break  # mid-request disconnect: just this conn dies
                except WireProtocolError as exc:
                    # Best-effort report, then drop: the stream cannot
                    # be re-framed after a framing violation.
                    self._try_send_error(stream, exc)
                    break
                if payload is None:
                    break  # clean EOF between frames
                self._requests += 1
                try:
                    response, stop_after = self._dispatch(payload)
                except WireProtocolError as exc:
                    self._try_send_error(stream, exc)
                    break
                try:
                    stream.send_message(response)
                except RemoteDisconnectedError:
                    break
                if stop_after:
                    threading.Thread(target=self.stop,
                                     name="repro-net-shutdown",
                                     daemon=True).start()
                    break
        finally:
            with self._conn_lock:
                self._connections.pop(conn_id, None)
            stream.close()

    @staticmethod
    def _try_send_error(stream: wire.FrameStream,
                        exc: BaseException) -> None:
        try:
            stream.send_message(bytes([wire.ST_ERROR]) +
                                wire.pack_error(exc))
        except RemoteDisconnectedError:
            pass

    # -- dispatch -----------------------------------------------------------

    def _dispatch(self, payload: bytes, trace_id: int = 0,
                  parent_span: int = 0) -> tuple[bytes, bool]:
        """The response payload for one request, plus a stop-after flag."""
        op = payload[0]
        if op == wire.OP_TRACE:
            # Trace envelope: unwrap the carried trace and parent span
            # ids and dispatch the inner request under them (one level;
            # a nested envelope is a client bug and just re-enters here
            # harmlessly).
            try:
                inner_id, parent, pos = wire.unpack_trace_envelope(payload)
            except WireProtocolError:
                raise
            except Exception as exc:
                raise WireProtocolError(
                    f"malformed trace envelope: {exc}") from exc
            return self._dispatch(payload[pos:], trace_id=inner_id,
                                  parent_span=parent)
        body = payload[1:]
        handler = self._HANDLERS.get(op)
        if handler is None:
            raise WireProtocolError(f"unknown opcode 0x{op:02X}")

        def run() -> tuple[bytes, bool]:
            try:
                response = handler(self, body)
            except UnknownOidError as exc:
                oid = exc.args[0] if exc.args else 0
                oid = oid if isinstance(oid, int) else 0
                return (bytes([wire.ST_NOT_FOUND]) + wire.pack_oid(oid),
                        False)
            except WireProtocolError:
                raise
            except Exception as exc:  # noqa: BLE001 - reported to the client
                return bytes([wire.ST_ERROR]) + wire.pack_error(exc), False
            return bytes([wire.ST_OK]) + response, op == wire.OP_SHUTDOWN

        started_at = time.time_ns()
        start = time.perf_counter_ns()
        # An enveloped request dispatches under a real (always-kept)
        # span scope: engine-phase children recorded during the handler
        # attach to it, the whole subtree lands in self.spans under the
        # client's trace id, and the dispatch span itself is parented
        # to the client-side span that issued the request.
        scope = self.tracer.root(wire.OP_NAMES.get(op, hex(op)),
                                 trace_id=trace_id, parent_id=parent_span,
                                 forced=True) if trace_id else None
        try:
            if scope is not None:
                with scope:
                    return run()
            return run()
        finally:
            dur = time.perf_counter_ns() - start
            self._op_hist[op].observe(dur)
            if scope is None:
                self.spans.record(wire.OP_NAMES.get(op, hex(op)),
                                  started_at, dur, trace_id)

    # -- handlers (one per opcode) ------------------------------------------

    def _op_hello(self, body: bytes) -> bytes:
        version, _pos = read_uvarint(body, 0)
        if version != wire.PROTOCOL_VERSION:
            raise WireProtocolError(
                f"client speaks protocol {version}, server speaks "
                f"{wire.PROTOCOL_VERSION}"
            )
        buf = bytearray()
        buf.append(wire.PROTOCOL_VERSION)
        buf.extend(self._engine.name.encode("utf-8"))
        return bytes(buf)

    def _op_fetch(self, body: bytes) -> bytes:
        oid, _pos = wire.unpack_oid(body)
        return self._engine.read(oid)

    def _op_fetch_many(self, body: bytes) -> bytes:
        oids, _pos = wire.unpack_oids(body)
        return wire.pack_records(self._engine.fetch_many(oids))

    def _op_contains(self, body: bytes) -> bytes:
        oid, _pos = wire.unpack_oid(body)
        return b"\x01" if self._engine.contains(oid) else b"\x00"

    def _op_oids(self, body: bytes) -> bytes:
        return wire.pack_oids(self._engine.oids())

    def _op_roots(self, body: bytes) -> bytes:
        return wire.pack_roots(self._engine.roots())

    def _op_set_roots(self, body: bytes) -> bytes:
        roots, _pos = wire.unpack_roots(body)
        with self._write_lock:
            self._engine.apply(WriteBatch().set_roots(roots))
        return b""

    def _op_next_oid(self, body: bytes) -> bytes:
        return wire.pack_oid(self._engine.next_oid)

    def _op_reserve(self, body: bytes) -> bytes:
        count, _pos = read_uvarint(body, 0)
        if count < 1:
            raise ValueError(f"reserve count must be >= 1, got {count}")
        with self._write_lock:
            start = self._engine.next_oid
            self._engine.apply(
                WriteBatch().advance_next_oid(start + count))
        return wire.pack_oid(start)

    def _op_apply(self, body: bytes) -> bytes:
        batch = self._decode_batch(body)
        with self._write_lock:
            self._engine.apply(batch)
        return b""

    def _op_apply_many(self, body: bytes) -> bytes:
        count, pos = read_uvarint(body, 0)
        batches = []
        for _ in range(count):
            length, pos = read_uvarint(body, pos)
            if pos + length > len(body):
                raise WireProtocolError("batch overruns its frame")
            batches.append(self._decode_batch(body[pos:pos + length]))
            pos += length
        with self._write_lock:
            self._engine.apply_many(batches)
        return b""

    @staticmethod
    def _decode_batch(blob: bytes) -> WriteBatch:
        try:
            return decode_batch(blob)
        except Exception as exc:
            raise WireProtocolError(f"malformed batch body: {exc}") from exc

    def _op_flush(self, body: bytes) -> bytes:
        self._engine.flush()
        return b""

    def _op_sync(self, body: bytes) -> bytes:
        self._engine.sync()
        return b""

    def _op_compact(self, body: bytes) -> bytes:
        with self._write_lock:
            return wire.pack_oid(self._engine.compact())

    def _stats_dict(self) -> dict:
        engine = self._engine
        return {
            "engine": engine.name,
            "url": self._url,
            "endpoint": self.endpoint,
            "pid": os.getpid(),
            "uptime_s": time.time() - self._started_at,
            "requests": self._requests,
            "connections": len(self._connections),
            "object_count": engine.object_count,
            "page_count": engine.page_count,
            "next_oid": engine.next_oid,
            "record_writes": engine.record_writes,
            "batches_applied": engine.batches_applied,
        }

    def _op_stats(self, body: bytes) -> bytes:
        return wire.pack_stats(self._stats_dict())

    def _op_stats_full(self, body: bytes) -> bytes:
        if body:
            # Optional trace filter: every retained span of one trace,
            # not just the recent tail — the reassembly path.
            wanted, _pos = read_uvarint(body, 0)
            spans = self.spans.for_trace(wanted)
        else:
            spans = self.spans.tail()
        return wire.pack_stats({
            "server": self._stats_dict(),
            "metrics": self.metrics.snapshot(),
            "spans": spans,
        })

    def _op_reset(self, body: bytes) -> bytes:
        with self._write_lock:
            old, self._engine = (self._engine,
                                 self._instrumented(
                                     engine_from_url(self._url)))
            try:
                old.close()
            except StoreClosedError:  # pragma: no cover - double reset
                pass
        self.tracer.event("engine_reset", endpoint=self.endpoint,
                          url=self._url)
        return b""

    def _op_shutdown(self, body: bytes) -> bytes:
        return b""

    _HANDLERS = {
        wire.OP_HELLO: _op_hello,
        wire.OP_FETCH: _op_fetch,
        wire.OP_FETCH_MANY: _op_fetch_many,
        wire.OP_CONTAINS: _op_contains,
        wire.OP_OIDS: _op_oids,
        wire.OP_ROOTS: _op_roots,
        wire.OP_SET_ROOTS: _op_set_roots,
        wire.OP_NEXT_OID: _op_next_oid,
        wire.OP_RESERVE: _op_reserve,
        wire.OP_APPLY: _op_apply,
        wire.OP_APPLY_MANY: _op_apply_many,
        wire.OP_FLUSH: _op_flush,
        wire.OP_SYNC: _op_sync,
        wire.OP_COMPACT: _op_compact,
        wire.OP_STATS: _op_stats,
        wire.OP_STATS_FULL: _op_stats_full,
        wire.OP_RESET: _op_reset,
        wire.OP_SHUTDOWN: _op_shutdown,
    }
