"""The OID-routing front-end: one logical store over N shard servers.

``RouterEngine`` is the network twin of
:class:`~repro.store.engine.sharded.ShardedEngine` — literally: it *is*
a sharded engine whose children are :class:`RemoteEngine` clients, one
per backend store server.  OID ``oid`` is served by backend
``oid % N``; reads (``fetch_many`` waves included) fan out over the
per-shard thread pool, and a cross-backend batch commits through the
existing two-phase protocol — staging records and the commit marker
simply live on the *servers* now, so crash recovery on reopen works
across processes exactly as it does across child engines.  This is the
query-routing-broker arrangement (ZBroker) applied to our shard
topology: a thin, stateless-between-batches front-end that any number
of client processes can instantiate against the same backend fleet.

Selected by URL::

    open_store("routed:host1:p1,host2:p2")
    open_store("routed:unix:/tmp/a.sock,unix:/tmp/b.sock?op_timeout=5")

Every client option (``connect_timeout``, ``op_timeout``,
``read_retries``) applies to each backend connection.  The backend
*servers* should wrap plain engines (``file:``, ``sqlite:``,
``memory:``, or pipelined variants) — routing over a server whose own
engine is ``sharded:`` would nest two staging protocols on the same
reserved OIDs and is rejected by the sharded engine itself.

The topology is pinned the same way as local sharding: backend 0 holds
the persisted shard count, so a router opened with the wrong number of
backends fails loudly instead of misrouting every OID.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.store.engine.sharded import ShardedEngine
from repro.store.net.client import RemoteEngine
from repro.store.obs import merge_snapshots

__all__ = ["RouterEngine"]


class RouterEngine(ShardedEngine):
    """A sharded engine whose shards are remote store servers."""

    name = "routed"

    def __init__(self, endpoints: Sequence[str], **client_options):
        endpoints = tuple(endpoints)
        if not endpoints:
            raise ValueError("RouterEngine needs at least one endpoint")
        clients: list[RemoteEngine] = []
        try:
            for endpoint in endpoints:
                clients.append(RemoteEngine(endpoint, **client_options))
        except BaseException:
            for client in clients:
                client.close()
            raise
        self.endpoints = endpoints
        # ShardedEngine takes ownership: its two-phase apply, recovery,
        # pooled fan-out and close() all drive the remote children
        # through the ordinary engine contract.
        super().__init__(clients)

    def stats_full(self, trace_id: Optional[int] = None) -> dict:
        """Every backend's extended telemetry plus the cross-fleet
        aggregate: ``{"per_server": {endpoint: <stats_full body>},
        "merged": <summed metrics snapshot>}``.  Fetched in parallel on
        the shard pool (one slow backend does not serialise the rest).
        With ``trace_id``, each backend returns that trace's retained
        spans instead of the recent tail (tree reassembly)."""
        bodies = self._fan(lambda client: client.stats_full(trace_id),
                           self.children)
        per_server = dict(zip(self.endpoints, bodies))
        return {
            "per_server": per_server,
            "merged": merge_snapshots(
                [body.get("metrics", {}) for body in bodies]),
        }

    def load_table(self) -> list[dict]:
        """One row per backend — the broker's load view: requests,
        connections, objects, and total server-side op time."""
        full = self.stats_full()
        table = []
        for endpoint, body in full["per_server"].items():
            server = body.get("server", {})
            hists = body.get("metrics", {}).get("histograms", {})
            op_ns = sum(hist.get("sum", 0) for key, hist in hists.items()
                        if key.startswith("server_op_ns"))
            table.append({
                "endpoint": endpoint,
                "requests": server.get("requests", 0),
                "connections": server.get("connections", 0),
                "object_count": server.get("object_count", 0),
                "uptime_s": server.get("uptime_s", 0),
                "op_ns": op_ns,
            })
        return table

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RouterEngine({', '.join(self.endpoints)})"
