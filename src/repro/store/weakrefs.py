"""Persistent weak references.

Section 4.1 of the paper plans to hold compiled hyper-programs through
*weak references* (JDK 1.2) so that "hyper-programs may be garbage
collected once no user references to them remain" (Figure 7).  The store's
reachability collector treats a :class:`PersistentWeakRef` as a node whose
outgoing edge does **not** keep its target alive; when the target becomes
unreachable through strong edges, the collector clears the reference.
"""

from __future__ import annotations

from typing import Any, Optional


class PersistentWeakRef:
    """A store-aware weak reference.

    Unlike :mod:`weakref`, this works for any value the store can hold and
    its weakness is interpreted by the *store's* collector over the stored
    graph, not by the Python runtime over the in-memory graph.
    """

    __slots__ = ("_target",)

    def __init__(self, target: Any = None):
        self._target = target

    def get(self) -> Optional[Any]:
        """The referent, or ``None`` once it has been collected."""
        return self._target

    def set(self, target: Any) -> None:
        """Re-point the reference (used during materialisation)."""
        self._target = target

    def clear(self) -> None:
        """Drop the referent; called by the store collector."""
        self._target = None

    @property
    def is_cleared(self) -> bool:
        return self._target is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cleared" if self.is_cleared else f"-> {type(self._target).__name__}"
        return f"PersistentWeakRef({state})"
