"""Object identifiers.

Every persistent object is named by a small integer *OID*.  OIDs are the
unit of referential integrity: stored objects refer to each other by OID,
and the store guarantees that any OID reachable from a stored object
resolves to a record (see :mod:`repro.store.objectstore`).
"""

from __future__ import annotations

from typing import NewType

Oid = NewType("Oid", int)

#: OID 0 is reserved as the "null" reference; real objects start at 1.
NULL_OID: Oid = Oid(0)

#: The first OID handed out by a fresh allocator.
FIRST_OID: Oid = Oid(1)


class OidAllocator:
    """Monotonic allocator of fresh OIDs.

    The allocator never reuses an OID, even after the object it named is
    garbage collected — reuse would let a stale reference silently resolve
    to an unrelated object, breaking identity.
    """

    def __init__(self, next_oid: int = FIRST_OID):
        if next_oid < FIRST_OID:
            raise ValueError(f"next_oid must be >= {FIRST_OID}, got {next_oid}")
        self._next = int(next_oid)

    def allocate(self) -> Oid:
        """Return a fresh, never-before-issued OID."""
        oid = Oid(self._next)
        self._next += 1
        return oid

    @property
    def next_oid(self) -> Oid:
        """The OID that the next :meth:`allocate` call will return."""
        return Oid(self._next)

    def advance_to(self, next_oid: int) -> None:
        """Move the allocation cursor forward (used by recovery).

        The cursor never moves backwards: recovering an old snapshot must
        not resurrect OIDs issued after the snapshot was taken.
        """
        if next_oid > self._next:
            self._next = int(next_oid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OidAllocator(next={self._next})"
