"""Identity map: the live-object cache of the store.

PJama guarantees that fetching the same persistent object twice yields the
*same* Java object — object identity is preserved across the store
boundary.  The identity map provides that guarantee: it is a bidirectional
association between OIDs and live Python objects, keyed by ``id()`` on the
object side (with the mapping itself keeping the object alive, so an id is
never reused while mapped).

This base class pins every mapped object strongly and forever — correct,
and right for small stores.  The read-serving subsystem's
:class:`~repro.store.serve.cache.ObjectCache` subclass bounds the strong
set with an LRU over a weak-reference tail; the store picks between them
via its ``cache_objects`` setting.

All methods are thread-safe: the map carries its own mutex, so concurrent
readers can share the store's read lock while still mutating LRU
bookkeeping safely.  The mutex covers single operations only — compound
invariants (fault installation, evict-and-refault) are the store's
:class:`~repro.store.serve.locks.ReadWriteLock`'s job.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator, Optional

from repro.store.oids import Oid


class IdentityMap:
    """Bidirectional OID <-> live object association (unbounded)."""

    def __init__(self) -> None:
        # RLock: subclasses take it around compound tier moves that call
        # back into base operations.
        self._mutex = threading.RLock()
        self._by_oid: dict[Oid, Any] = {}
        self._oid_by_id: dict[int, Oid] = {}

    def __len__(self) -> int:
        with self._mutex:
            return len(self._by_oid)

    def __contains__(self, oid: Oid) -> bool:
        with self._mutex:
            return oid in self._by_oid

    def add(self, oid: Oid, obj: Any) -> None:
        with self._mutex:
            existing = self._by_oid.get(oid)
            if existing is not None and existing is not obj:
                raise ValueError(
                    f"oid {oid} is already bound to another object")
            self._by_oid[oid] = obj
            self._oid_by_id[id(obj)] = oid

    def object_for(self, oid: Oid) -> Optional[Any]:
        """The live object for ``oid`` (counts as a *use* — a bounded
        subclass promotes it to the hot set)."""
        with self._mutex:
            return self._by_oid.get(oid)

    def hit(self, oid: Oid) -> Optional[Any]:
        """Optimistic strong-tier probe for the store's lock-free read
        fast path: a bare ``dict.get``, no mutex.  Safe because a single
        ``dict`` operation is atomic under the GIL; the *caller*
        validates against overlapping write sections with the serve
        lock's seqlock epoch and retakes the locked path on any overlap.
        """
        return self._by_oid.get(oid)

    def peek(self, oid: Oid) -> Optional[Any]:
        """Like :meth:`object_for` but without recency side effects —
        internal walks (stabilise, GC) use this so a full traversal does
        not churn a bounded cache's LRU order."""
        with self._mutex:
            return self._by_oid.get(oid)

    def oid_for(self, obj: Any) -> Optional[Oid]:
        with self._mutex:
            oid = self._oid_by_id.get(id(obj))
            # Guard against id() collisions with unmapped objects: the
            # entry is only valid if the mapped object is this very object.
            if oid is not None and self._by_oid.get(oid) is obj:
                return oid
            return None

    def evict(self, oid: Oid) -> None:
        with self._mutex:
            obj = self._by_oid.pop(oid, None)
            if obj is not None:
                self._oid_by_id.pop(id(obj), None)

    def clear(self) -> None:
        with self._mutex:
            self._by_oid.clear()
            self._oid_by_id.clear()

    def items(self) -> Iterator[tuple[Oid, Any]]:
        with self._mutex:
            return iter(list(self._by_oid.items()))

    def oids(self) -> set[Oid]:
        with self._mutex:
            return set(self._by_oid)

    # -- capacity hooks (no-ops when unbounded) --------------------------

    @property
    def capacity(self) -> Optional[int]:
        """Most clean objects held strongly, or ``None`` (unbounded)."""
        return None

    @property
    def strong_count(self) -> int:
        """Objects currently pinned by a strong reference."""
        return len(self)

    def set_demotion_guard(self, guard) -> None:
        """Install ``guard(oid, obj) -> bool`` deciding whether an LRU
        victim may be demoted to a weak reference (the store answers
        ``False`` for dirty objects).  Ignored when unbounded."""

    def set_demotion_hook(self, hook) -> None:
        """Install ``hook(oid)``, called after an object is demoted out
        of the strong set (the store drops its clean-state snapshot so
        the snapshot cannot pin the demoted object's children).  Ignored
        when unbounded."""

    def enforce_capacity(self) -> int:
        """Demote LRU victims until the strong set fits the capacity;
        returns the number demoted.  A no-op when unbounded."""
        return 0
