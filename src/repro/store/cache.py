"""Identity map: the live-object cache of the store.

PJama guarantees that fetching the same persistent object twice yields the
*same* Java object — object identity is preserved across the store
boundary.  The identity map provides that guarantee: it is a bidirectional
association between OIDs and live Python objects, keyed by ``id()`` on the
object side (with the mapping itself keeping the object alive, so an id is
never reused while mapped).
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.store.oids import Oid


class IdentityMap:
    """Bidirectional OID <-> live object association."""

    def __init__(self) -> None:
        self._by_oid: dict[Oid, Any] = {}
        self._oid_by_id: dict[int, Oid] = {}

    def __len__(self) -> int:
        return len(self._by_oid)

    def __contains__(self, oid: Oid) -> bool:
        return oid in self._by_oid

    def add(self, oid: Oid, obj: Any) -> None:
        existing = self._by_oid.get(oid)
        if existing is not None and existing is not obj:
            raise ValueError(f"oid {oid} is already bound to another object")
        self._by_oid[oid] = obj
        self._oid_by_id[id(obj)] = oid

    def object_for(self, oid: Oid) -> Optional[Any]:
        return self._by_oid.get(oid)

    def oid_for(self, obj: Any) -> Optional[Oid]:
        oid = self._oid_by_id.get(id(obj))
        # Guard against id() collisions with unmapped objects: the entry is
        # only valid if the mapped object is this very object.
        if oid is not None and self._by_oid.get(oid) is obj:
            return oid
        return None

    def evict(self, oid: Oid) -> None:
        obj = self._by_oid.pop(oid, None)
        if obj is not None:
            self._oid_by_id.pop(id(obj), None)

    def clear(self) -> None:
        self._by_oid.clear()
        self._oid_by_id.clear()

    def items(self) -> Iterator[tuple[Oid, Any]]:
        return iter(list(self._by_oid.items()))

    def oids(self) -> set[Oid]:
        return set(self._by_oid)
