"""Engine instrumentation: the ``TimedEngine`` decorator and the
native-counter binder.

``TimedEngine`` wraps any :class:`~repro.store.engine.base.StorageEngine`
and records one ``engine_op_ns{engine=...,op=...}`` histogram
observation per contract operation — the per-op latency distribution
every layer above (the store server's STATS_FULL, the router's load
table, ``store_top``) reads.  It is installed by
``open_store`` (``?metrics=1``, the default) or by
``engine_from_url`` when a URL names ``metrics=1`` explicitly, and
forwards everything else to the child, so engine-specific surface
(``children``, ``pipeline``, ``reserve_oids`` …) keeps working through
the wrapper.

With ``slow_op_ms`` set, any operation slower than the threshold also
emits one structured ``logging`` line on the ``repro.store.slowop``
logger::

    slow op read engine=file dur_ms=12.3 threshold_ms=5.0

:func:`bind_engine_metrics` handles what a wrapper cannot see: it walks
the engine stack (pipeline -> sharded -> file/sqlite/memory/remote) and
registers *pull-model* gauges over each layer's native counters — WAL
fsyncs, heap page-cache hits, commit-pipeline queue depth, two-phase
timings, network reconnects — so existing plain-``int`` bookkeeping
surfaces in snapshots without adding a single write-path instruction.
"""

from __future__ import annotations

import logging
import time
from typing import Iterable, Optional

from repro.store.engine.base import StorageEngine, WriteBatch
from repro.store.obs.metrics import MetricsRegistry
from repro.store.obs.trace import current_span
from repro.store.oids import Oid

__all__ = ["TimedEngine", "bind_engine_metrics"]

#: The slow-op log: one structured line per offending operation.
slow_log = logging.getLogger("repro.store.slowop")

#: Engine contract operations the wrapper times (one histogram each).
_TIMED_OPS = ("read", "contains", "fetch_many", "oids", "roots",
              "apply", "apply_many", "apply_async", "flush", "sync",
              "compact")


class TimedEngine(StorageEngine):
    """A storage engine that times every operation of its child."""

    def __init__(self, child: StorageEngine,
                 registry: Optional[MetricsRegistry] = None,
                 slow_op_ms: Optional[float] = None):
        super().__init__()
        self._child = child
        self.metrics = registry if registry is not None \
            else MetricsRegistry()
        if slow_op_ms is not None and slow_op_ms <= 0:
            raise ValueError(
                f"slow_op_ms must be > 0, got {slow_op_ms}")
        self._slow_ns = (int(slow_op_ms * 1e6)
                         if slow_op_ms is not None else None)
        self._slow_ms = slow_op_ms
        # One histogram per op, bound once: the hot path costs one
        # timestamped method call, never a registry lookup.
        engine = child.name
        self._op_hist = {op: self.metrics.histogram("engine_op_ns",
                                                    engine=engine, op=op)
                         for op in _TIMED_OPS}

    # -- timing core -----------------------------------------------------

    def _observe(self, op: str, start_ns: int) -> None:
        dur = time.perf_counter_ns() - start_ns
        self._op_hist[op].observe(dur)
        active = current_span()
        if active is not None:
            # Attach the engine op as a child of whatever traced work
            # caused it (a server dispatch, a store fault/stabilize).
            # The duration is already measured, so record directly
            # rather than re-wrapping the call in a scope.
            active.child("engine." + op,
                         time.time_ns() - dur, dur)
        if self._slow_ns is not None and dur >= self._slow_ns:
            slow_log.warning(
                "slow op %s engine=%s dur_ms=%.3f threshold_ms=%.3f",
                op, self._child.name, dur / 1e6, self._slow_ms,
                extra={"fields": {
                    "event": "slow_op", "op": op,
                    "engine": self._child.name, "dur_ms": dur / 1e6,
                    "threshold_ms": self._slow_ms,
                }})

    # -- composition -----------------------------------------------------

    @property
    def wrapped(self) -> StorageEngine:
        """The engine being timed.  Deliberately *not* named ``child``:
        ``child`` (like ``children``, ``pipeline``) forwards through
        ``__getattr__`` to the wrapped engine, so a wrapped
        ``PipelinedEngine``'s own composition stays visible exactly as
        if this wrapper were not there."""
        return self._child

    @property
    def name(self) -> str:  # type: ignore[override]
        return self._child.name

    @property
    def asynchronous(self) -> bool:  # type: ignore[override]
        return self._child.asynchronous

    @asynchronous.setter
    def asynchronous(self, value: bool) -> None:
        pass  # the child owns the flag; the base initialiser's write lands here

    @property
    def shard_of(self):
        return getattr(self._child, "shard_of", None)

    @property
    def directory(self):
        return getattr(self._child, "directory", None)

    # The physical counters belong to the child (same pattern as
    # PipelinedEngine): one counter however the engine is wrapped.

    @property
    def record_writes(self) -> int:
        return self._child.record_writes

    @record_writes.setter
    def record_writes(self, value: int) -> None:
        pass

    @property
    def batches_applied(self) -> int:
        return self._child.batches_applied

    @batches_applied.setter
    def batches_applied(self, value: int) -> None:
        pass

    def __getattr__(self, item: str):
        # Engine-specific surface (children, pipeline, policy,
        # reserve_oids, reset, stats, stats_full, ...) passes through.
        if item.startswith("_"):
            raise AttributeError(item)
        return getattr(self._child, item)

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._child.close()

    # -- reads -----------------------------------------------------------

    def read(self, oid: Oid) -> bytes:
        start = time.perf_counter_ns()
        try:
            return self._child.read(oid)
        finally:
            self._observe("read", start)

    def contains(self, oid: Oid) -> bool:
        start = time.perf_counter_ns()
        try:
            return self._child.contains(oid)
        finally:
            self._observe("contains", start)

    def fetch_many(self, oids: Iterable[Oid]) -> dict[Oid, bytes]:
        start = time.perf_counter_ns()
        try:
            return self._child.fetch_many(oids)
        finally:
            self._observe("fetch_many", start)

    def oids(self) -> Iterable[Oid]:
        start = time.perf_counter_ns()
        try:
            return self._child.oids()
        finally:
            self._observe("oids", start)

    @property
    def object_count(self) -> int:
        return self._child.object_count

    def roots(self) -> dict[str, Oid]:
        start = time.perf_counter_ns()
        try:
            return self._child.roots()
        finally:
            self._observe("roots", start)

    @property
    def next_oid(self) -> int:
        return self._child.next_oid

    @property
    def page_count(self) -> int:
        return self._child.page_count

    # -- writes ----------------------------------------------------------

    def apply(self, batch: WriteBatch) -> None:
        start = time.perf_counter_ns()
        try:
            self._child.apply(batch)
        finally:
            self._observe("apply", start)

    def apply_many(self, batches: Iterable[WriteBatch]) -> None:
        start = time.perf_counter_ns()
        try:
            self._child.apply_many(batches)
        finally:
            self._observe("apply_many", start)

    def apply_async(self, batch: WriteBatch):
        start = time.perf_counter_ns()
        try:
            return self._child.apply_async(batch)
        finally:
            self._observe("apply_async", start)

    # -- barriers and maintenance ----------------------------------------

    def flush(self) -> None:
        start = time.perf_counter_ns()
        try:
            self._child.flush()
        finally:
            self._observe("flush", start)

    def sync(self) -> None:
        start = time.perf_counter_ns()
        try:
            self._child.sync()
        finally:
            self._observe("sync", start)

    def compact(self) -> int:
        start = time.perf_counter_ns()
        try:
            return self._child.compact()
        finally:
            self._observe("compact", start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TimedEngine({self._child!r})"


def _gauges_for(registry: MetricsRegistry, obj: object,
                names: dict[str, str], **labels: str) -> None:
    """Pull gauges over ``obj``'s plain-int attributes: ``names`` maps
    gauge name -> attribute name."""
    for gauge_name, attr in names.items():
        registry.gauge_fn(gauge_name,
                          (lambda o=obj, a=attr: getattr(o, a, 0)),
                          **labels)


def bind_engine_metrics(engine: StorageEngine,
                        registry: MetricsRegistry,
                        **labels: str) -> None:
    """Expose an engine stack's native counters as pull-model gauges.

    Walks wrappers and compositions (``TimedEngine`` ->
    ``PipelinedEngine`` -> ``ShardedEngine``/``RouterEngine`` -> leaf
    backends), registering gauges labelled by engine kind (and by
    ``shard=N`` below a sharded engine).  Idempotent: re-binding after
    an engine swap (the server's ``reset``) replaces the callbacks.
    """
    if not registry.enabled:
        return
    if isinstance(engine, TimedEngine):
        bind_engine_metrics(engine.wrapped, registry, **labels)
        return
    child = getattr(engine, "child", None)
    kind = engine.name
    pipeline = getattr(engine, "pipeline", None)
    if pipeline is not None and child is not None:  # PipelinedEngine
        registry.gauge_fn("commit_queue_depth",
                          lambda p=pipeline: p.pending_count, **labels)
        _gauges_for(registry, pipeline, {
            "commit_groups_total": "groups_committed",
            "commit_group_batches_total": "batches_committed",
            "commit_linger_ns_total": "linger_ns",
        }, **labels)
        bind_engine_metrics(child, registry, **labels)
        return
    children = getattr(engine, "children", None)
    if children is not None:  # ShardedEngine / RouterEngine
        _gauges_for(registry, engine, {
            "twophase_commits_total": "two_phase_commits",
            "twophase_prepare_ns_total": "prepare_ns",
            "twophase_marker_ns_total": "marker_ns",
            "twophase_apply_ns_total": "apply_ns",
        }, engine=kind, **labels)
        for index, shard_child in enumerate(children):
            bind_engine_metrics(shard_child, registry,
                                shard=str(index), **labels)
        return
    if kind == "file":
        _gauges_for(registry, engine.wal, {
            "wal_fsyncs_total": "fsyncs",
            "wal_synced_bytes_total": "synced_bytes",
        }, engine=kind, **labels)
        _gauges_for(registry, engine.manifest,
                    {"manifest_fsyncs_total": "fsyncs"},
                    engine=kind, **labels)
        _gauges_for(registry, engine.heap, {
            "heap_page_hits_total": "page_hits",
            "heap_page_misses_total": "page_misses",
            "heap_page_evictions_total": "page_evictions",
            "heap_cached_pages": "cached_pages",
        }, engine=kind, **labels)
        _gauges_for(registry, engine,
                    {"checkpoints_total": "checkpoints"},
                    engine=kind, **labels)
    elif kind == "remote":
        _gauges_for(registry, engine, {
            "net_connects_total": "connects",
            "net_reconnect_retries_total": "reconnect_retries",
            "net_timeouts_total": "timeouts",
        }, engine=kind, endpoint=engine.endpoint, **labels)
    _gauges_for(registry, engine, {
        "engine_record_writes_total": "record_writes",
        "engine_batches_applied_total": "batches_applied",
    }, engine=kind, **labels)
