"""Store telemetry: metrics registry, engine instrumentation, tracing.

Three small pieces, threaded through every storage layer:

* :mod:`~repro.store.obs.metrics` — the lock-cheap
  :class:`MetricsRegistry` of counters, gauges and power-of-two latency
  histograms, with a plain-dict :meth:`~MetricsRegistry.snapshot` (the
  wire exposition) and a Prometheus-style text renderer;
* :mod:`~repro.store.obs.instrument` — the :class:`TimedEngine`
  decorator timing every :class:`~repro.store.engine.base.StorageEngine`
  operation, plus :func:`bind_engine_metrics`, which walks an engine
  stack and exposes each layer's native counters as pull-model gauges;
* :mod:`~repro.store.obs.trace` — lightweight span records and the
  bounded :class:`SpanLog` the store server keeps per process.

``open_store(url)`` enables metrics by default (``?metrics=0`` turns
them off; a disabled registry hands out shared no-op instruments, so
the hot paths pay nothing).  ``?slow_op_ms=N`` adds a structured
``logging`` line per engine operation slower than N milliseconds.
"""

from repro.store.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    merge_snapshots,
    render_prometheus,
)
from repro.store.obs.instrument import TimedEngine, bind_engine_metrics
from repro.store.obs.trace import Span, SpanLog, new_trace_id

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanLog",
    "TimedEngine",
    "bind_engine_metrics",
    "global_registry",
    "merge_snapshots",
    "new_trace_id",
    "render_prometheus",
]
