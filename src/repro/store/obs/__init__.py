"""Store telemetry: metrics registry, engine instrumentation, tracing.

Three small pieces, threaded through every storage layer:

* :mod:`~repro.store.obs.metrics` — the lock-cheap
  :class:`MetricsRegistry` of counters, gauges and power-of-two latency
  histograms, with a plain-dict :meth:`~MetricsRegistry.snapshot` (the
  wire exposition) and a Prometheus-style text renderer;
* :mod:`~repro.store.obs.instrument` — the :class:`TimedEngine`
  decorator timing every :class:`~repro.store.engine.base.StorageEngine`
  operation, plus :func:`bind_engine_metrics`, which walks an engine
  stack and exposes each layer's native counters as pull-model gauges;
* :mod:`~repro.store.obs.trace` — hierarchical span trees: the
  contextvar-propagated :func:`span` context manager, the sampling
  :class:`Tracer`, the bounded :class:`SpanLog` each store server
  keeps, and the durable JSONL :class:`TraceLog` sink.

``open_store(url)`` enables metrics by default (``?metrics=0`` turns
them off; a disabled registry hands out shared no-op instruments, so
the hot paths pay nothing).  ``?slow_op_ms=N`` adds a structured
``logging`` line per engine operation slower than N milliseconds.
``?trace_sample=N`` samples 1 in N store ops into a span tree,
``?slow_trace_ms=F`` always keeps traces slower than F milliseconds,
and ``?trace_log=PATH`` makes captured spans durable as JSONL.
"""

from repro.store.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    merge_snapshots,
    render_prometheus,
)
from repro.store.obs.instrument import TimedEngine, bind_engine_metrics
from repro.store.obs.trace import (
    JsonLineFormatter,
    Span,
    SpanLog,
    TraceLog,
    Tracer,
    current_span,
    iter_trace_log,
    new_span_id,
    new_trace_id,
    run_with_span,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLineFormatter",
    "MetricsRegistry",
    "Span",
    "SpanLog",
    "TimedEngine",
    "TraceLog",
    "Tracer",
    "bind_engine_metrics",
    "current_span",
    "global_registry",
    "iter_trace_log",
    "merge_snapshots",
    "new_span_id",
    "new_trace_id",
    "render_prometheus",
    "run_with_span",
    "span",
]
