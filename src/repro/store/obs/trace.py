"""Lightweight op tracing: span records and the per-process span log.

A :class:`Span` is one timed operation — op name, start, duration and
an optional parent trace id.  The id travels across the wire in the
``TRACE`` envelope (:mod:`repro.store.net.protocol`), so a client-side
fetch and the server-side work it caused share one id; the server keeps
its recent spans in a bounded :class:`SpanLog` and returns them in the
``STATS_FULL`` body, which is how ``scripts/store_top.py`` shows who is
doing what on a live server.

Spans are telemetry, not audit: the log is a fixed-size ring (old spans
fall off) and recording is append-under-mutex, cheap enough for the
per-request path of a server but deliberately not free — only traced
requests and server dispatches record spans; engine hot paths use the
histogram instruments instead.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from typing import Optional

#: Process-unique-enough trace ids: pid in the high bits, a counter in
#: the low, so ids from several client processes never collide on one
#: server's span log.
_counter = itertools.count(1)


def new_trace_id() -> int:
    return (os.getpid() << 32) | (next(_counter) & 0xFFFFFFFF)


class Span:
    """One timed operation."""

    __slots__ = ("op", "start_ns", "dur_ns", "trace_id", "parent")

    def __init__(self, op: str, start_ns: int, dur_ns: int,
                 trace_id: int = 0, parent: Optional[int] = None):
        self.op = op
        self.start_ns = start_ns
        self.dur_ns = dur_ns
        self.trace_id = trace_id
        self.parent = parent

    def to_dict(self) -> dict:
        out = {"op": self.op, "start_ns": self.start_ns,
               "dur_ns": self.dur_ns, "trace_id": self.trace_id}
        if self.parent is not None:
            out["parent"] = self.parent
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.op}, dur={self.dur_ns}ns, "
                f"trace={self.trace_id})")


class SpanLog:
    """A bounded ring of recent spans (newest last)."""

    def __init__(self, maxlen: int = 512):
        self._spans: deque[Span] = deque(maxlen=maxlen)
        self._lock = threading.Lock()

    def record(self, op: str, start_ns: int, dur_ns: int,
               trace_id: int = 0, parent: Optional[int] = None) -> None:
        span = Span(op, start_ns, dur_ns, trace_id, parent)
        with self._lock:
            self._spans.append(span)

    def start(self) -> int:
        """The wall-clock start stamp spans are recorded against."""
        return time.time_ns()

    def tail(self, limit: int = 64) -> list[dict]:
        """The newest ``limit`` spans as plain dicts (wire-safe)."""
        with self._lock:
            spans = list(self._spans)[-limit:]
        return [span.to_dict() for span in spans]

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)
