"""Hierarchical op tracing: span trees, sampling and durable sinks.

A :class:`Span` is one timed operation — op name, start, duration, the
trace it belongs to and its position in that trace's tree (``span_id``
and the parent's span id).  Trace and span ids travel across the wire
in the ``TRACE`` envelope (:mod:`repro.store.net.protocol`), so a
client-side fetch and the server-side work it caused link into one
tree; each server keeps its recent spans in a bounded :class:`SpanLog`
and returns them in the ``STATS_FULL`` body, which is how a client (or
``scripts/store_trace.py``) reassembles the full cross-process tree
for a trace id.

The in-process half is contextvar based.  A :class:`Tracer` decides at
the *root* whether a trace is captured (head-based sampling: 1-in-N
via ``trace_sample``, plus capture-everything-keep-slow via
``slow_trace_ms``); inside a captured trace, :func:`span` opens child
spans anywhere down the stack — the WAL fsync, a 2PC phase, a planner
wave — without any plumbing.  When no trace is active :func:`span`
returns a shared no-op: one contextvar read, no allocation, which is
what keeps unsampled hot paths at their untraced cost.

Captured spans buffer in a per-trace collector and flush on root exit
into the tracer's :class:`SpanLog` ring and, when configured, a
:class:`TraceLog` — a durable JSONL sink (one JSON object per span or
event, size-based rotation).  :class:`JsonLineFormatter` renders
ordinary ``logging`` records (the ``repro.store.slowop`` stream,
server lifecycle messages) as the same one-object-per-line JSON.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import logging
import os
import threading
import time
from collections import deque
from typing import Any, Callable, Optional

# -- ids ------------------------------------------------------------------
#
# Trace and span ids must never collide across the processes that
# contribute to one tree (client, router, N servers).  Both are drawn
# from one per-process counter under a process tag that mixes the pid
# *and* the process start time: a bare pid aliases after pid reuse, and
# a 32-bit counter window wraps silently under a long-lived client.

_COUNTER_BITS = 48
_COUNTER_MASK = (1 << _COUNTER_BITS) - 1
_START_NS = time.time_ns()
_counter = itertools.count(1)


def _process_tag(pid: int, start_ns: int) -> int:
    """Distinguishes two processes even when one recycled the other's
    pid — the start time differs, so the tag differs."""
    return ((pid & 0xFFFFFFFF) << 16) ^ (start_ns & 0xFFFFFFFFFFFF)


_TAG = _process_tag(os.getpid(), _START_NS)


def _new_id() -> int:
    return (_TAG << _COUNTER_BITS) | (next(_counter) & _COUNTER_MASK)


def new_trace_id() -> int:
    return _new_id()


def new_span_id() -> int:
    return _new_id()


# -- span records ---------------------------------------------------------


class Span:
    """One timed operation, positioned in its trace's tree."""

    __slots__ = ("op", "start_ns", "dur_ns", "trace_id", "parent",
                 "span_id")

    def __init__(self, op: str, start_ns: int, dur_ns: int,
                 trace_id: int = 0, parent: Optional[int] = None,
                 span_id: int = 0):
        self.op = op
        self.start_ns = start_ns
        self.dur_ns = dur_ns
        self.trace_id = trace_id
        self.parent = parent
        self.span_id = span_id

    def to_dict(self) -> dict:
        out = {"op": self.op, "start_ns": self.start_ns,
               "dur_ns": self.dur_ns, "trace_id": self.trace_id}
        if self.parent is not None:
            out["parent"] = self.parent
        if self.span_id:
            out["span_id"] = self.span_id
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.op}, dur={self.dur_ns}ns, "
                f"trace={self.trace_id})")


class SpanLog:
    """A bounded ring of recent spans (newest last)."""

    def __init__(self, maxlen: int = 2048):
        self._spans: deque[Span] = deque(maxlen=maxlen)
        self._lock = threading.Lock()

    def record(self, op: str, start_ns: int, dur_ns: int,
               trace_id: int = 0, parent: Optional[int] = None,
               span_id: int = 0) -> None:
        span = Span(op, start_ns, dur_ns, trace_id, parent, span_id)
        with self._lock:
            self._spans.append(span)

    def record_span(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def start(self) -> int:
        """The wall-clock start stamp spans are recorded against."""
        return time.time_ns()

    def tail(self, limit: int = 64) -> list[dict]:
        """The newest ``limit`` spans as plain dicts (wire-safe)."""
        with self._lock:
            spans = list(self._spans)[-limit:]
        return [span.to_dict() for span in spans]

    def for_trace(self, trace_id: int) -> list[dict]:
        """Every retained span of one trace (wire-safe dicts)."""
        with self._lock:
            spans = [s for s in self._spans if s.trace_id == trace_id]
        return [span.to_dict() for span in spans]

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


# -- durable JSONL sink ---------------------------------------------------


class TraceLog:
    """Durable JSONL trace/event sink with size-based rotation.

    One JSON object per line: spans carry ``"kind": "span"`` plus the
    :meth:`Span.to_dict` fields, events carry ``"kind": "event"`` with
    an event name and free-form fields.  When the file outgrows
    ``max_bytes`` it is renamed to ``<path>.1`` (replacing any previous
    rotation) and a fresh file is started, so the sink is bounded at
    roughly twice ``max_bytes`` on disk.
    """

    def __init__(self, path: str, max_bytes: int = 8 * 1024 * 1024):
        self._path = path
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._file = open(path, "a", encoding="utf-8")
        self._size = self._file.tell()

    @property
    def path(self) -> str:
        return self._path

    def write(self, obj: dict) -> None:
        line = json.dumps(obj, separators=(",", ":")) + "\n"
        with self._lock:
            if self._file.closed:
                return
            if self._size and self._size + len(line) > self.max_bytes:
                self._rotate()
            self._file.write(line)
            self._file.flush()
            self._size += len(line)

    def write_span(self, span: Span) -> None:
        self.write({"kind": "span", **span.to_dict()})

    def event(self, event: str, **fields: Any) -> None:
        self.write({"kind": "event", "event": event,
                    "ts_ns": time.time_ns(), **fields})

    def _rotate(self) -> None:
        self._file.close()
        os.replace(self._path, self._path + ".1")
        self._file = open(self._path, "a", encoding="utf-8")
        self._size = 0

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()


def iter_trace_log(path: str) -> "list[dict]":
    """All JSON objects from a trace log (``.1`` rotation first, so
    entries come back in rough write order).  Torn last lines — a
    crashed writer — are skipped, matching WAL tail discipline."""
    out: list[dict] = []
    for candidate in (path + ".1", path):
        if not os.path.exists(candidate):
            continue
        with open(candidate, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    out.append(json.loads(line))
                except json.JSONDecodeError:
                    continue
    return out


# -- structured logging ---------------------------------------------------


class JsonLineFormatter(logging.Formatter):
    """Renders log records as one JSON object per line.

    Extra structured fields ride in ``extra={"fields": {...}}`` — the
    ``repro.store.slowop`` warning attaches op/engine/duration that
    way, so the same record formats as a human line under the default
    formatter and as machine-readable JSON under this one.
    """

    def format(self, record: logging.LogRecord) -> str:
        out: dict[str, Any] = {
            "ts": record.created,
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict):
            out.update(fields)
        return json.dumps(out, separators=(",", ":"))


# -- active-span propagation ----------------------------------------------

_ACTIVE: "contextvars.ContextVar[Optional[_SpanScope]]" = \
    contextvars.ContextVar("repro-store-active-span", default=None)


def current_span() -> "Optional[_SpanScope]":
    """The innermost open span of the calling context, or ``None``."""
    return _ACTIVE.get()


def run_with_span(scope: "Optional[_SpanScope]", fn: Callable,
                  *args: Any) -> Any:
    """Run ``fn`` with ``scope`` active — the cross-thread propagation
    helper for fan-out pools, where contextvars do not follow work onto
    executor threads."""
    if scope is None:
        return fn(*args)
    token = _ACTIVE.set(scope)
    try:
        return fn(*args)
    finally:
        _ACTIVE.reset(token)


class _NullSpan:
    """Shared no-op scope: the not-sampled fast path allocates nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Collector:
    """Per-trace buffer of finished spans.

    Children append while the trace runs (possibly from several
    threads); the root drains once on exit.  Appends after the drain —
    a straggler async commit — are dropped rather than leaked."""

    __slots__ = ("_spans", "_lock", "_closed")

    def __init__(self) -> None:
        self._spans: list[Span] = []
        self._lock = threading.Lock()
        self._closed = False

    def add(self, span: Span) -> None:
        with self._lock:
            if not self._closed:
                self._spans.append(span)

    def drain(self) -> list[Span]:
        with self._lock:
            self._closed = True
            return self._spans


class _SpanScope:
    """An open span: context manager, contextvar anchor, tree node."""

    __slots__ = ("op", "trace_id", "span_id", "parent_id", "start_ns",
                 "_t0", "_collector", "_token", "_tracer", "_keep")

    def __init__(self, op: str, trace_id: int, parent_id: int,
                 collector: _Collector,
                 tracer: "Optional[Tracer]" = None, keep: bool = False):
        self.op = op
        self.trace_id = trace_id
        self.span_id = new_span_id()
        self.parent_id = parent_id
        self.start_ns = 0
        self._collector = collector
        self._tracer = tracer
        self._keep = keep

    def __enter__(self) -> "_SpanScope":
        self.start_ns = time.time_ns()
        self._token = _ACTIVE.set(self)
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        dur_ns = time.perf_counter_ns() - self._t0
        _ACTIVE.reset(self._token)
        self._collector.add(Span(
            self.op, self.start_ns, dur_ns, self.trace_id,
            self.parent_id or None, self.span_id))
        if self._tracer is not None:
            self._tracer._finish(self, dur_ns)
        return False

    def child(self, op: str, start_ns: int, dur_ns: int) -> None:
        """Record an already-measured child span directly — used where
        wrapping the timed region in a context manager is impractical
        (another thread owns the measurement)."""
        self._collector.add(Span(op, start_ns, dur_ns, self.trace_id,
                                 self.span_id, new_span_id()))


def span(op: str):
    """Open a child span under the active trace.

    With no trace active this returns a shared no-op context manager —
    one contextvar read and an identity test, no allocation — so
    instrumented hot paths cost nothing when tracing is off.
    """
    parent = _ACTIVE.get()
    if parent is None:
        return _NULL_SPAN
    return _SpanScope(op, parent.trace_id, parent.span_id,
                      parent._collector)


class Tracer:
    """Head-based sampling policy plus the sinks captured traces feed.

    ``sample=N`` keeps 1 in N root spans (0 disables sampling);
    ``slow_ms`` additionally captures *every* root and keeps the ones
    slower than the threshold.  Roots opened while another span is
    already active join the surrounding trace as children instead of
    starting a competing tree.
    """

    def __init__(self, sample: int = 0, slow_ms: Optional[float] = None,
                 log: Optional[TraceLog] = None,
                 spans: Optional[SpanLog] = None):
        self.sample = int(sample)
        self.slow_ns = None if slow_ms is None else slow_ms * 1_000_000
        self.log = log
        self.spans = spans if spans is not None else SpanLog()
        self._tick = itertools.count(1)

    def root(self, op: str, trace_id: int = 0, parent_id: int = 0,
             forced: bool = False):
        """A root scope for one traced operation, or the shared no-op
        when this operation is not captured.  ``forced`` roots (a
        server honouring a client's TRACE envelope) are always kept."""
        if _ACTIVE.get() is not None:
            return span(op)
        if forced:
            keep = True
        elif self.sample > 0 and next(self._tick) % self.sample == 0:
            keep = True
        elif self.slow_ns is not None:
            keep = False  # capture; kept only if it turns out slow
        else:
            return _NULL_SPAN
        return _SpanScope(op, trace_id or new_trace_id(), parent_id,
                          _Collector(), tracer=self, keep=keep)

    def _finish(self, root: _SpanScope, dur_ns: int) -> None:
        keep = root._keep or (self.slow_ns is not None
                              and dur_ns >= self.slow_ns)
        spans = root._collector.drain()
        if not keep:
            return
        for item in spans:
            self.spans.record_span(item)
            if self.log is not None:
                self.log.write_span(item)

    def event(self, event: str, **fields: Any) -> None:
        """A structured lifecycle event, durable when a log is bound."""
        if self.log is not None:
            self.log.event(event, **fields)

    def close(self) -> None:
        if self.log is not None:
            self.log.close()
