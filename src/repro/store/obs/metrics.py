"""The metrics core: counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` per store (plus a process-global one for
code with no store in reach) hands out three instrument kinds:

* :class:`Counter` — a monotonically increasing integer;
* :class:`Gauge` — a point-in-time value, either pushed (``set``/
  ``inc``/``dec``) or *pulled* through a callback evaluated at snapshot
  time.  Pull gauges are how existing native counters (cache demotions,
  WAL fsyncs, pipeline queue depth) surface without a write-path tax;
* :class:`Histogram` — fixed power-of-two buckets, sized for
  nanosecond latencies: an observation of ``v`` lands in the bucket
  whose upper bound is the smallest ``2**i >= v``.

Concurrency: instruments update with plain ``int`` arithmetic, which is
*atomic enough* under the GIL — a ``+=`` can lose an increment only
across a bytecode boundary race, acceptable for telemetry.  Counters
that must be exact (the store's ``stabilize_count``) are incremented at
sites that already hold a lock, which makes them exact for free.
Snapshotting copies values without stopping writers; a snapshot is a
consistent-enough point-in-time view, not a barrier.

Zero cost when disabled: a disabled registry returns shared *null*
instruments whose methods do nothing, so instrumented code keeps one
attribute call per event and no branches.

Label support is positional-free: ``registry.counter("engine_ops",
engine="sqlite", op="apply")`` — the (name, sorted labels) pair
identifies the instrument, and the snapshot keys flatten to
``engine_ops{engine=sqlite,op=apply}``.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

#: Histogram bucket count: upper bounds 2**0 .. 2**(N-1) ns; the last
#: bucket also absorbs anything larger (2**39 ns is ~9 minutes, far
#: beyond any op this store times).
_NUM_BUCKETS = 40


def _bucket_index(value: int) -> int:
    """The bucket for one observation: smallest ``i`` with
    ``2**i >= value`` (values below 1 land in bucket 0, huge values
    clamp to the last bucket)."""
    if value <= 1:
        return 0
    index = (int(value) - 1).bit_length()
    return index if index < _NUM_BUCKETS else _NUM_BUCKETS - 1


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value; push through ``set``/``inc``/``dec`` or
    pull through a callback supplied at registration."""

    __slots__ = ("_value", "fn")

    def __init__(self, fn: Optional[Callable[[], float]] = None) -> None:
        self._value = 0
        self.fn = fn

    def set(self, value: float) -> None:
        self._value = value

    def inc(self, n: float = 1) -> None:
        self._value += n

    def dec(self, n: float = 1) -> None:
        self._value -= n

    @property
    def value(self) -> float:
        if self.fn is not None:
            try:
                return self.fn()
            except Exception:
                # A pull gauge over a closing engine must not take the
                # whole snapshot down with it.
                return 0
        return self._value


class Histogram:
    """Power-of-two fixed buckets plus running count and sum."""

    __slots__ = ("count", "sum", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0
        self.buckets = [0] * _NUM_BUCKETS

    def observe(self, value: int) -> None:
        self.count += 1
        self.sum += value
        self.buckets[_bucket_index(value)] += 1

    def quantile(self, q: float) -> int:
        """An upper bound on the ``q``-quantile (bucket resolution)."""
        if self.count == 0:
            return 0
        target = q * self.count
        seen = 0
        for index, bucket in enumerate(self.buckets):
            seen += bucket
            if seen >= target:
                return 1 << index
        return 1 << (_NUM_BUCKETS - 1)  # pragma: no cover - clamp


class _NullInstrument:
    """The shared do-nothing instrument of a disabled registry."""

    __slots__ = ()
    value = 0
    count = 0
    sum = 0
    fn = None

    def inc(self, n: int = 1) -> None:
        pass

    def dec(self, n: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: int) -> None:
        pass

    def quantile(self, q: float) -> int:
        return 0


_NULL = _NullInstrument()


def _flat_key(name: str, labels: dict) -> str:
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Get-or-create instruments by (name, labels); snapshot to a dict.

    Instrument creation takes a mutex; the instruments themselves are
    lock-free (callers cache the instrument reference, so the hot path
    is one bound-method call).  A disabled registry returns the shared
    null instrument from every getter.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument getters ----------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        if not self.enabled:
            return _NULL
        key = _flat_key(name, labels)
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = self._counters[key] = Counter()
            return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        if not self.enabled:
            return _NULL
        key = _flat_key(name, labels)
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = self._gauges[key] = Gauge()
            return instrument

    def gauge_fn(self, name: str, fn: Callable[[], float],
                 **labels: str) -> Gauge:
        """A pull-model gauge: ``fn`` is evaluated at snapshot time.
        Re-registering a name replaces its callback (an engine reset
        re-binds its gauges to the fresh engine)."""
        if not self.enabled:
            return _NULL
        key = _flat_key(name, labels)
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = self._gauges[key] = Gauge(fn)
            else:
                instrument.fn = fn
            return instrument

    def histogram(self, name: str, **labels: str) -> Histogram:
        if not self.enabled:
            return _NULL
        key = _flat_key(name, labels)
        with self._lock:
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = self._histograms[key] = Histogram()
            return instrument

    # -- exposition -------------------------------------------------------

    def snapshot(self) -> dict:
        """A plain-dict (JSON-safe) view of every instrument.

        Histograms expose only their non-empty buckets, keyed by the
        bucket's upper bound as a string (JSON objects key on strings).
        """
        with self._lock:
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
            histograms = list(self._histograms.items())
        return {
            "counters": {key: counter.value for key, counter in counters},
            "gauges": {key: gauge.value for key, gauge in gauges},
            "histograms": {
                key: {
                    "count": hist.count,
                    "sum": hist.sum,
                    "buckets": {str(1 << index): bucket
                                for index, bucket in enumerate(hist.buckets)
                                if bucket},
                }
                for key, hist in histograms
            },
        }


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Sum several snapshots into one (the router's cross-server
    aggregate): counters and histogram counts/sums/buckets add, gauges
    add too (queue depths and cache sizes aggregate meaningfully as
    totals across a fleet)."""
    merged: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for snap in snapshots:
        for key, value in snap.get("counters", {}).items():
            merged["counters"][key] = merged["counters"].get(key, 0) + value
        for key, value in snap.get("gauges", {}).items():
            merged["gauges"][key] = merged["gauges"].get(key, 0) + value
        for key, hist in snap.get("histograms", {}).items():
            out = merged["histograms"].setdefault(
                key, {"count": 0, "sum": 0, "buckets": {}})
            out["count"] += hist.get("count", 0)
            out["sum"] += hist.get("sum", 0)
            for bound, count in hist.get("buckets", {}).items():
                out["buckets"][bound] = out["buckets"].get(bound, 0) + count
    return merged


def render_prometheus(snapshot: dict) -> str:
    """A Prometheus-style text exposition of one snapshot.

    Counter keys render with a ``_total``-less name as-is; histograms
    render cumulative ``_bucket{le=...}`` series plus ``_count`` and
    ``_sum``, the standard shape scrapers expect.
    """

    def split(key: str) -> tuple[str, str]:
        name, brace, labels = key.partition("{")
        return name, (brace + labels) if brace else ""

    def labelled(name: str, labels: str, extra: str) -> str:
        if not labels:
            return f"{name}{{{extra}}}" if extra else name
        inner = labels[1:-1]
        merged = f"{inner},{extra}" if extra else inner
        return f"{name}{{{merged}}}"

    lines: list[str] = []
    for key in sorted(snapshot.get("counters", {})):
        name, labels = split(key)
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{labelled(name, labels, '')} "
                     f"{snapshot['counters'][key]}")
    for key in sorted(snapshot.get("gauges", {})):
        name, labels = split(key)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{labelled(name, labels, '')} "
                     f"{snapshot['gauges'][key]}")
    for key in sorted(snapshot.get("histograms", {})):
        name, labels = split(key)
        hist = snapshot["histograms"][key]
        lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        for bound in sorted(hist.get("buckets", {}), key=int):
            cumulative += hist["buckets"][bound]
            lines.append(f"{labelled(name + '_bucket', labels, f'le={bound}')}"
                         f" {cumulative}")
        lines.append(f"{labelled(name + '_bucket', labels, 'le=+Inf')} "
                     f"{hist['count']}")
        lines.append(f"{labelled(name + '_count', labels, '')} "
                     f"{hist['count']}")
        lines.append(f"{labelled(name + '_sum', labels, '')} {hist['sum']}")
    return "\n".join(lines) + "\n"


#: The process-global registry (code with no store in reach).
_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    return _GLOBAL
