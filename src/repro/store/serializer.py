"""Typed, identity-preserving serialisation.

The store does not use pickle: pickle re-imports classes by path without a
schema check and flattens away the distinction between *references* and
*values*, losing exactly the typed-object fidelity PJama provides and
hyper-links require.  This module defines a small binary record format with
explicit type tags in which:

* every *storable node* (registered instance, ``list``, ``dict``, ``set``,
  ``bytearray``, :class:`~repro.store.weakrefs.PersistentWeakRef`) becomes
  one :class:`Record` named by an OID, and inter-node edges are stored as
  OID references — so sharing and cycles survive a round trip;
* immutable values (``None``, ``bool``, ``int``, ``float``, ``complex``,
  ``str``, ``bytes``, ``tuple``, ``frozenset``) are inlined with their own
  tags — a fetched field has exactly the type it was stored with;
* instance records carry the class's qualified name and schema fingerprint,
  checked against the :class:`~repro.store.registry.ClassRegistry` on fetch.

Decoding is two-phase so that cyclic graphs materialise correctly: first a
*shell* object is created for each record, then fields are filled with
references resolved through the store's identity map.
"""

from __future__ import annotations

import math
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import DeserializationError, SerializationError
from repro.store.oids import Oid
from repro.store.registry import ClassRegistry, RegisteredClass

try:  # pragma: no cover - present in every standard CPython build
    import lzma
except ImportError:  # pragma: no cover - minimal builds without liblzma
    lzma = None  # type: ignore[assignment]

# ---------------------------------------------------------------------------
# Record kinds
# ---------------------------------------------------------------------------

KIND_INSTANCE = 1
KIND_LIST = 2
KIND_DICT = 3
KIND_SET = 4
KIND_BYTEARRAY = 5
KIND_WEAKREF = 6

_KIND_NAMES = {
    KIND_INSTANCE: "instance",
    KIND_LIST: "list",
    KIND_DICT: "dict",
    KIND_SET: "set",
    KIND_BYTEARRAY: "bytearray",
    KIND_WEAKREF: "weakref",
}

# Value tags -----------------------------------------------------------------

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"i"
_TAG_FLOAT = b"f"
_TAG_COMPLEX = b"c"
_TAG_STR = b"s"
_TAG_BYTES = b"b"
_TAG_TUPLE = b"u"
_TAG_FROZENSET = b"z"
_TAG_REF = b"r"


@dataclass(frozen=True)
class Ref:
    """A decoded reference to another storable node."""

    oid: Oid

    def __repr__(self) -> str:
        return f"Ref({self.oid})"


# ---------------------------------------------------------------------------
# Varint helpers
# ---------------------------------------------------------------------------

def write_uvarint(buf: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint."""
    if value < 0:
        raise SerializationError(f"uvarint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buf.append(byte | 0x80)
        else:
            buf.append(byte)
            return


def read_uvarint(data: bytes, pos: int) -> tuple[int, int]:
    """Read an unsigned LEB128 varint; returns (value, new_pos)."""
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise DeserializationError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def write_svarint(buf: bytearray, value: int) -> None:
    """Append a signed integer as zigzag-encoded varint (arbitrary size)."""
    # Zigzag for arbitrary-precision ints: non-negative -> 2n, negative -> -2n-1.
    encoded = value * 2 if value >= 0 else -value * 2 - 1
    write_uvarint(buf, encoded)


def read_svarint(data: bytes, pos: int) -> tuple[int, int]:
    encoded, pos = read_uvarint(data, pos)
    value = encoded // 2 if encoded % 2 == 0 else -(encoded + 1) // 2
    return value, pos


def _write_str(buf: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    write_uvarint(buf, len(raw))
    buf.extend(raw)


def _read_str(data: bytes, pos: int) -> tuple[str, int]:
    length, pos = read_uvarint(data, pos)
    end = pos + length
    if end > len(data):
        raise DeserializationError("truncated string")
    return data[pos:end].decode("utf-8"), end


# ---------------------------------------------------------------------------
# Value encoding
# ---------------------------------------------------------------------------

def encode_value(buf: bytearray, value: Any,
                 ref_fn: Callable[[Any], Oid]) -> None:
    """Encode one value into ``buf``.

    ``ref_fn`` is called for every storable node met inside the value; it
    must return the node's OID (allocating one if necessary) — the store
    supplies it during graph flattening.
    """
    if value is None:
        buf.extend(_TAG_NONE)
    elif value is True:
        buf.extend(_TAG_TRUE)
    elif value is False:
        buf.extend(_TAG_FALSE)
    elif type(value) is int:
        buf.extend(_TAG_INT)
        write_svarint(buf, value)
    elif type(value) is float:
        buf.extend(_TAG_FLOAT)
        buf.extend(struct.pack("<d", value))
    elif type(value) is complex:
        buf.extend(_TAG_COMPLEX)
        buf.extend(struct.pack("<dd", value.real, value.imag))
    elif type(value) is str:
        buf.extend(_TAG_STR)
        _write_str(buf, value)
    elif type(value) is bytes:
        buf.extend(_TAG_BYTES)
        write_uvarint(buf, len(value))
        buf.extend(value)
    elif type(value) is tuple:
        buf.extend(_TAG_TUPLE)
        write_uvarint(buf, len(value))
        for item in value:
            encode_value(buf, item, ref_fn)
    elif type(value) is frozenset:
        buf.extend(_TAG_FROZENSET)
        write_uvarint(buf, len(value))
        # Sort by encoding for a canonical order, so equal frozensets
        # produce identical bytes.
        encoded_items = []
        for item in value:
            item_buf = bytearray()
            encode_value(item_buf, item, ref_fn)
            encoded_items.append(bytes(item_buf))
        for raw in sorted(encoded_items):
            buf.extend(raw)
    else:
        oid = ref_fn(value)
        buf.extend(_TAG_REF)
        write_uvarint(buf, oid)


def decode_value(data: bytes, pos: int) -> tuple[Any, int]:
    """Decode one value; storable-node references come back as :class:`Ref`."""
    if pos >= len(data):
        raise DeserializationError("truncated value")
    tag = data[pos:pos + 1]
    pos += 1
    if tag == _TAG_NONE:
        return None, pos
    if tag == _TAG_TRUE:
        return True, pos
    if tag == _TAG_FALSE:
        return False, pos
    if tag == _TAG_INT:
        return read_svarint(data, pos)
    if tag == _TAG_FLOAT:
        if pos + 8 > len(data):
            raise DeserializationError("truncated float")
        return struct.unpack_from("<d", data, pos)[0], pos + 8
    if tag == _TAG_COMPLEX:
        if pos + 16 > len(data):
            raise DeserializationError("truncated complex")
        real, imag = struct.unpack_from("<dd", data, pos)
        return complex(real, imag), pos + 16
    if tag == _TAG_STR:
        return _read_str(data, pos)
    if tag == _TAG_BYTES:
        length, pos = read_uvarint(data, pos)
        end = pos + length
        if end > len(data):
            raise DeserializationError("truncated bytes")
        return data[pos:end], end
    if tag == _TAG_TUPLE:
        count, pos = read_uvarint(data, pos)
        items = []
        for _ in range(count):
            item, pos = decode_value(data, pos)
            items.append(item)
        return tuple(items), pos
    if tag == _TAG_FROZENSET:
        count, pos = read_uvarint(data, pos)
        items = []
        for _ in range(count):
            item, pos = decode_value(data, pos)
            items.append(item)
        return frozenset(items), pos
    if tag == _TAG_REF:
        oid, pos = read_uvarint(data, pos)
        return Ref(Oid(oid)), pos
    raise DeserializationError(f"unknown value tag {tag!r} at offset {pos - 1}")


# ---------------------------------------------------------------------------
# Records
# ---------------------------------------------------------------------------

@dataclass
class Record:
    """One storable node, flattened.

    ``payload`` is kind-specific *decoded structure*:

    * instance — ``dict[str, value]`` of persistent fields,
    * list/set — ``list[value]``,
    * dict — ``list[tuple[key, value]]``,
    * bytearray — ``bytes``,
    * weakref — a single value (``Ref`` or ``None``).

    Values may contain :class:`Ref` placeholders after decoding.
    """

    oid: Oid
    kind: int
    class_name: str
    fingerprint: str
    payload: Any

    @property
    def kind_name(self) -> str:
        return _KIND_NAMES.get(self.kind, f"kind#{self.kind}")

    # -- binary format --------------------------------------------------

    def to_bytes(self) -> bytes:
        buf = bytearray()
        write_uvarint(buf, self.oid)
        buf.append(self.kind)
        _write_str(buf, self.class_name)
        _write_str(buf, self.fingerprint)
        body = bytearray()
        self._encode_payload(body)
        write_uvarint(buf, len(body))
        buf.extend(body)
        return bytes(buf)

    def _encode_payload(self, buf: bytearray) -> None:
        def no_refs(value: Any) -> Oid:
            if isinstance(value, Ref):
                return value.oid
            raise SerializationError(
                f"record payload for oid {self.oid} contains live object "
                f"{value!r}; flatten through Serializer.encode_object first"
            )

        if self.kind == KIND_INSTANCE:
            write_uvarint(buf, len(self.payload))
            for name, value in self.payload.items():
                _write_str(buf, name)
                encode_value(buf, value, no_refs)
        elif self.kind in (KIND_LIST, KIND_SET):
            write_uvarint(buf, len(self.payload))
            for value in self.payload:
                encode_value(buf, value, no_refs)
        elif self.kind == KIND_DICT:
            write_uvarint(buf, len(self.payload))
            for key, value in self.payload:
                encode_value(buf, key, no_refs)
                encode_value(buf, value, no_refs)
        elif self.kind == KIND_BYTEARRAY:
            write_uvarint(buf, len(self.payload))
            buf.extend(self.payload)
        elif self.kind == KIND_WEAKREF:
            encode_value(buf, self.payload, no_refs)
        else:
            raise SerializationError(f"unknown record kind {self.kind}")

    @classmethod
    def from_bytes(cls, data: bytes) -> "Record":
        if data[:1] == b"\x00":
            # Codec-framed bytes (raw records never start with 0x00 —
            # the leading uvarint encodes an OID >= 1); decode stays
            # transparent whatever codec wrote the store.
            data = unwrap_record(data)
        oid, pos = read_uvarint(data, 0)
        if pos >= len(data):
            raise DeserializationError("truncated record header")
        kind = data[pos]
        pos += 1
        class_name, pos = _read_str(data, pos)
        fingerprint, pos = _read_str(data, pos)
        body_len, pos = read_uvarint(data, pos)
        end = pos + body_len
        if end > len(data):
            raise DeserializationError("truncated record body")
        body = data[pos:end]
        payload = cls._decode_payload(kind, body)
        return cls(Oid(oid), kind, class_name, fingerprint, payload)

    @staticmethod
    def _decode_payload(kind: int, body: bytes) -> Any:
        pos = 0
        if kind == KIND_INSTANCE:
            count, pos = read_uvarint(body, pos)
            fields: dict[str, Any] = {}
            for _ in range(count):
                name, pos = _read_str(body, pos)
                value, pos = decode_value(body, pos)
                fields[name] = value
            return fields
        if kind in (KIND_LIST, KIND_SET):
            count, pos = read_uvarint(body, pos)
            items = []
            for _ in range(count):
                value, pos = decode_value(body, pos)
                items.append(value)
            return items
        if kind == KIND_DICT:
            count, pos = read_uvarint(body, pos)
            pairs = []
            for _ in range(count):
                key, pos = decode_value(body, pos)
                value, pos = decode_value(body, pos)
                pairs.append((key, value))
            return pairs
        if kind == KIND_BYTEARRAY:
            length, pos = read_uvarint(body, pos)
            return body[pos:pos + length]
        if kind == KIND_WEAKREF:
            value, pos = decode_value(body, pos)
            return value
        raise DeserializationError(f"unknown record kind {kind}")


# ---------------------------------------------------------------------------
# Record codec: optional per-record compression framing
# ---------------------------------------------------------------------------
#
# Legal record bytes start with ``uvarint(oid)`` and OID 0 is the null OID,
# never allocated — so an unframed record can never begin with a 0x00 byte.
# The codec claims that byte as a frame marker:
#
#     0x00 | codec id (1 byte) | uvarint(raw_len) | compressed body
#
# The codec id versions the frame (new compressors get new ids rather than
# reinterpreting old bytes), and ``raw_len`` lets decoders validate the
# expansion.  Framing is strictly optional and decode is always
# transparent: :func:`unwrap_record` passes unframed bytes through
# untouched, so a legacy uncompressed store opens under a
# compression-enabled URL — and a compressed store under a plain URL —
# without migration.  The codec choice only affects *new* writes.

#: First byte of a framed record; never the first byte of a raw record.
FRAME_MARKER = 0x00

CODEC_ZLIB = 1
CODEC_LZMA = 2

_CODEC_NAMES = {CODEC_ZLIB: "zlib", CODEC_LZMA: "lzma"}

#: Records shorter than this are never framed: the frame plus compressor
#: header overhead exceeds any plausible saving.
_MIN_COMPRESS_LEN = 64


class RecordCodec:
    """One per-record compression choice: a codec id and its level.

    :meth:`wrap` frames raw record bytes *only when that makes them
    smaller* — incompressible records are stored unframed, so readers
    pay nothing for them and the worst case costs zero bytes.
    """

    __slots__ = ("codec_id", "level")

    def __init__(self, codec_id: int, level: int):
        if codec_id not in _CODEC_NAMES:
            raise ValueError(f"unknown record codec id {codec_id}")
        if codec_id == CODEC_LZMA and lzma is None:
            raise ValueError(
                "lzma compression is unavailable in this Python build"
            )
        if not 0 <= level <= 9:
            raise ValueError(
                f"{_CODEC_NAMES[codec_id]} level must be in 0..9, "
                f"got {level}"
            )
        self.codec_id = codec_id
        self.level = level

    @property
    def name(self) -> str:
        return f"{_CODEC_NAMES[self.codec_id]}:{self.level}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RecordCodec({self.name})"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, RecordCodec)
                and other.codec_id == self.codec_id
                and other.level == self.level)

    def __hash__(self) -> int:
        return hash((self.codec_id, self.level))

    def wrap(self, raw: bytes) -> bytes:
        """Frame ``raw`` if compression shrinks it, else return it as is.

        ``zlib.compress``/``lzma.compress`` release the GIL while they
        run, which is what lets encode workers overlap on bytes.
        """
        if len(raw) < _MIN_COMPRESS_LEN:
            return raw
        if self.codec_id == CODEC_ZLIB:
            body = zlib.compress(raw, self.level)
        else:
            body = lzma.compress(raw, preset=self.level)
        frame = bytearray((FRAME_MARKER, self.codec_id))
        write_uvarint(frame, len(raw))
        frame.extend(body)
        if len(frame) >= len(raw):
            return raw
        return bytes(frame)


def parse_codec(spec: "str | RecordCodec | None") -> Optional[RecordCodec]:
    """A :class:`RecordCodec` from a ``?compress=`` specification.

    Accepts ``"zlib"``/``"lzma"`` (default level 6), ``"zlib:LEVEL"`` /
    ``"lzma:LEVEL"`` with a level in 0..9, ``"none"``/``""``/``None``
    (no compression), or an already-built codec (returned unchanged).
    Raises ``ValueError`` for anything else, naming the known codecs.
    """
    if spec is None or isinstance(spec, RecordCodec):
        return spec
    text = spec.strip()
    if text in ("", "none"):
        return None
    name, sep, level_text = text.partition(":")
    ids = {codec_name: codec_id
           for codec_id, codec_name in _CODEC_NAMES.items()}
    if name not in ids:
        raise ValueError(
            f"unknown compression codec {name!r} in {spec!r}; known codecs: "
            f"{', '.join(sorted(ids))}, none"
        )
    if not sep:
        return RecordCodec(ids[name], 6)
    try:
        level = int(level_text)
    except ValueError:
        raise ValueError(
            f"compression level must be an integer, got {level_text!r} "
            f"in {spec!r}"
        ) from None
    return RecordCodec(ids[name], level)


def is_framed(data: bytes) -> bool:
    """Whether stored bytes carry a codec frame."""
    return bool(data) and data[0] == FRAME_MARKER


def unwrap_record(data: bytes) -> bytes:
    """The raw record bytes behind ``data``: framed bytes are
    decompressed and validated, unframed bytes pass through unchanged.

    Every read path funnels through this (or
    :meth:`Record.from_bytes`), which is what makes the codec choice a
    write-side-only concern.
    """
    if not data or data[0] != FRAME_MARKER:
        return data
    if len(data) < 3:
        raise DeserializationError("truncated codec frame")
    codec_id = data[1]
    raw_len, pos = read_uvarint(data, 2)
    body = data[pos:]
    try:
        if codec_id == CODEC_ZLIB:
            raw = zlib.decompress(body)
        elif codec_id == CODEC_LZMA:
            if lzma is None:
                raise DeserializationError(
                    "record is lzma-compressed but lzma is unavailable in "
                    "this Python build"
                )
            raw = lzma.decompress(body)
        else:
            raise DeserializationError(
                f"unknown record codec id {codec_id}"
            )
    except DeserializationError:
        raise
    except Exception as exc:
        raise DeserializationError(
            f"corrupt {_CODEC_NAMES.get(codec_id, codec_id)} record "
            f"frame: {exc}"
        ) from exc
    if len(raw) != raw_len:
        raise DeserializationError(
            f"codec frame declares {raw_len} raw bytes but decompressed "
            f"to {len(raw)}"
        )
    return raw


# ---------------------------------------------------------------------------
# Object <-> Record
# ---------------------------------------------------------------------------

def is_inline(value: Any) -> bool:
    """True when a value is inlined rather than given its own record."""
    return type(value) in (type(None), bool, int, float, complex, str, bytes,
                           tuple, frozenset)


def record_refs(record: "Record", include_weak: bool = True) -> list[Oid]:
    """All OIDs referenced by a record (optionally excluding weak edges)."""
    if record.kind == KIND_WEAKREF:
        if include_weak and isinstance(record.payload, Ref):
            return [record.payload.oid]
        return []
    refs: list[Oid] = []

    def visit(value: Any) -> None:
        if isinstance(value, Ref):
            refs.append(value.oid)
        elif type(value) is tuple or type(value) is frozenset:
            for item in value:
                visit(item)

    payload = record.payload
    if isinstance(payload, dict):
        for value in payload.values():
            visit(value)
    elif isinstance(payload, list):
        # List/set records hold values; dict records hold (key, value)
        # tuples — visit() recurses into tuples either way.
        for item in payload:
            visit(item)
    return refs


# ---------------------------------------------------------------------------
# Dirty tracking: shallow state snapshots
# ---------------------------------------------------------------------------
#
# Incremental stabilisation needs to know whether a live object has changed
# since it was last written, *without* re-encoding it.  A snapshot is a
# shallow capture of the object's immediate persistent state: container
# elements and instance-field values held by reference, nothing deep-copied.
# Two snapshots are compared with an identity-aware equality: storable
# nodes match only if they are the *same* object (their own mutations are
# caught by their own records), inline immutables match by type and exact
# value.  The comparison errs on the side of "changed" — a false positive
# merely costs one re-encode, which the byte-signature filter then drops.

def _values_equal(a: Any, b: Any) -> bool:
    """Identity-aware equality over snapshot values (conservative)."""
    if a is b:
        return True  # covers None, bools, interned values and storables
    ta = type(a)
    if ta is not type(b):
        return False  # 1 vs True vs 1.0 encode differently
    if ta in (int, str, bytes, complex):
        return a == b
    if ta is float:
        # 0.0 == -0.0 but they encode differently; NaN handled by `a is b`
        # above or conservatively re-encoded.
        return a == b and math.copysign(1.0, a) == math.copysign(1.0, b)
    if ta is tuple:
        return len(a) == len(b) and all(map(_values_equal, a, b))
    # frozensets that are not the same object, and distinct storable
    # nodes: treat as changed.
    return False


def snapshots_equal(old: Any, new: Any) -> bool:
    """Whether two :meth:`Serializer.snapshot` captures denote the same
    stored state (``False`` is always safe)."""
    if old is None or new is None or old[0] != new[0]:
        return False
    kind = old[0]
    if kind == "bytearray":
        return old[1] == new[1]
    if kind == "instance":
        if old[1] != new[1]:
            return False  # schema fingerprint moved (evolution)
        a, b = old[2], new[2]
        if a.keys() != b.keys():
            return False
        return all(_values_equal(a[name], b[name]) for name in a)
    a, b = old[1], new[1]
    if len(a) != len(b):
        return False
    if kind == "dict":
        return all(_values_equal(ka, kb) and _values_equal(va, vb)
                   for (ka, va), (kb, vb) in zip(a, b))
    return all(map(_values_equal, a, b))


class Serializer:
    """Flattens storable nodes to :class:`Record` and rebuilds them.

    The serializer is stateless apart from its registry; graph traversal,
    OID assignment and the identity map belong to the
    :class:`~repro.store.objectstore.ObjectStore`.
    """

    def __init__(self, registry: ClassRegistry):
        self._registry = registry

    # -- encoding -------------------------------------------------------

    def encode_object(self, oid: Oid, obj: Any,
                      ref_fn: Callable[[Any], Oid]) -> Record:
        """Flatten one storable node into a :class:`Record`.

        ``ref_fn`` maps every referenced storable node to its OID.
        """
        from repro.store.weakrefs import PersistentWeakRef

        def as_ref(value: Any) -> Any:
            buf = bytearray()
            encode_value(buf, value, ref_fn)
            decoded, _ = decode_value(bytes(buf), 0)
            return decoded

        if isinstance(obj, PersistentWeakRef):
            target = obj.get()
            payload = Ref(ref_fn(target)) if target is not None else None
            return Record(oid, KIND_WEAKREF, "", "", payload)
        if type(obj) is list:
            return Record(oid, KIND_LIST, "", "", [as_ref(v) for v in obj])
        if type(obj) is set:
            return Record(oid, KIND_SET, "", "", [as_ref(v) for v in obj])
        if type(obj) is dict:
            pairs = [(as_ref(k), as_ref(v)) for k, v in obj.items()]
            return Record(oid, KIND_DICT, "", "", pairs)
        if type(obj) is bytearray:
            return Record(oid, KIND_BYTEARRAY, "", "", bytes(obj))
        entry = self._registry.entry_for_class(type(obj))
        fields = self._instance_fields(obj, entry)
        payload = {name: as_ref(value) for name, value in fields.items()}
        return Record(oid, KIND_INSTANCE, entry.name, entry.fingerprint, payload)

    @staticmethod
    def _instance_fields(obj: Any, entry: RegisteredClass) -> dict[str, Any]:
        if entry.fields:
            fields = {}
            for name in entry.fields:
                if hasattr(obj, name):
                    fields[name] = getattr(obj, name)
            return fields
        instance_dict = getattr(obj, "__dict__", None)
        if instance_dict is None:
            raise SerializationError(
                f"instance of {entry.name} has neither declared fields nor "
                f"a __dict__; nothing to store"
            )
        return {name: instance_dict[name] for name in sorted(instance_dict)
                if not name.startswith("_")}

    def snapshot(self, obj: Any) -> Any:
        """A shallow dirty-tracking capture of ``obj``'s persistent state.

        Returns ``None`` for :class:`~repro.store.weakrefs.PersistentWeakRef`
        (weak records are cheap and context-dependent, so the store always
        re-encodes them).  Compare captures with :func:`snapshots_equal`.
        """
        from repro.store.weakrefs import PersistentWeakRef

        if isinstance(obj, PersistentWeakRef):
            return None
        if type(obj) is list:
            return ("list", list(obj))
        if type(obj) is set:
            return ("set", list(obj))
        if type(obj) is dict:
            return ("dict", list(obj.items()))
        if type(obj) is bytearray:
            return ("bytearray", bytes(obj))
        entry = self._registry.entry_for_class(type(obj))
        return ("instance", entry.fingerprint,
                self._instance_fields(obj, entry))

    def references_of(self, obj: Any) -> list[Any]:
        """Every storable node directly referenced by ``obj`` (for traversal).

        Weak-reference targets are deliberately *excluded* — they do not
        keep their target alive (paper Figure 7).
        """
        from repro.store.weakrefs import PersistentWeakRef

        refs: list[Any] = []

        def visit(value: Any) -> None:
            if type(value) in (tuple, frozenset):
                for item in value:
                    visit(item)
            elif not is_inline(value):
                refs.append(value)

        if isinstance(obj, PersistentWeakRef):
            return []
        if type(obj) is list or type(obj) is set:
            for value in obj:
                visit(value)
        elif type(obj) is dict:
            for key, value in obj.items():
                visit(key)
                visit(value)
        elif type(obj) is bytearray:
            pass
        else:
            entry = self._registry.entry_for_class(type(obj))
            for value in self._instance_fields(obj, entry).values():
                visit(value)
        return refs

    # -- decoding -------------------------------------------------------

    def make_shell(self, record: Record) -> Any:
        """Phase one of materialisation: an empty object of the right type."""
        from repro.store.weakrefs import PersistentWeakRef

        if record.kind == KIND_LIST:
            return []
        if record.kind == KIND_SET:
            return set()
        if record.kind == KIND_DICT:
            return {}
        if record.kind == KIND_BYTEARRAY:
            return bytearray(record.payload)
        if record.kind == KIND_WEAKREF:
            return PersistentWeakRef(None)
        entry = self._registry.check_fingerprint(record.class_name,
                                                 record.fingerprint)
        return object.__new__(entry.cls)

    def fill_shell(self, shell: Any, record: Record,
                   resolve: Callable[[Oid], Any]) -> None:
        """Phase two: populate ``shell``, resolving :class:`Ref` via ``resolve``."""
        from repro.store.weakrefs import PersistentWeakRef

        def hydrate(value: Any) -> Any:
            if isinstance(value, Ref):
                return resolve(value.oid)
            if type(value) is tuple:
                return tuple(hydrate(item) for item in value)
            if type(value) is frozenset:
                return frozenset(hydrate(item) for item in value)
            return value

        if record.kind == KIND_LIST:
            shell.extend(hydrate(v) for v in record.payload)
        elif record.kind == KIND_SET:
            shell.update(hydrate(v) for v in record.payload)
        elif record.kind == KIND_DICT:
            for key, value in record.payload:
                shell[hydrate(key)] = hydrate(value)
        elif record.kind == KIND_BYTEARRAY:
            pass  # filled at shell creation
        elif record.kind == KIND_WEAKREF:
            assert isinstance(shell, PersistentWeakRef)
            shell.set(hydrate(record.payload))
        elif record.kind == KIND_INSTANCE:
            entry = self._registry.check_fingerprint(record.class_name,
                                                     record.fingerprint)
            fields = {name: hydrate(value)
                      for name, value in record.payload.items()}
            if record.fingerprint != entry.fingerprint:
                converter = entry.converters[record.fingerprint]
                fields = converter(fields)
            for name, value in fields.items():
                setattr(shell, name, value)
        else:
            raise DeserializationError(f"unknown record kind {record.kind}")
