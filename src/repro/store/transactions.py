"""Transactions over the object store.

The paper's Section 7 argues that, "in a transactional system", evolution
can run "in a separate transaction while the system is live".  The store
supports that with coarse-grained transactions whose commit is a
stabilisation and whose abort reverts the store to the last stabilised
state:

* ``commit`` — stabilise: everything reachable from the roots becomes
  durable atomically (the store submits one
  :class:`~repro.store.engine.base.WriteBatch` to its engine, and the
  engine's :meth:`~repro.store.engine.base.StorageEngine.apply` is
  all-or-nothing — the transaction layer never touches WAL internals).
* ``abort`` — root bindings made inside the transaction are undone and the
  identity map is flushed, so subsequent fetches observe the last
  stabilised state.  Live references the application still holds to
  aborted objects are *stale* by definition; re-fetch through a root to
  get the durable state.

Usage::

    with store.transaction():
        person = store.get_root("people")[0]
        person.name = "renamed"
    # committed (stabilised) here; raising inside the block aborts
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import NoTransactionError, TransactionError

if TYPE_CHECKING:  # pragma: no cover
    from repro.store.objectstore import ObjectStore


class Transaction:
    """A single commit/abort scope; not re-entrant, not nestable."""

    def __init__(self, store: "ObjectStore"):
        self._store = store
        self._roots_snapshot: dict[str, int] | None = None
        self._finished = False

    @property
    def is_active(self) -> bool:
        return self._roots_snapshot is not None and not self._finished

    def begin(self) -> "Transaction":
        if self.is_active:
            raise TransactionError("transaction already begun")
        if self._finished:
            raise TransactionError("transaction objects are single-use")
        # Registers this transaction as the store's active one (raises if
        # another is already open), then snapshots the root table so abort
        # can restore it.
        self._store._begin_transaction(self)
        self._roots_snapshot = self._store.root_bindings()
        return self

    def commit(self, *, durable: bool = True) -> int:
        """Stabilise and finish; returns the number of records written.

        A commit is a durability point: over an engine with an ``async``
        commit pipeline (where ``stabilize`` returns once the batch is
        submitted), the default ``durable=True`` flushes the pipeline so
        the transaction's effects are on stable storage when ``commit``
        returns.  Pass ``durable=False`` to let the pipeline absorb the
        commit in the background — the batch is visible immediately and
        ``store.flush()`` is the explicit barrier.
        """
        self._require_active()
        written = self._store.stabilize()
        if durable and self._store.engine.asynchronous:
            self._store.flush()
        self._finish()
        return written

    def abort(self) -> None:
        """Revert root bindings and flush live objects."""
        self._require_active()
        assert self._roots_snapshot is not None
        self._store.restore_root_bindings(self._roots_snapshot)
        self._store.evict_all()
        self._finish()

    def _require_active(self) -> None:
        if not self.is_active:
            raise NoTransactionError("no active transaction")

    def _finish(self) -> None:
        self._finished = True
        self._store._end_transaction(self)

    def __enter__(self) -> "Transaction":
        return self.begin()

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        if not self.is_active:
            return False  # already explicitly committed or aborted
        if exc_type is None:
            self.commit()
        else:
            self.abort()
        return False
