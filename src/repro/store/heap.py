"""Slotted-page heap file.

The stable home of the store: a single file of fixed-size pages, each with
a classic slotted-page layout (header, slot directory growing from the
front, record bytes growing from the back).  Records larger than a page go
into a run of contiguous *overflow* pages.  The heap knows nothing about
objects — it stores opaque byte records addressed by :class:`RecordId` and
is driven by :mod:`repro.store.objectstore` through the write-ahead log.

Layout of a normal page::

    0   u16  slot_count
    2   u16  free_space_offset  (from page start; records end here, grow down)
    4   u8   page_kind          (1 = slotted, 2 = overflow head, 3 = overflow cont.)
    5   ...  slot directory: slot i at byte 8 + 4*i  ->  u16 offset, u16 length
    ...      record bytes packed at the page tail

A slot with length ``0xFFFF`` is a tombstone (deleted record); its space is
reclaimed by :meth:`HeapFile.compact_page`.
"""

from __future__ import annotations

import os
import struct
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import CorruptHeapError

PAGE_SIZE = 4096

#: Default bound on cached page images (4096 pages = 16 MiB).  A long
#: read session touches every page of a large store; before the cap the
#: page cache simply kept all of them forever.  Dirty pages are never
#: evicted — they are the write buffer — so the cache can exceed the cap
#: transiently between flushes.
DEFAULT_CACHE_PAGES = 4096
_HEADER_SIZE = 8
_SLOT_SIZE = 4
_TOMBSTONE = 0xFFFF

PAGE_SLOTTED = 1
PAGE_OVERFLOW_HEAD = 2
PAGE_OVERFLOW_CONT = 3

#: Usable bytes in a slotted page once the header and one slot are paid for.
MAX_INLINE_RECORD = PAGE_SIZE - _HEADER_SIZE - _SLOT_SIZE

# Overflow pages reuse the generic header slots:
#   0-1  u16 chunk_len         2-3  unused        4  u8 kind
#   8-11 u32 total length (head page only)
#   12-15 u32 next page number (0 = end of chain)
#   16.. payload
_OVERFLOW_DATA_START = 16
_OVERFLOW_CAPACITY = PAGE_SIZE - _OVERFLOW_DATA_START


@dataclass(frozen=True)
class RecordId:
    """Address of a record: page number plus slot (slot 0 for overflow runs)."""

    page_no: int
    slot: int

    def __repr__(self) -> str:
        return f"RecordId({self.page_no}, {self.slot})"


class _Page:
    """An in-memory image of one slotted page."""

    __slots__ = ("data",)

    def __init__(self, data: bytearray | None = None):
        if data is None:
            data = bytearray(PAGE_SIZE)
            struct.pack_into("<HHB", data, 0, 0, PAGE_SIZE, PAGE_SLOTTED)
        self.data = data

    # -- header ---------------------------------------------------------

    @property
    def slot_count(self) -> int:
        return struct.unpack_from("<H", self.data, 0)[0]

    @slot_count.setter
    def slot_count(self, value: int) -> None:
        struct.pack_into("<H", self.data, 0, value)

    @property
    def free_offset(self) -> int:
        return struct.unpack_from("<H", self.data, 2)[0]

    @free_offset.setter
    def free_offset(self, value: int) -> None:
        struct.pack_into("<H", self.data, 2, value)

    @property
    def kind(self) -> int:
        return self.data[4]

    # -- slots ------------------------------------------------------------

    def _slot_at(self, slot: int) -> tuple[int, int]:
        base = _HEADER_SIZE + _SLOT_SIZE * slot
        return struct.unpack_from("<HH", self.data, base)

    def _set_slot(self, slot: int, offset: int, length: int) -> None:
        base = _HEADER_SIZE + _SLOT_SIZE * slot
        struct.pack_into("<HH", self.data, base, offset, length)

    def free_space(self) -> int:
        """Bytes available for one more record plus its slot entry."""
        directory_end = _HEADER_SIZE + _SLOT_SIZE * self.slot_count
        return self.free_offset - directory_end - _SLOT_SIZE

    def insert(self, record: bytes) -> int:
        """Insert ``record``; returns the slot number.

        Reuses a tombstoned slot entry when one exists (the record bytes
        still go to the current free offset; page compaction reclaims the
        dead bytes).
        """
        if len(record) > self.free_space():
            raise CorruptHeapError(
                f"insert of {len(record)} bytes into page with "
                f"{self.free_space()} free"
            )
        offset = self.free_offset - len(record)
        self.data[offset:offset + len(record)] = record
        self.free_offset = offset
        for slot in range(self.slot_count):
            __, length = self._slot_at(slot)
            if length == _TOMBSTONE:
                self._set_slot(slot, offset, len(record))
                return slot
        slot = self.slot_count
        self._set_slot(slot, offset, len(record))
        self.slot_count = slot + 1
        return slot

    def read(self, slot: int) -> bytes:
        if slot >= self.slot_count:
            raise CorruptHeapError(f"slot {slot} out of range")
        offset, length = self._slot_at(slot)
        if length == _TOMBSTONE:
            raise CorruptHeapError(f"slot {slot} is deleted")
        return bytes(self.data[offset:offset + length])

    def delete(self, slot: int) -> None:
        if slot >= self.slot_count:
            raise CorruptHeapError(f"slot {slot} out of range")
        offset, __ = self._slot_at(slot)
        self._set_slot(slot, offset, _TOMBSTONE)

    def live_records(self) -> list[tuple[int, bytes]]:
        out = []
        for slot in range(self.slot_count):
            offset, length = self._slot_at(slot)
            if length != _TOMBSTONE:
                out.append((slot, bytes(self.data[offset:offset + length])))
        return out

    def compact(self) -> None:
        """Rewrite live records contiguously at the tail, dropping dead bytes."""
        live = [(slot, self._slot_at(slot)) for slot in range(self.slot_count)]
        records = {slot: bytes(self.data[off:off + ln])
                   for slot, (off, ln) in live if ln != _TOMBSTONE}
        # Trim trailing tombstones off the directory entirely.
        count = self.slot_count
        while count and self._slot_at(count - 1)[1] == _TOMBSTONE \
                and (count - 1) not in records:
            count -= 1
        self.slot_count = count
        offset = PAGE_SIZE
        for slot in range(count):
            if slot in records:
                raw = records[slot]
                offset -= len(raw)
                self.data[offset:offset + len(raw)] = raw
                self._set_slot(slot, offset, len(raw))
            else:
                self._set_slot(slot, 0, _TOMBSTONE)
        self.free_offset = offset


class HeapFile:
    """A file of pages with insert/read/delete of variable-length records."""

    def __init__(self, path: str, *,
                 cache_pages: int = DEFAULT_CACHE_PAGES):
        if cache_pages < 1:
            raise ValueError(f"cache_pages must be >= 1, got {cache_pages}")
        self._path = path
        exists = os.path.exists(path)
        self._file = open(path, "r+b" if exists else "w+b")
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size % PAGE_SIZE:
            raise CorruptHeapError(
                f"heap file {path} size {size} is not a multiple of the "
                f"page size {PAGE_SIZE}"
            )
        self._page_count = size // PAGE_SIZE
        self._cache_pages = cache_pages
        #: LRU of in-memory page images; clean pages past the cap are
        #: evicted and re-read on demand.
        self._cache: OrderedDict[int, _Page] = OrderedDict()
        self._dirty: set[int] = set()
        # Native cache telemetry (pull gauges in obs.bind_engine_metrics).
        self.page_hits = 0
        self.page_misses = 0
        self.page_evictions = 0
        # Pages that may still have room; validated lazily on insert.
        self._spacious: set[int] = set(range(self._page_count))
        # One mutex over cache, dirty set and the shared file handle:
        # several store reader threads fault pages concurrently (and race
        # the single writer's inserts and flushes); page operations are
        # short and memory-bound, so a plain mutex beats torn seek/read
        # interleavings without measurable cost.  Re-entrant because
        # compaction helpers call each other through public entry points.
        self._lock = threading.RLock()

    # -- page plumbing ----------------------------------------------------

    @property
    def page_count(self) -> int:
        return self._page_count

    @property
    def path(self) -> str:
        return self._path

    def _load_page(self, page_no: int) -> _Page:
        page = self._cache.get(page_no)
        if page is not None:
            self.page_hits += 1
            self._cache.move_to_end(page_no)
            return page
        if page_no >= self._page_count:
            raise CorruptHeapError(f"page {page_no} beyond end of heap")
        self.page_misses += 1
        self._file.seek(page_no * PAGE_SIZE)
        raw = self._file.read(PAGE_SIZE)
        if len(raw) != PAGE_SIZE:
            raise CorruptHeapError(f"short read on page {page_no}")
        page = _Page(bytearray(raw))
        self._cache[page_no] = page
        self._evict_clean()
        return page

    def _evict_clean(self) -> None:
        """Drop least-recently-used *clean* page images past the cap.
        Dirty pages are the write buffer and must stay until flushed."""
        if len(self._cache) <= self._cache_pages:
            return
        for page_no in list(self._cache):
            if len(self._cache) <= self._cache_pages:
                return
            if page_no not in self._dirty:
                del self._cache[page_no]
                self.page_evictions += 1

    def _new_page(self, kind: int = PAGE_SLOTTED) -> tuple[int, _Page]:
        page = _Page()
        page.data[4] = kind
        page_no = self._page_count
        self._page_count += 1
        self._cache[page_no] = page
        self._dirty.add(page_no)
        self._evict_clean()
        return page_no, page

    def _mark_dirty(self, page_no: int) -> None:
        self._dirty.add(page_no)

    # -- record operations ------------------------------------------------

    def insert(self, record: bytes) -> RecordId:
        """Store ``record`` and return its address."""
        with self._lock:
            return self._insert_locked(record)

    def _insert_locked(self, record: bytes) -> RecordId:
        if len(record) > MAX_INLINE_RECORD:
            return self._insert_overflow(record)
        exhausted = []
        chosen = None
        for page_no in sorted(self._spacious):
            page = self._load_page(page_no)
            if page.kind != PAGE_SLOTTED:
                exhausted.append(page_no)
                continue
            if len(record) <= page.free_space():
                chosen = page_no
                break
            if page.free_space() < 64:
                exhausted.append(page_no)
        for page_no in exhausted:
            self._spacious.discard(page_no)
        if chosen is None:
            chosen, page = self._new_page()
            self._spacious.add(chosen)
        else:
            page = self._load_page(chosen)
        slot = page.insert(record)
        self._mark_dirty(chosen)
        return RecordId(chosen, slot)

    def _insert_overflow(self, record: bytes) -> RecordId:
        chunks = [record[i:i + _OVERFLOW_CAPACITY]
                  for i in range(0, len(record), _OVERFLOW_CAPACITY)]
        page_nos = [self._new_page(PAGE_OVERFLOW_HEAD if i == 0
                                   else PAGE_OVERFLOW_CONT)[0]
                    for i in range(len(chunks))]
        for i, (page_no, chunk) in enumerate(zip(page_nos, chunks)):
            page = self._cache[page_no]
            next_page = page_nos[i + 1] if i + 1 < len(page_nos) else 0
            struct.pack_into("<H", page.data, 0, len(chunk))
            struct.pack_into("<I", page.data, 8, len(record) if i == 0 else 0)
            struct.pack_into("<I", page.data, 12, next_page)
            page.data[_OVERFLOW_DATA_START:
                      _OVERFLOW_DATA_START + len(chunk)] = chunk
            self._mark_dirty(page_no)
        return RecordId(page_nos[0], 0)

    def read(self, rid: RecordId) -> bytes:
        with self._lock:
            page = self._load_page(rid.page_no)
            if page.kind == PAGE_SLOTTED:
                return page.read(rid.slot)
            if page.kind == PAGE_OVERFLOW_HEAD:
                return self._read_overflow(rid.page_no)
            raise CorruptHeapError(
                f"record id {rid} addresses an overflow continuation page"
            )

    def _read_overflow(self, head_page_no: int) -> bytes:
        page = self._load_page(head_page_no)
        if page.kind != PAGE_OVERFLOW_HEAD:
            raise CorruptHeapError(f"page {head_page_no} is not an overflow head")
        total = struct.unpack_from("<I", page.data, 8)[0]
        chunk_len = struct.unpack_from("<H", page.data, 0)[0]
        next_page = struct.unpack_from("<I", page.data, 12)[0]
        out = bytearray(page.data[_OVERFLOW_DATA_START:
                                  _OVERFLOW_DATA_START + chunk_len])
        while len(out) < total:
            if next_page == 0:
                raise CorruptHeapError("overflow chain truncated")
            cont = self._load_page(next_page)
            if cont.kind != PAGE_OVERFLOW_CONT:
                raise CorruptHeapError(
                    f"page {next_page} is not an overflow continuation"
                )
            chunk_len = struct.unpack_from("<H", cont.data, 0)[0]
            next_page = struct.unpack_from("<I", cont.data, 12)[0]
            out.extend(cont.data[_OVERFLOW_DATA_START:
                                 _OVERFLOW_DATA_START + chunk_len])
        return bytes(out[:total])

    def delete(self, rid: RecordId) -> None:
        with self._lock:
            page = self._load_page(rid.page_no)
            if page.kind == PAGE_SLOTTED:
                page.delete(rid.slot)
                self._mark_dirty(rid.page_no)
                self._spacious.add(rid.page_no)
                return
            if page.kind != PAGE_OVERFLOW_HEAD:
                raise CorruptHeapError(
                    f"record id {rid} addresses an overflow continuation "
                    f"page"
                )
            # Turn the whole chain into empty slotted pages, reusable for
            # future inserts.
            next_page = struct.unpack_from("<I", page.data, 12)[0]
            self._reset_page(rid.page_no)
            while next_page:
                cont = self._load_page(next_page)
                link = struct.unpack_from("<I", cont.data, 12)[0]
                self._reset_page(next_page)
                next_page = link

    def _reset_page(self, page_no: int) -> None:
        page = _Page()
        self._cache[page_no] = page
        self._dirty.add(page_no)
        self._spacious.add(page_no)

    def compact_page(self, page_no: int) -> None:
        """Reclaim dead bytes on one slotted page."""
        with self._lock:
            page = self._load_page(page_no)
            if page.kind == PAGE_SLOTTED:
                page.compact()
                self._mark_dirty(page_no)
                self._spacious.add(page_no)

    # -- fragmentation ------------------------------------------------------

    def dead_bytes_on(self, page_no: int) -> int:
        """Bytes held by tombstoned records on one slotted page."""
        with self._lock:
            page = self._load_page(page_no)
            if page.kind != PAGE_SLOTTED:
                return 0
            live = sum(len(record) for __, record in page.live_records())
            used = PAGE_SIZE - page.free_offset
            return max(0, used - live)

    def fragmentation(self) -> tuple[int, int]:
        """``(dead_bytes, total_bytes)`` across all slotted pages."""
        with self._lock:
            dead = 0
            total = 0
            for page_no in range(self._page_count):
                page = self._load_page(page_no)
                if page.kind == PAGE_SLOTTED:
                    dead += self.dead_bytes_on(page_no)
                    total += PAGE_SIZE
            return dead, total

    def compact_fragmented(self, threshold: float = 0.25) -> int:
        """Compact every slotted page whose dead fraction exceeds
        ``threshold``; returns the number of pages compacted.

        Called by the store after garbage collection, so space freed by
        collected records becomes reusable without growing the file.
        """
        with self._lock:
            compacted = 0
            for page_no in range(self._page_count):
                if self.dead_bytes_on(page_no) > PAGE_SIZE * threshold:
                    self.compact_page(page_no)
                    compacted += 1
            return compacted

    # -- durability -------------------------------------------------------

    @property
    def cached_pages(self) -> int:
        """In-memory page images right now (tests, statistics)."""
        with self._lock:
            return len(self._cache)

    def flush(self) -> None:
        """Write all dirty pages and fsync the file."""
        with self._lock:
            for page_no in sorted(self._dirty):
                self._file.seek(page_no * PAGE_SIZE)
                self._file.write(self._cache[page_no].data)
            self._dirty.clear()
            self._file.flush()
            os.fsync(self._file.fileno())
            # Newly-clean pages may put the cache over its bound.
            self._evict_clean()

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self.flush()
                self._file.close()

    def __enter__(self) -> "HeapFile":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
