"""Reachability analysis helpers over the stored graph.

:meth:`~repro.store.objectstore.ObjectStore.collect_garbage` is the actual
collector; this module exposes the analysis pieces separately so tests,
benchmarks and the browser can inspect reachability without mutating the
store.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.store.objectstore import record_refs
from repro.store.oids import Oid

if TYPE_CHECKING:  # pragma: no cover
    from repro.store.objectstore import ObjectStore


def reachable_oids(store: "ObjectStore",
                   include_weak: bool = False) -> set[Oid]:
    """OIDs reachable from the roots over *stored* records.

    ``include_weak=False`` (the default) follows only strong edges — the
    reachability that decides liveness.  ``include_weak=True`` additionally
    follows weak edges, which is useful for computing what is *accessible*
    (e.g. through the paper's Figure 7 registry) rather than what is live.
    """
    marked: set[Oid] = set()
    worklist = [store.root_oid(name) for name in store.root_names()]
    while worklist:
        oid = worklist.pop()
        if oid in marked:
            continue
        marked.add(oid)
        if store.is_stored(oid):
            record = store.stored_record(oid)
            for ref in record_refs(record, include_weak=include_weak):
                if ref not in marked:
                    worklist.append(ref)
    return marked


def unreachable_oids(store: "ObjectStore") -> set[Oid]:
    """Stored OIDs that the next :meth:`collect_garbage` would free,
    assuming the live graph matches the stored graph."""
    marked = reachable_oids(store, include_weak=False)
    return {oid for oid in store.stored_oids() if oid not in marked}


def weakly_only_reachable(store: "ObjectStore") -> set[Oid]:
    """OIDs reachable through weak edges but not strong ones — exactly the
    population of collectable hyper-programs in the paper's Figure 7."""
    strong = reachable_oids(store, include_weak=False)
    accessible = reachable_oids(store, include_weak=True)
    return accessible - strong
