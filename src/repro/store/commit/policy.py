"""Durability policies: when a commit call may return.

A policy decides two things for a :class:`~repro.store.commit.pipeline.
CommitPipeline`:

* whether ``apply`` blocks until the batch is durable (``waits``);
* whether a dedicated committer thread drains a queue (``threaded``),
  which is what lets concurrent submitters share one fsync.

========  =====  ========  ==========================================
policy    waits  threaded  meaning
========  =====  ========  ==========================================
sync      yes    no        each batch commits by itself, inline; the
                           submission path is serialised, so the
                           pipeline is safe for many threads
group     yes    yes       batches queued by concurrent submitters
                           are coalesced into one group commit (one
                           engine ``apply_many``); every submitter
                           still returns only once its batch is
                           durable
async     no     yes       submission returns immediately; durability
                           happens behind the caller, observable via
                           the returned ticket or ``flush()``
========  =====  ========  ==========================================

``group_window_ms`` adds an optional linger: after the first batch of a
group arrives, the committer waits up to the window for more arrivals
before committing.  The default of 0 relies on *natural batching* —
whatever queued while the previous group was fsyncing forms the next
group — which adds no latency and is what the commit benchmark runs.
"""

from __future__ import annotations


class DurabilityPolicy:
    """Base policy; concrete policies set the class attributes."""

    name: str = "abstract"
    #: ``apply`` blocks until the batch is durable.
    waits: bool = True
    #: A dedicated committer thread drains the queue.
    threaded: bool = False
    #: Linger (seconds) after the first arrival of a group; 0 commits
    #: as soon as the committer gets the queue.
    window_s: float = 0.0
    #: Most batches one group commit may coalesce.
    max_batches: int = 1
    #: Most submitted-but-uncommitted batches before submit blocks
    #: (backpressure; bounds the pipeline's memory).
    max_pending: int = 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class SyncPolicy(DurabilityPolicy):
    """One inline, serialised, durable commit per batch."""

    name = "sync"


class GroupPolicy(DurabilityPolicy):
    """Coalesce concurrent commits; every submitter waits for its own
    batch's durability, but a whole group shares one commit cost."""

    name = "group"
    threaded = True

    def __init__(self, window_ms: float = 0.0, max_batches: int = 64,
                 max_pending: int = 256):
        if window_ms < 0:
            raise ValueError(f"group_window_ms must be >= 0, got {window_ms}")
        if max_batches < 1:
            raise ValueError(
                f"group_max_batches must be >= 1, got {max_batches}")
        if max_pending < 1:
            raise ValueError(
                f"async_max_pending must be >= 1, got {max_pending}")
        self.window_s = window_ms / 1000.0
        self.max_batches = max_batches
        self.max_pending = max_pending

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{type(self).__name__}(window_ms={self.window_s * 1000!r}, "
                f"max_batches={self.max_batches}, "
                f"max_pending={self.max_pending})")


class AsyncPolicy(GroupPolicy):
    """Group machinery without the wait: submission acknowledges, the
    committer makes it durable behind the caller."""

    name = "async"
    waits = False


_POLICY_KINDS = ("sync", "group", "async")


def make_policy(kind: str, *, window_ms: float = 0.0, max_batches: int = 64,
                max_pending: int = 256) -> DurabilityPolicy:
    """The policy object a ``durability=...`` URL parameter names."""
    if kind == "sync":
        return SyncPolicy()
    if kind == "group":
        return GroupPolicy(window_ms=window_ms, max_batches=max_batches,
                           max_pending=max_pending)
    if kind == "async":
        return AsyncPolicy(window_ms=window_ms, max_batches=max_batches,
                           max_pending=max_pending)
    raise ValueError(
        f"unknown durability policy {kind!r}; "
        f"expected one of {', '.join(_POLICY_KINDS)}"
    )
