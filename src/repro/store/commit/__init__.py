"""The concurrent commit pipeline.

Storage engines make one :class:`~repro.store.engine.base.WriteBatch`
durable per :meth:`~repro.store.engine.base.StorageEngine.apply` call,
which puts an fsync floor under every commit.  This package brokers
*concurrent* commits instead of serialising them:

* :class:`~repro.store.commit.policy.DurabilityPolicy` — when a commit
  call may return relative to durability (``sync``, ``group``,
  ``async``);
* :class:`~repro.store.commit.pipeline.CommitPipeline` — the queue and
  dedicated committer thread that coalesces submitted batches into
  group commits (one engine ``apply_many`` — for the file backend, one
  WAL append run and a single fsync — per group);
* :class:`~repro.store.commit.pipeline.PipelinedEngine` — a wrapper
  :class:`~repro.store.engine.base.StorageEngine` that routes ``apply``
  through a pipeline and keeps queued batches readable (an overlay over
  the child engine), so callers observe their own writes immediately
  whatever the durability policy;
* :class:`~repro.store.commit.pipeline.CommitTicket` — the durability
  future a submission returns;
* :class:`~repro.store.commit.encode.EncoderPool` — the worker pool
  behind the store's three-phase ``stabilize()``: dirty records are
  serialised, signed and (optionally) compressed in chunks *outside*
  the store's commit lock, streaming into the write batch as chunks
  finish.

Engines pick a policy via storage-URL query parameters
(``file:/p?durability=group``) — see
:func:`repro.store.engine.factory.engine_from_url`.
"""

from repro.store.commit.encode import (
    EncodedRecord,
    EncoderPool,
    encode_chunk,
)
from repro.store.commit.pipeline import (
    CommitPipeline,
    CommitTicket,
    PipelinedEngine,
)
from repro.store.commit.policy import (
    AsyncPolicy,
    DurabilityPolicy,
    GroupPolicy,
    SyncPolicy,
)

__all__ = [
    "CommitPipeline",
    "CommitTicket",
    "PipelinedEngine",
    "EncoderPool",
    "EncodedRecord",
    "encode_chunk",
    "DurabilityPolicy",
    "SyncPolicy",
    "GroupPolicy",
    "AsyncPolicy",
]
