"""The commit pipeline: group commit, async durability, read overlay.

``CommitPipeline`` accepts :class:`~repro.store.engine.base.WriteBatch`
submissions from any number of threads and commits them on a single
dedicated committer thread, coalescing whatever queued while the
previous group was committing into one
:meth:`~repro.store.engine.base.StorageEngine.apply_many` call — for
the file backend that is one WAL append run and a *single* fsync for
the whole group.  Each submission returns a :class:`CommitTicket`, the
durability future.

``PipelinedEngine`` packages a pipeline as a storage engine, so the
rest of the system (the store, the sharded engine, the URL factory)
can treat "an engine with a durability policy" exactly like any other
backend.  Batches that are queued but not yet applied stay *visible*:
reads consult the pending overlay before the child engine, so a caller
always observes its own writes immediately — only durability is
deferred, never visibility.

Failure is deterministic: if a group commit raises, every ticket in the
group (and everything queued behind it) resolves with the error, the
pipeline refuses further submissions, and :meth:`CommitPipeline.close`
re-raises — an async batch can be lost to a crash (that is the policy's
contract) but never silently swallowed by an error.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Iterable, Optional

from repro.errors import CommitPipelineError, StoreClosedError, UnknownOidError
from repro.store.commit.policy import DurabilityPolicy, SyncPolicy
from repro.store.engine.base import StorageEngine, WriteBatch
from repro.store.obs.trace import current_span, run_with_span
from repro.store.obs.trace import span as trace_span
from repro.store.oids import Oid


class CommitTicket:
    """The durability future of one submitted batch.

    Resolves exactly once — successfully, or with the exception the
    commit raised.  ``wait``/``result`` may be called from any thread.
    """

    __slots__ = ("batch", "span", "_done", "_error")

    def __init__(self, batch: Optional[WriteBatch] = None):
        self.batch = batch
        #: The submitter's active trace span, if any — the committer
        #: thread attributes the group commit to it (contextvars do
        #: not cross the thread boundary on their own).
        self.span = current_span()
        self._done = threading.Event()
        self._error: Optional[BaseException] = None

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the batch settles; ``False`` on timeout."""
        return self._done.wait(timeout)

    def exception(self,
                  timeout: Optional[float] = None) -> Optional[BaseException]:
        """The commit's exception (``None`` on success); blocks first."""
        if not self._done.wait(timeout):
            raise TimeoutError("commit is still pending")
        return self._error

    def result(self, timeout: Optional[float] = None) -> None:
        """Block until durable; re-raise the commit's failure, if any."""
        error = self.exception(timeout)
        if error is not None:
            raise error

    def _resolve(self, error: Optional[BaseException] = None) -> None:
        self._error = error
        # The batch reference has served its purpose (the committer
        # reads it before resolving); dropping it keeps a long-lived
        # ticket — e.g. a store's ``last_commit`` — from pinning the
        # whole checkpoint's record bytes in memory.  Same for the
        # captured span and its trace collector.
        self.batch = None
        self.span = None
        self._done.set()


def completed_ticket(batch: Optional[WriteBatch] = None) -> CommitTicket:
    """A ticket that is already durable (direct-engine ``apply_async``)."""
    ticket = CommitTicket(batch)
    ticket._resolve()
    return ticket


class CommitPipeline:
    """Queue + committer thread turning many commits into few."""

    def __init__(self, engine: StorageEngine, policy: DurabilityPolicy):
        self._engine = engine
        self.policy = policy
        self._lock = threading.Lock()
        self._arrived = threading.Condition(self._lock)
        self._settled = threading.Condition(self._lock)
        #: Tickets waiting for the committer, oldest first.
        self._queue: deque[CommitTicket] = deque()
        #: (sequence, batch) submitted but not yet applied to the child
        #: — strictly FIFO alongside ``_queue`` plus the group currently
        #: being committed.
        self._pending: deque[tuple[int, WriteBatch]] = deque()
        self._seq = 0
        #: The read overlay, maintained incrementally so lookups are
        #: O(1) however deep the queue: OID -> (sequence of the newest
        #: pending batch touching it, record bytes or the delete
        #: sentinel).  Entries whose sequence has been applied to the
        #: child are dropped when their group completes.
        self._overlay: dict[Oid, tuple[int, object]] = {}
        self._overlay_roots: Optional[tuple[int, dict]] = None
        self._overlay_next_oid: Optional[int] = None
        self._failure: Optional[BaseException] = None
        self._closed = False
        # Serialises every touch of the child engine: sync-policy
        # inline applies, the committer's group commits, and — through
        # :attr:`commit_lock` — the wrapper's reads, which would
        # otherwise race the committer through the child's
        # unsynchronised file handles and tables.
        self._apply_lock = threading.Lock()
        # Native group-commit telemetry (pull gauges via obs).
        self.groups_committed = 0
        self.batches_committed = 0
        self.linger_ns = 0
        self._thread: Optional[threading.Thread] = None
        if policy.threaded:
            self._thread = threading.Thread(
                target=self._run, name="repro-commit-pipeline", daemon=True)
            self._thread.start()

    # -- submission ------------------------------------------------------

    def _raise_if_unusable(self) -> None:
        if self._closed:
            raise StoreClosedError("the commit pipeline has been closed")
        if self._failure is not None:
            raise CommitPipelineError(
                "the commit pipeline failed; no further commits are accepted"
            ) from self._failure

    def submit(self, batch: WriteBatch) -> CommitTicket:
        """Queue one batch for commit; returns its durability ticket.

        Never blocks on I/O for threaded policies (only on backpressure
        when ``max_pending`` submissions are already in flight); for the
        sync policy the commit happens inline, serialised, and the
        returned ticket is already settled.
        """
        ticket = CommitTicket(batch)
        if self._thread is None:
            return self._submit_inline(ticket)
        with self._lock:
            self._raise_if_unusable()
            while len(self._pending) >= self.policy.max_pending:
                self._settled.wait()
                self._raise_if_unusable()
            self._seq += 1
            seq = self._seq
            self._queue.append(ticket)
            self._pending.append((seq, batch))
            # Batch order contract: writes apply first, deletes last —
            # an OID both written and deleted ends absent.
            for oid, raw in batch.writes:
                self._overlay[oid] = (seq, bytes(raw))
            for oid in batch.deletes:
                self._overlay[oid] = (seq, self._ABSENT)
            if batch.roots is not None:
                self._overlay_roots = (seq, dict(batch.roots))
            if batch.next_oid is not None:
                self._overlay_next_oid = max(
                    self._overlay_next_oid or 0, batch.next_oid)
            self._arrived.notify()
        return ticket

    def _submit_inline(self, ticket: CommitTicket) -> CommitTicket:
        with self._lock:
            self._raise_if_unusable()
        error: Optional[BaseException] = None
        try:
            with trace_span("commit.group"), self._apply_lock:
                self._engine.apply(ticket.batch)
        except BaseException as exc:
            error = exc
        ticket._resolve(error)
        if error is not None:
            raise error
        self.groups_committed += 1
        self.batches_committed += 1
        return ticket

    # -- the committer thread -------------------------------------------

    def _collect_group(self) -> Optional[list[CommitTicket]]:
        """Wait for work; returns the next group, or ``None`` to exit."""
        policy = self.policy
        with self._lock:
            while not self._queue and not self._closed:
                self._arrived.wait()
            if not self._queue:
                return None  # closed and drained
            if policy.window_s > 0 and len(self._queue) < policy.max_batches:
                # Optional linger: give concurrent submitters the window
                # to join this group before it commits.
                lingered_from = time.monotonic()
                deadline = lingered_from + policy.window_s
                while len(self._queue) < policy.max_batches \
                        and not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._arrived.wait(remaining)
                self.linger_ns += int(
                    (time.monotonic() - lingered_from) * 1e9)
            count = min(len(self._queue), policy.max_batches)
            return [self._queue.popleft() for _ in range(count)]

    def _run(self) -> None:
        while True:
            group = self._collect_group()
            if group is None:
                return
            error: Optional[BaseException] = None

            def commit_group() -> None:
                # Runs with the submitter's span active (if any), so
                # the group shows up in that trace with the child WAL
                # fsync / 2PC work nested underneath.
                with trace_span("commit.group"), self._apply_lock:
                    self._engine.apply_many(
                        [ticket.batch for ticket in group])

            group_span = next((ticket.span for ticket in group
                               if ticket.span is not None), None)
            try:
                run_with_span(group_span, commit_group)
            except BaseException as exc:  # noqa: BLE001 - forwarded to tickets
                error = exc
            with self._lock:
                applied_seq = 0
                for _ in group:
                    applied_seq, _batch = self._pending.popleft()
                leftovers: list[CommitTicket] = []
                if error is not None:
                    # Poison the pipeline: the child's in-memory state
                    # can no longer be trusted to match what later
                    # batches assumed.  Everything queued fails too.
                    self._failure = error
                    leftovers = list(self._queue)
                    self._queue.clear()
                    self._pending.clear()
                    self._overlay.clear()
                    self._overlay_roots = None
                    self._overlay_next_oid = None
                else:
                    self._drop_applied(applied_seq)
                    self.groups_committed += 1
                    self.batches_committed += len(group)
                self._settled.notify_all()
            # Wake the submitters outside the lock: they return into
            # submit(), which needs it.
            for ticket in group:
                ticket._resolve(error)
            if error is not None:
                chained = CommitPipelineError(
                    "an earlier group commit failed")
                chained.__cause__ = error
                for ticket in leftovers:
                    ticket._resolve(chained)
                return

    # -- draining --------------------------------------------------------

    @property
    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    def flush(self) -> None:
        """Block until every submitted batch has settled; re-raise the
        pipeline's failure if any commit failed."""
        with self._lock:
            while self._pending and self._failure is None \
                    and not self._closed:
                self._settled.wait()
            if self._failure is not None:
                raise CommitPipelineError(
                    "commits were lost: the pipeline failed while batches "
                    "were in flight"
                ) from self._failure

    def close(self) -> None:
        """Drain the queue, stop the committer, and surface any failure.

        Deterministic: either every submitted batch was committed by the
        time ``close`` returns, or ``close`` raises
        :class:`~repro.errors.CommitPipelineError`.
        """
        with self._lock:
            already = self._closed
            self._closed = True
            self._arrived.notify_all()
            self._settled.notify_all()
        if self._thread is not None:
            self._thread.join()
        if already:
            return
        if self._failure is not None:
            raise CommitPipelineError(
                "commits were lost: the pipeline failed before close "
                "could drain it"
            ) from self._failure

    # -- the read overlay ------------------------------------------------

    _ABSENT = object()

    @property
    def commit_lock(self) -> threading.Lock:
        """The lock every child-engine touch runs under.  The wrapper's
        read paths hold it so a read can never interleave with the
        committer mid-``apply_many`` (shared file handles, live table
        mutation); it is never held together with the queue lock."""
        return self._apply_lock

    def _drop_applied(self, applied_seq: int) -> None:
        """Shed overlay entries whose newest writer has reached the
        child (called with the lock held, after a group commit)."""
        for oid in [oid for oid, (seq, _) in self._overlay.items()
                    if seq <= applied_seq]:
            del self._overlay[oid]
        if self._overlay_roots is not None \
                and self._overlay_roots[0] <= applied_seq:
            self._overlay_roots = None
        if not self._pending:
            # The child is fully caught up (its cursor is monotonic, so
            # the stale maximum would be harmless — just noise).
            self._overlay_next_oid = None

    def pending_value(self, oid: Oid):
        """The newest pending effect on ``oid``: record bytes, the
        ``_ABSENT`` sentinel for a pending delete, or ``None`` when no
        pending batch touches the OID.  O(1)."""
        with self._lock:
            entry = self._overlay.get(oid)
        return entry[1] if entry is not None else None

    def pending_values(self, oids) -> dict:
        """Bulk :meth:`pending_value`: one lock acquisition for a whole
        fetch wave; OIDs no pending batch touches are omitted."""
        with self._lock:
            overlay = self._overlay
            return {oid: overlay[oid][1] for oid in oids if oid in overlay}

    def pending_effects(self) -> tuple[list[Oid], list[Oid]]:
        """Snapshot of the overlay as (written OIDs, deleted OIDs)."""
        with self._lock:
            items = list(self._overlay.items())
        written = [oid for oid, (_, value) in items
                   if value is not self._ABSENT]
        deleted = [oid for oid, (_, value) in items
                   if value is self._ABSENT]
        return written, deleted

    def pending_roots(self) -> Optional[dict]:
        with self._lock:
            if self._overlay_roots is not None:
                return dict(self._overlay_roots[1])
        return None

    def pending_next_oid(self) -> Optional[int]:
        with self._lock:
            return self._overlay_next_oid


class PipelinedEngine(StorageEngine):
    """A storage engine whose ``apply`` goes through a commit pipeline.

    Wraps any child engine.  Reads merge the pipeline's pending overlay
    over the child, so submitted-but-uncommitted batches are always
    visible; writes follow the policy (``sync``/``group`` block until
    durable, ``async`` returns on submission).  ``close`` drains the
    pipeline before closing the child — pending commits are flushed or
    the failure is raised, never dropped silently.
    """

    name = "pipelined"

    def __init__(self, child: StorageEngine,
                 policy: Optional[DurabilityPolicy] = None):
        if child.closed:
            raise ValueError("the child engine must be open")
        super().__init__()
        self._child = child
        self._policy = policy if policy is not None else SyncPolicy()
        self._pipeline = CommitPipeline(child, self._policy)
        self.asynchronous = not self._policy.waits

    # -- composition -----------------------------------------------------

    @property
    def child(self) -> StorageEngine:
        """The engine the pipeline commits to."""
        return self._child

    @property
    def policy(self) -> DurabilityPolicy:
        return self._policy

    @property
    def pipeline(self) -> CommitPipeline:
        """The underlying pipeline (tests, statistics)."""
        return self._pipeline

    @property
    def shard_of(self):
        """The child's OID->shard map when it is sharded, else ``None``.

        Exposed so the store's encode phase can align its chunks with
        the shards of a sharded engine running *behind* a pipeline."""
        return getattr(self._child, "shard_of", None)

    @property
    def directory(self):
        """The child's backing directory, if it has one (store API)."""
        return getattr(self._child, "directory", None)

    # The physical counters belong to the child (one counter however the
    # engine is wrapped); the base initialiser's zeroing is absorbed by
    # the no-op setters.

    @property
    def record_writes(self) -> int:
        return self._child.record_writes

    @record_writes.setter
    def record_writes(self, value: int) -> None:
        pass

    @property
    def batches_applied(self) -> int:
        return self._child.batches_applied

    @batches_applied.setter
    def batches_applied(self, value: int) -> None:
        pass

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        error: Optional[BaseException] = None
        try:
            self._pipeline.close()
        except BaseException as exc:  # noqa: BLE001 - re-raised after close
            error = exc
        self._child.close()
        if error is not None:
            raise error

    # -- reads (overlay over child) --------------------------------------
    #
    # Overlay first: a batch dropped from the overlay concurrently has,
    # by ordering, already been applied to the child.  Record reads do
    # *not* take the commit lock — every backend's read path is itself
    # safe against a concurrent ``apply`` (the read-serving work), so a
    # reader can never observe a torn batch: it finds the newest value
    # in the overlay, or the child serves a committed prefix.  Aggregate
    # views and maintenance still serialise against the committer.

    def read(self, oid: Oid) -> bytes:
        self._check_open()
        value = self._pipeline.pending_value(oid)
        if value is CommitPipeline._ABSENT:
            raise UnknownOidError(int(oid))
        if value is not None:
            return value
        return self._child.read(oid)

    def fetch_many(self, oids: Iterable[Oid]) -> dict[Oid, bytes]:
        """Overlay first (bulk, one lock hold), then one child bulk read
        for the rest — a queued-but-uncommitted batch stays visible to
        fetch waves exactly as it does to single reads."""
        self._check_open()
        wanted = list(oids)
        pending = self._pipeline.pending_values(wanted)
        found: dict[Oid, bytes] = {}
        rest: list[Oid] = []
        for oid in wanted:
            if oid in pending:
                value = pending[oid]
                if value is not CommitPipeline._ABSENT:
                    found[oid] = value
            else:
                rest.append(oid)
        if rest:
            found.update(self._child.fetch_many(rest))
        return found

    def contains(self, oid: Oid) -> bool:
        self._check_open()
        value = self._pipeline.pending_value(oid)
        if value is CommitPipeline._ABSENT:
            return False
        if value is not None:
            return True
        return self._child.contains(oid)

    def _merged_oids(self) -> set[Oid]:
        written, deleted = self._pipeline.pending_effects()
        with self._pipeline.commit_lock:
            oids = set(self._child.oids())
        oids.update(written)
        oids.difference_update(deleted)
        return oids

    def oids(self) -> tuple[Oid, ...]:
        self._check_open()
        return tuple(self._merged_oids())

    @property
    def object_count(self) -> int:
        self._check_open()
        if self._pipeline.pending_count == 0:
            with self._pipeline.commit_lock:
                return self._child.object_count
        return len(self._merged_oids())

    def roots(self) -> dict[str, Oid]:
        self._check_open()
        pending = self._pipeline.pending_roots()
        if pending is not None:
            return pending
        with self._pipeline.commit_lock:
            return self._child.roots()

    @property
    def next_oid(self) -> int:
        self._check_open()
        pending = self._pipeline.pending_next_oid()
        # No commit lock: every backend serves this as a plain integer
        # attribute read, atomic under the GIL, and the cursor is
        # monotonic — a torn moment can only under-read, and the
        # pending maximum covers exactly that window.
        child = self._child.next_oid
        return child if pending is None else max(child, pending)

    @property
    def page_count(self) -> int:
        self._check_open()
        with self._pipeline.commit_lock:
            return self._child.page_count

    # -- writes ----------------------------------------------------------

    def apply(self, batch: WriteBatch) -> None:
        ticket = self.apply_async(batch)
        if self._policy.waits:
            ticket.result()

    def apply_async(self, batch: WriteBatch) -> CommitTicket:
        self._check_open()
        return self._pipeline.submit(batch)

    def apply_many(self, batches: Iterable[WriteBatch]) -> None:
        self._check_open()
        tickets = [self._pipeline.submit(batch) for batch in batches]
        if self._policy.waits:
            for ticket in tickets:
                ticket.result()

    # -- barriers and maintenance ----------------------------------------

    def flush(self) -> None:
        self._check_open()
        self._pipeline.flush()
        # The child may itself acknowledge before durability (a sharded
        # engine over async shard pipelines): the barrier is only a
        # barrier if it reaches the bottom of the stack.
        with self._pipeline.commit_lock:
            self._child.flush()

    def sync(self) -> None:
        self._check_open()
        self._pipeline.flush()
        with self._pipeline.commit_lock:
            self._child.sync()

    def compact(self) -> int:
        self._check_open()
        self._pipeline.flush()
        with self._pipeline.commit_lock:
            return self._child.compact()
