"""The parallel encode phase of stabilisation.

:meth:`~repro.store.objectstore.ObjectStore.stabilize` runs in three
phases — a short reachability *walk* under the commit lock, this
*encode* phase with no lock held, and a *commit* phase back under the
lock.  The unit of work here is a **chunk** of dirty
:class:`~repro.store.serializer.Record` objects: per record the worker
runs ``Record.to_bytes()``, the ``zlib.crc32`` signature and the
optional per-record codec (:class:`~repro.store.serializer.RecordCodec`).
crc32 and compression release the GIL on bytes, so chunks genuinely
overlap on multi-core hosts, and on any host they overlap the fsync
waits of concurrently committing threads.

Chunks are *streamed* back in completion order — no barrier — so the
caller's :class:`~repro.store.engine.base.WriteBatch` fills as chunks
finish rather than waiting for the slowest worker.  Over a sharded
engine the chunk planner aligns chunks with ``shard_of``, so each
encoded chunk's writes land on a single shard and the engine's prepare
phase (which builds the per-shard staging batches in parallel on the
shard pool) gets contiguous runs.

``encode_chunk`` is deliberately a module-level function: the
failure-injection tests monkeypatch it to raise mid-stream and pin that
an aborted encode phase leaves no partial bookkeeping behind.
"""

from __future__ import annotations

import os
import threading
import time
import zlib
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional

from repro.store.oids import Oid
from repro.store.serializer import Record, RecordCodec

#: Records per encode chunk.  Small enough that a typical incremental
#: stabilise (a handful of dirty records) stays a single inline chunk;
#: large enough that a bulk load amortises the per-chunk handoff.
DEFAULT_CHUNK_RECORDS = 32


def default_workers() -> int:
    """Encoder pool size when the store is not told one: bounded by the
    host's cores — encode work is CPU-plus-compression, not I/O."""
    return min(4, os.cpu_count() or 1)


@dataclass(frozen=True)
class EncodedRecord:
    """One dirty record, encoded and ready to commit."""

    oid: Oid
    #: The bytes handed to the engine (codec-framed when that is smaller).
    stored: bytes
    #: ``(len, crc32)`` of the *raw* (uncompressed) record bytes — the
    #: store's dirty filter compares signatures over raw bytes whatever
    #: codec is in force, so legacy and compressed stores interoperate.
    sig: tuple[int, int]
    #: Length of the raw encoding (observability: ``encoded_bytes``).
    raw_len: int


def encode_record(record: Record,
                  codec: Optional[RecordCodec]) -> EncodedRecord:
    """Serialise one record and (optionally) compress it."""
    raw = record.to_bytes()
    sig = (len(raw), zlib.crc32(raw))
    stored = codec.wrap(raw) if codec is not None else raw
    return EncodedRecord(record.oid, stored, sig, len(raw))


def encode_chunk(chunk: list[Record],
                 codec: Optional[RecordCodec]) -> list[EncodedRecord]:
    """Encode one chunk of records (the workers' unit of work; the
    failure-injection tests monkeypatch this to raise mid-stream)."""
    return [encode_record(record, codec) for record in chunk]


def plan_chunks(records: Iterable[Record], chunk_records: int,
                group_of: Optional[Callable[[Oid], int]] = None,
                ) -> list[list[Record]]:
    """Split the dirty set into encode chunks.

    With ``group_of`` (a sharded engine's ``shard_of``) records are
    bucketed by group first, so every chunk's writes belong to one
    shard; without it the dirty set is split in walk order.
    """
    if group_of is None:
        flat = list(records)
        return [flat[start:start + chunk_records]
                for start in range(0, len(flat), chunk_records)]
    groups: dict[int, list[Record]] = {}
    for record in records:
        groups.setdefault(group_of(record.oid), []).append(record)
    chunks: list[list[Record]] = []
    for _, members in sorted(groups.items()):
        chunks.extend(members[start:start + chunk_records]
                      for start in range(0, len(members), chunk_records))
    return chunks


class EncoderPool:
    """The dedicated worker pool behind the stabilize encode phase.

    The pool starts lazily on the first dirty set large enough to split:
    ``workers=0`` disables it entirely and small dirty sets (at most one
    chunk) are always encoded inline on the calling thread — a thread
    handoff costs more than encoding a handful of records, which keeps
    the single-threaded incremental-stabilise profile at its
    pre-pipeline cost.
    """

    def __init__(self, workers: Optional[int] = None,
                 chunk_records: int = DEFAULT_CHUNK_RECORDS):
        if workers is None:
            workers = default_workers()
        if workers < 0:
            raise ValueError(f"encode_workers must be >= 0, got {workers}")
        if chunk_records < 1:
            raise ValueError(
                f"chunk_records must be >= 1, got {chunk_records}"
            )
        self.workers = workers
        self.chunk_records = chunk_records
        self._executor: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()
        # Native encode telemetry (pull gauges via obs): chunk count,
        # wall time inside encode_chunk, and byte totals before/after
        # the codec (their ratio is the realised compression ratio).
        self.chunks_encoded = 0
        self.encode_ns = 0
        self.raw_bytes = 0
        self.stored_bytes = 0

    @property
    def started(self) -> bool:
        """Whether the worker threads exist yet (observability)."""
        return self._executor is not None

    def _encode_chunk_timed(self, chunk: list[Record],
                            codec: Optional[RecordCodec],
                            ) -> list[EncodedRecord]:
        """One chunk through the module-level ``encode_chunk`` (looked
        up at call time so the failure-injection monkeypatch still
        lands), with the pool's counters updated around it."""
        start = time.perf_counter_ns()
        encoded = encode_chunk(chunk, codec)
        self.encode_ns += time.perf_counter_ns() - start
        self.chunks_encoded += 1
        for record in encoded:
            self.raw_bytes += record.raw_len
            self.stored_bytes += len(record.stored)
        return encoded

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-stabilize-encode")
            return self._executor

    def encode_stream(self, records: Iterable[Record],
                      codec: Optional[RecordCodec],
                      group_of: Optional[Callable[[Oid], int]] = None,
                      ) -> Iterator[list[EncodedRecord]]:
        """Encode the dirty set, yielding chunks in *completion* order.

        A raising chunk propagates to the caller as soon as it is
        observed; chunks not yet started are cancelled, already-running
        ones finish and are discarded — the pool itself is never
        poisoned and serves the next stabilise normally.
        """
        chunks = plan_chunks(records, self.chunk_records, group_of)
        # Inline below one chunk's worth of *records* (not chunks: shard
        # grouping splits even a two-record dirty set into two chunks).
        # A worker handoff costs more than encoding a handful of records
        # — and under heavy reader traffic on few cores, waking a pool
        # thread per tiny incremental stabilise degrades into a GIL
        # convoy.  Inline keeps the small-commit profile at its
        # pre-pipeline cost.
        total = sum(len(chunk) for chunk in chunks)
        if self.workers == 0 or total <= self.chunk_records:
            for chunk in chunks:
                yield self._encode_chunk_timed(chunk, codec)
            return
        executor = self._ensure_executor()
        pending = {executor.submit(self._encode_chunk_timed, chunk, codec)
                   for chunk in chunks}
        try:
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    yield future.result()
        finally:
            for future in pending:
                future.cancel()

    def close(self) -> None:
        """Stop the workers; the pool restarts lazily if used again."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
