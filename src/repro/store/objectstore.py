"""The orthogonally persistent object store.

This is the PJama analogue: "a persistent store with root(s), reachability
and referential integrity" (paper, Section 1).  Key behaviours:

* **Roots** — named entry points (:meth:`ObjectStore.set_root`).
* **Persistence by reachability** — :meth:`stabilize` makes durable exactly
  the storable nodes reachable from the roots by strong edges; no explicit
  "save this object" calls are needed for interior objects.
* **Referential integrity** — stored objects refer to each other by OID,
  OIDs are never reused, and garbage collection only frees what is
  unreachable, so a stored reference always resolves.
* **Identity** — fetching an OID twice returns the same live object
  (:class:`~repro.store.cache.IdentityMap`).
* **Typed fidelity** — instances are rebuilt from their *registered* class
  after a schema-fingerprint check (:mod:`repro.store.registry`).
* **Weak references** — :class:`~repro.store.weakrefs.PersistentWeakRef`
  edges do not make their target reachable; the collector clears dead ones
  (paper Figure 7).
* **Crash safety and layout** — delegated to a pluggable
  :class:`~repro.store.engine.base.StorageEngine`.  The default
  :class:`~repro.store.engine.filesystem.FileEngine` stabilises atomically
  through a write-ahead log in a directory of ``store.heap``, ``store.wal``
  and ``store.manifest`` files; a
  :class:`~repro.store.engine.memory.MemoryEngine` serves ephemeral stores,
  and any engine can sit behind a commit pipeline
  (:mod:`repro.store.commit`) for group or asynchronous durability.

Stabilisation is **incremental**: the store keeps a shallow snapshot of
every clean live object (see :meth:`~repro.store.serializer.Serializer.
snapshot`) and re-serialises only objects that were mutated or newly
reached since the last stabilise.  The engine's ``record_writes`` counter
makes that observable.

The **read path is concurrent** (:mod:`repro.store.serve`): lookups take
the read side of a writer-preferring read-write lock, so N serving
threads resolve OIDs in parallel; faulting a missing subgraph plans its
reference closure in engine-parallel waves *outside* the lock
(:class:`~repro.store.serve.prefetch.FetchPlanner` over
:meth:`~repro.store.engine.base.StorageEngine.fetch_many`) and installs
the planned records under the write side, re-validating against whatever
faults, refreshes or collections won the race.  With ``cache_objects``
set, the identity map is a bounded
:class:`~repro.store.serve.cache.ObjectCache` — at most that many clean
objects stay strongly pinned; the tail is demoted to weak references and
re-faulted on demand.
"""

from __future__ import annotations

import threading
import time
import zlib
from typing import Any, Optional

from repro.errors import (
    StoreClosedError,
    UnknownOidError,
    UnknownRootError,
)
from repro.store.commit.encode import EncoderPool
from repro.store.engine.base import StorageEngine, WriteBatch
from repro.store.engine.filesystem import FileEngine
from repro.store.engine.memory import MemoryEngine
from repro.store.obs import MetricsRegistry, TimedEngine, bind_engine_metrics
from repro.store.obs.trace import (
    TraceLog,
    Tracer,
    current_span,
    span as trace_span,
)
from repro.store.oids import Oid, OidAllocator
from repro.store.registry import ClassRegistry
from repro.store.serializer import (
    KIND_WEAKREF,
    Record,
    RecordCodec,
    Ref,
    Serializer,
    parse_codec,
    record_refs,
    snapshots_equal,
    unwrap_record,
)
from repro.store.serve.cache import ObjectCache
from repro.store.serve.locks import ReadWriteLock
from repro.store.serve.prefetch import FetchPlan, FetchPlanner
from repro.store.weakrefs import PersistentWeakRef

__all__ = ["ObjectStore", "StoreStatistics", "record_refs"]

#: Sentinel distinguishing "weakref never stored" from "stored with a
#: cleared (None) target" in the ``_weak_stored`` cache — ``None`` is a
#: legal cached value there.
_WEAK_UNKNOWN = object()

#: Times a fault re-plans after losing a race (a concurrent eviction
#: invalidated its plan, or a sharded engine was read mid-commit) before
#: falling back to planning under the exclusive lock.  The exponential
#: backoff (1 ms doubling per retry, ~30 ms total) must outlast a
#: sharded two-phase commit's phase-3 window, which includes per-shard
#: fsyncs on slower disks; genuine corruption pays the same delay once
#: and then surfaces unchanged.
_FAULT_RETRIES = 5


class StoreStatistics:
    """A point-in-time summary of store contents (used by the browser)."""

    def __init__(self, object_count: int, root_count: int, live_count: int,
                 heap_pages: int, next_oid: int):
        self.object_count = object_count
        self.root_count = root_count
        self.live_count = live_count
        self.heap_pages = heap_pages
        self.next_oid = next_oid

    def __repr__(self) -> str:
        return (f"StoreStatistics(objects={self.object_count}, "
                f"roots={self.root_count}, live={self.live_count}, "
                f"pages={self.heap_pages}, next_oid={self.next_oid})")


class ObjectStore:
    """An orthogonally persistent object store over a storage engine."""

    def __init__(self, directory: str | None = None,
                 registry: ClassRegistry | None = None, *,
                 engine: StorageEngine | None = None,
                 cache_objects: int | None = None,
                 compress: str | RecordCodec | None = None,
                 encode_workers: int | None = None,
                 metrics: bool | MetricsRegistry = True,
                 slow_op_ms: float | None = None,
                 trace_sample: int | None = None,
                 slow_trace_ms: float | None = None,
                 trace_log: str | None = None):
        if engine is None:
            if directory is None:
                raise ValueError(
                    "ObjectStore needs a directory (file engine) or an "
                    "explicit engine"
                )
            engine = FileEngine(directory)
        elif directory is not None:
            raise ValueError(
                "pass either a directory or an engine, not both — an "
                "explicit engine decides where (and whether) data lives"
            )
        # The store's telemetry registry.  ``metrics=True`` (the
        # default) creates an enabled one and wraps the engine in a
        # TimedEngine; ``metrics=False`` creates a disabled registry —
        # every instrument below becomes the shared no-op and the engine
        # stays unwrapped, so the hot paths pay nothing.  Passing a
        # ``MetricsRegistry`` shares one registry across stores.
        if isinstance(metrics, MetricsRegistry):
            self._metrics = metrics
        elif isinstance(engine, TimedEngine) and metrics:
            # An engine the factory already instrumented: the store
            # joins its registry instead of keeping a second one.
            self._metrics = engine.metrics
        else:
            self._metrics = MetricsRegistry(enabled=bool(metrics))
        if self._metrics.enabled or slow_op_ms is not None:
            if not isinstance(engine, TimedEngine):
                engine = TimedEngine(engine, self._metrics,
                                     slow_op_ms=slow_op_ms)
            bind_engine_metrics(engine, self._metrics)
        # The span tracer.  Default-off: with ``trace_sample=0`` (or
        # unset), no slow-trace threshold and no sink, ``root()``
        # returns the shared null scope and the store pays one method
        # call per fault/stabilise — the cached-read fast path never
        # touches the tracer at all.
        self._tracer = Tracer(
            sample=trace_sample or 0,
            slow_ms=slow_trace_ms,
            log=TraceLog(trace_log) if trace_log else None,
        )
        self._engine = engine
        # One registry instance is threaded through every layer that
        # resolves classes (serializer, link store, compiler, evolution).
        # A store that is not handed a registry gets its own private one
        # rather than a process-wide global, so two stores can never
        # accidentally share schema state.
        self.registry = registry if registry is not None else ClassRegistry()
        self._serializer = Serializer(self.registry)
        # The identity map is a bounded object cache: with a capacity it
        # keeps an LRU hot set strongly and demotes the clean tail to
        # weak references; unbounded (the default) it pins everything,
        # like the seed behaviour.  The guard keeps dirty objects
        # strongly held until stabilised; the hook drops the demoted
        # object's clean-state snapshot, which would otherwise pin its
        # children through the bookkeeping.
        self._identity = ObjectCache(capacity=cache_objects)
        self._identity.set_demotion_guard(self._may_demote)
        self._identity.set_demotion_hook(self._on_demoted)
        self._allocator = OidAllocator(max(int(engine.next_oid), 1))
        self._planner = FetchPlanner(engine)
        # The read-serving lock (writer-preferring): lookups share the
        # read side; installing a faulted subgraph, refresh's
        # evict-and-refault, transaction aborts and GC evictions take
        # the write side.  Ordering: threads that hold the commit lock
        # may take this lock, never the reverse.
        self._serve_lock = ReadWriteLock()
        #: Bumped under the write lock by every bulk invalidation
        #: (garbage collection, evict_all); a fault whose plan started
        #: under an older epoch discards the plan and re-plans, so a
        #: freed or aborted subgraph can never be resurrected from
        #: stale reads.
        self._epoch = 0
        self._roots: dict[str, Oid] = engine.roots()
        #: oid -> (len, crc) of the stored record bytes *before* codec
        #: framing — signatures are always over raw record bytes, so a
        #: store reopened under a different ``compress=`` setting keeps
        #: its dirty filter intact.  Rebuilt lazily.
        self._stored_sig: dict[Oid, tuple[int, int]] = {}
        #: oid -> shallow state snapshot of the clean live object.
        self._shadow: dict[Oid, Any] = {}
        #: oid -> target OID of the last *stored* weak-reference record.
        #: Weak records used to be rebuilt and re-serialised on every
        #: stabilise "just in case"; this cache (the weakref analogue of
        #: the shadow snapshot — weakrefs have no snapshot by design)
        #: skips the rebuild when the resolved target has not moved.
        self._weak_stored: dict[Oid, Optional[Oid]] = {}
        #: Objects serialised since open (observability for benchmarks:
        #: incremental stabilisation keeps this close to the dirty count).
        self.encode_count = 0
        #: Weak-reference records actually rebuilt (the `_weak_stored`
        #: cache keeps this from growing on clean re-stabilises).
        self.weak_rebuilds = 0
        self._active_txn = None
        self._closed = False
        # Serialises the stabilise walk/commit phases and their
        # bookkeeping, so several threads may call stabilize()
        # concurrently — the encode phase and the wait for durability
        # both run *outside* this lock, so over a pipelined engine their
        # batches coalesce into group commits while other threads walk.
        # Re-entrant because collect_garbage() stabilises internally.
        self._commit_lock = threading.RLock()
        #: Per-OID commit sequence: the walk number of the *latest*
        #: stabilise that collected the OID as dirty.  With the encode
        #: phase outside the lock, two concurrent stabilises can reach
        #: their commit phase out of walk order; the later walk always
        #: wins — the earlier one drops any OID stamped after it, so a
        #: stale encoding can never overwrite a fresher committed one.
        self._commit_seq: dict[Oid, int] = {}
        self._stabilize_seq = 0
        #: Bumped by every garbage collection; a stabilise whose walk
        #: predates the sweep re-walks instead of committing records
        #: that may reference freed OIDs.
        self._gc_seq = 0
        #: The per-record codec new writes go through (``None``: raw).
        self._codec = parse_codec(compress)
        #: The encode phase's worker pool (``encode_workers=0`` keeps
        #: encoding inline on the stabilising thread).
        self._encoder = EncoderPool(workers=encode_workers)
        #: Cumulative stabilise-phase counters behind :meth:`stats`, now
        #: registry instruments (``stats()`` stays as the compat view).
        #: Every increment happens under the commit lock, which keeps
        #: them *exact* — N racing stabilises count exactly N — not just
        #: GIL-atomic-enough.  Instrument references are cached here so
        #: the commit path never takes the registry's creation mutex.
        m = self._metrics
        self._phase_counters = {
            "stabilize_count": m.counter("store_stabilize_total"),
            "walk_ns": m.counter("store_walk_ns_total"),
            "encode_ns": m.counter("store_encode_ns_total"),
            "commit_ns": m.counter("store_commit_ns_total"),
            "encoded_bytes": m.counter("store_encoded_bytes_total"),
            "compressed_bytes": m.counter("store_compressed_bytes_total"),
        }
        #: Lock-free identity-map hits on the seqlock fast path.  A
        #: plain int + pull gauge, *not* a Counter: the hottest read
        #: path in the store pays one ``+= 1``, identical with metrics
        #: on or off (a bound-method ``inc`` measurably slows the
        #: seqlock hit — see [B9]).
        self._fastpath_hits = 0
        m.gauge_fn("store_fastpath_hits_total",
                   lambda: self._fastpath_hits)
        # Pull gauges over the serving components' native counters.
        m.gauge_fn("store_lock_writer_wait_ns",
                   lambda: self._serve_lock.writer_wait_ns)
        m.gauge_fn("store_lock_write_acquires_total",
                   lambda: self._serve_lock.write_acquires)
        m.gauge_fn("store_cache_live_objects",
                   lambda: len(self._identity))
        m.gauge_fn("store_cache_demotions_total",
                   lambda: self._identity.demotions)
        m.gauge_fn("store_cache_weak_deaths_total",
                   lambda: self._identity.weak_deaths)
        m.gauge_fn("store_fault_plans_total",
                   lambda: self._planner.plans)
        m.gauge_fn("store_fault_waves_total",
                   lambda: self._planner.total_waves)
        m.gauge_fn("store_encode_chunks_total",
                   lambda: self._encoder.chunks_encoded)
        m.gauge_fn("store_encode_pool_ns_total",
                   lambda: self._encoder.encode_ns)
        m.gauge_fn("store_encode_raw_bytes_total",
                   lambda: self._encoder.raw_bytes)
        m.gauge_fn("store_encode_stored_bytes_total",
                   lambda: self._encoder.stored_bytes)
        #: Ticket of the most recent engine commit this store submitted
        #: (for awaiting an ``async``-policy engine's durability).
        self.last_commit = None
        #: Count of write-side operations (stabilise, garbage collection)
        #: currently in flight.  Read *without* a lock by the serving
        #: fast path (plain int loads are atomic under the GIL): while a
        #: commit is running, readers route through the shared lock —
        #: whose sleeping naturally throttles a reader stampede — so the
        #: committing thread and the engine worker threads it waits on
        #: are never starved of scheduler slots by spinning cache hits.
        self._write_busy = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def open(cls, directory: str,
             registry: ClassRegistry | None = None) -> "ObjectStore":
        """Open (creating if necessary) a file-backed store in
        ``directory``."""
        return cls(directory, registry)

    @classmethod
    def in_memory(cls,
                  registry: ClassRegistry | None = None) -> "ObjectStore":
        """An ephemeral store over a fresh
        :class:`~repro.store.engine.memory.MemoryEngine`; nothing survives
        :meth:`close`."""
        return cls(registry=registry, engine=MemoryEngine())

    @classmethod
    def from_url(cls, url: str,
                 registry: ClassRegistry | None = None) -> "ObjectStore":
        """Open a store over the backend a storage URL names.

        ``"file:/path"``, ``"sqlite:/path"``, ``"memory:"`` and
        ``"sharded:N:CHILD-URL"`` (plus bare paths, which mean the file
        backend) are understood — see
        :func:`repro.store.engine.factory.engine_from_url`.  Store-level
        query parameters are split off here; everything else tunes the
        engine.  ``?cache_objects=50000`` bounds the object cache,
        ``?compress=zlib:1`` (or ``lzma:0``) compresses new record
        writes per record, and ``?encode_workers=N`` sizes the stabilise
        encode pool (``0`` keeps encoding inline).  Telemetry defaults
        on: ``?metrics=0`` disables it, ``?slow_op_ms=N`` logs one
        structured line per engine op slower than N milliseconds.
        Tracing defaults off: ``?trace_sample=N`` head-samples one in N
        faults/stabilises into a span tree, ``?slow_trace_ms=N`` keeps
        every trace slower than N milliseconds, and ``?trace_log=PATH``
        appends kept spans to a JSONL sink.
        """
        from repro.store.engine.factory import (
            engine_from_url,
            split_store_url,
        )
        engine_url, store_options = split_store_url(url)
        return cls(registry=registry, engine=engine_from_url(engine_url),
                   **store_options)

    def close(self) -> None:
        """Flush and close; the store object is unusable afterwards.

        Closing an engine with a commit pipeline drains the pipeline
        first: every in-flight ``async`` commit is either durable when
        ``close`` returns or the pipeline's failure is raised — the
        store is marked closed either way, never half-open.
        """
        if self._closed:
            return
        self._closed = True
        self._encoder.close()
        self._engine.close()
        self._tracer.close()

    def flush(self) -> None:
        """Durability barrier: block until every commit this store has
        submitted is durable (a no-op over direct engines, whose
        ``apply`` already returns post-commit).  Re-raises the commit
        pipeline's failure if an ``async`` commit was lost."""
        self._check_open()
        self._engine.flush()

    def __enter__(self) -> "ObjectStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def engine(self) -> StorageEngine:
        """The storage engine this store runs over."""
        return self._engine

    @property
    def directory(self) -> Optional[str]:
        """The backing directory, or ``None`` for non-file engines."""
        return getattr(self._engine, "directory", None)

    @property
    def is_closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError("the store has been closed")

    # ------------------------------------------------------------------
    # roots
    # ------------------------------------------------------------------

    def set_root(self, name: str, obj: Any) -> Oid:
        """Bind ``obj`` as the persistent root called ``name``.

        The binding becomes durable at the next :meth:`stabilize`.
        """
        self._check_open()
        oid = self._ensure_oid(obj)
        self._roots[name] = oid
        return oid

    def get_root(self, name: str) -> Any:
        """The object bound to root ``name`` (fetched if not yet live)."""
        self._check_open()
        try:
            oid = self._roots[name]
        except KeyError:
            raise UnknownRootError(name) from None
        return self.object_for(oid)

    def delete_root(self, name: str) -> None:
        """Unbind a root; its objects survive until garbage collection."""
        self._check_open()
        if name not in self._roots:
            raise UnknownRootError(name)
        del self._roots[name]

    def has_root(self, name: str) -> bool:
        return name in self._roots

    def root_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._roots))

    def root_oid(self, name: str) -> Oid:
        try:
            return self._roots[name]
        except KeyError:
            raise UnknownRootError(name) from None

    def root_bindings(self) -> dict[str, Oid]:
        """A copy of the current name -> OID root table (transactions use
        this to snapshot and restore bindings without reaching into store
        internals)."""
        return dict(self._roots)

    def restore_root_bindings(self, bindings: dict[str, Oid]) -> None:
        """Replace the live root table (transaction abort)."""
        self._roots = dict(bindings)

    # ------------------------------------------------------------------
    # identity / oids
    # ------------------------------------------------------------------

    def oid_of(self, obj: Any) -> Optional[Oid]:
        """The OID of a live object, or ``None`` if it has none yet."""
        return self._identity.oid_for(obj)

    def _ensure_oid(self, obj: Any) -> Oid:
        oid = self._identity.oid_for(obj)
        if oid is None:
            if type(obj) is not PersistentWeakRef:
                # Validate up front that the object is storable at all, so
                # errors surface at set_root time rather than at stabilise.
                self._serializer.references_of(obj)
            with self._serve_lock.write_locked():
                oid = self._identity.oid_for(obj)
                if oid is None:
                    oid = self._allocator.allocate()
                    # No capacity enforcement here: a stabilise walk
                    # registering thousands of new (dirty, pinned)
                    # objects must not demote the clean tail one victim
                    # at a time mid-walk; the next fetch trims.
                    self._identity.add(oid, obj, enforce=False)
        return oid

    def is_stored(self, oid: Oid) -> bool:
        return self._engine.contains(oid)

    def stored_oids(self) -> tuple[Oid, ...]:
        return tuple(sorted(self._engine.oids()))

    # ------------------------------------------------------------------
    # fetch
    # ------------------------------------------------------------------

    def object_for(self, oid: Oid) -> Any:
        """Materialise (or return the live) object named by ``oid``.

        Fetch is closure-based: the whole subgraph below ``oid`` that is
        not yet live is decoded in two phases (shells, then fills), so
        shared structure and cycles come back exactly as stored.

        Thread-safe: the hot path (the object is live) is an optimistic
        *lock-free* probe — it samples the serve lock's seqlock epoch,
        reads the identity map (whose single operations are atomic),
        and accepts the result only if no write-locked section
        overlapped the probe.  A write section installs shells before
        filling them, so only a probe provably free of such overlap may
        trust what it saw; anything else falls back to the shared read
        lock.  Besides being faster, the lock-free hit keeps a stampede
        of cache-hit readers off the lock's condition mutex, whose
        convoy on few-core hosts can starve a concurrent stabilise for
        tens of seconds.  A fault plans its closure in engine-parallel
        waves *without* holding the lock — so N threads faulting
        disjoint subgraphs overlap their engine I/O — and installs the
        result under the write lock, re-validating against concurrent
        faults and evictions (losing a race costs a re-plan, never a
        torn object or a duplicate identity).
        """
        self._check_open()
        lock = self._serve_lock
        before = lock.seq
        # Optimistic only in the quiescent state: no serve-side writer
        # (odd seq) and no stabilise/GC in flight (`_write_busy`).  The
        # second condition is purely about scheduling, not safety — a
        # spinning cache-hit loop that never sleeps monopolises the
        # interpreter on few-core hosts, starving the committing thread
        # and the engine workers it hands off to; routing readers
        # through the shared lock while a commit runs puts them to
        # sleep on contention instead.
        if not before & 1 and not self._write_busy:
            live = self._identity.hit(oid)
            if live is not None and lock.seq == before:
                self._fastpath_hits += 1
                return live
        else:
            # A commit (or serve-side writer) is in flight.  Yield the
            # GIL for half a millisecond before queueing on the shared
            # lock: the throttle itself must *sleep*, not merely take a
            # different lock — N readers cycling any mutex still starve
            # the commit's cross-thread handoffs on few-core hosts.
            time.sleep(0.0005)
        with lock.read_locked():
            live = self._identity.object_for(oid)
        if live is not None:
            return live
        return self._fault(oid)

    def _is_live(self, oid: Oid) -> bool:
        """Planner liveness callback (no LRU side effects)."""
        return self._identity.peek(oid) is not None

    def _fault(self, oid: Oid) -> Any:
        with self._tracer.root("store.fault"):
            return self._fault_miss(oid)

    def _fault_miss(self, oid: Oid) -> Any:
        if not self._engine.contains(oid):
            raise UnknownOidError(int(oid))
        delay = 0.001
        for attempt in range(_FAULT_RETRIES):
            epoch = self._epoch
            try:
                plan = self._planner.closure([oid], self._is_live)
            except UnknownOidError:
                if attempt == _FAULT_RETRIES - 1:
                    raise
                # A reference did not resolve: either genuine corruption
                # (the retries re-raise it unchanged) or a transient torn
                # window — a sharded engine read mid-two-phase-commit, or
                # a GC sweep racing this plan.  Back off briefly and
                # re-plan.
                time.sleep(delay)
                delay *= 2
                continue
            with self._serve_lock.write_locked():
                obj = self._install_plan(oid, plan, epoch)
            if obj is not None:
                return obj
            # The plan went stale (a concurrent refresh/eviction removed
            # an object the plan assumed live, or the epoch moved).
        # Final attempt: plan *and* install under the write lock, where
        # nothing can shift underneath the plan.
        with self._serve_lock.write_locked():
            plan = self._planner.closure([oid], self._is_live)
            obj = self._install_plan(oid, plan, self._epoch)
            if obj is None:  # pragma: no cover - exclusive plan is stable
                raise UnknownOidError(int(oid))
            return obj

    def _install_plan(self, target: Oid, plan: FetchPlan,
                      epoch: int) -> Optional[Any]:
        """Install a planned closure into the identity map; returns the
        target object, or ``None`` when the plan is stale and the caller
        must re-plan.  Caller holds the write lock.
        """
        if epoch != self._epoch:
            return None
        live = self._identity.peek(target)
        if live is not None:
            return live  # another thread faulted it first
        # Skip records that went live since planning; what remains must
        # resolve every reference within itself or the live map, or the
        # plan raced an eviction and is stale.  Live dependencies are
        # *pinned* (a strong reference held for the rest of the install)
        # — a weak-tier dependency judged alive here could otherwise be
        # collected before phase 2 resolves it, since object death needs
        # no lock.
        needed: dict[Oid, tuple[bytes, Record]] = {}
        for record_oid, entry in plan.records.items():
            if self._identity.peek(record_oid) is None:
                needed[record_oid] = entry
        if target not in needed:
            return None
        pinned: dict[Oid, Any] = {}
        for record_oid, (_, record) in needed.items():
            for ref in record_refs(record, include_weak=True):
                if ref in needed or ref in pinned:
                    continue
                live_ref = self._identity.peek(ref)
                if live_ref is None:
                    return None
                pinned[ref] = live_ref
        installed: list[Oid] = []
        try:
            # Phase 1: shells.  Capacity enforcement is deferred to the
            # end of the install: demoting an LRU victim mid-install
            # could kill an object a later fill still resolves.
            for record_oid, (_, record) in needed.items():
                self._identity.add(record_oid,
                                   self._serializer.make_shell(record),
                                   enforce=False)
                installed.append(record_oid)
            # Phase 2: fill.
            for record_oid, (_, record) in needed.items():
                shell = self._identity.peek(record_oid)
                self._serializer.fill_shell(shell, record, self._resolve)
        except BaseException:
            # A failed install (schema mismatch, converter error) must
            # not leave half-filled shells behind: a later fetch would
            # find them "live" and serve torn objects forever.
            for record_oid in installed:
                self._identity.evict(record_oid)
                self._shadow.pop(record_oid, None)
            raise
        # Phase 3: freshly materialised objects are clean by construction
        # (their live state *is* the stored state), so seed the dirty
        # tracker — unless an evolution converter ran, in which case the
        # next stabilise must rewrite the record under the new schema.
        for record_oid, (raw, record) in needed.items():
            self._stored_sig[record_oid] = (len(raw), zlib.crc32(raw))
            obj = self._identity.peek(record_oid)
            snap = self._snapshot_if_clean(obj, record)
            if snap is not None:
                self._shadow[record_oid] = snap
        # Hold the target strongly before cache maintenance: were it
        # demoted here, nothing else would pin it yet and the weak
        # reference could die before the caller ever saw the object.
        result = self._identity.peek(target)
        self._identity.enforce_capacity()
        return result

    def _snapshot_if_clean(self, obj: Any, record: Record) -> Any:
        """A snapshot for a just-fetched object, or ``None`` when the live
        state already differs from the stored record (schema conversion)."""
        if record.kind == KIND_WEAKREF:
            return None
        snap = self._serializer.snapshot(obj)
        if snap is not None and snap[0] == "instance" \
                and snap[1] != record.fingerprint:
            return None
        return snap

    def _resolve(self, oid: Oid) -> Any:
        obj = self._identity.peek(oid)
        if obj is None:
            raise UnknownOidError(int(oid))
        return obj

    def _read_record(self, oid: Oid) -> Record:
        # Unwrap any codec frame first: stored signatures are over the
        # raw record bytes whatever codec wrote them.
        raw = unwrap_record(self._engine.read(oid))
        self._stored_sig[oid] = (len(raw), zlib.crc32(raw))
        return Record.from_bytes(raw)

    def refresh(self, obj: Any) -> Any:
        """Discard in-memory state of ``obj``'s OID and re-fetch from disk.

        Evict-and-refault is one atomic step under the write lock: a
        concurrent ``object_for`` either sees the old object (before) or
        the re-fetched one (after) — it can no longer slip between the
        eviction and the re-fetch and resurrect the stale shell.
        """
        self._check_open()
        with self._serve_lock.write_locked():
            oid = self._identity.oid_for(obj)
            if oid is None or not self._engine.contains(oid):
                raise UnknownOidError("object is not stored")
            self._identity.evict(oid)
            self._shadow.pop(oid, None)
            plan = self._planner.closure([oid], self._is_live)
            fresh = self._install_plan(oid, plan, self._epoch)
            if fresh is None:  # pragma: no cover - exclusive plan is stable
                raise UnknownOidError(int(oid))
            return fresh

    def evict_all(self) -> None:
        """Drop every live object; subsequent fetches re-read from disk.

        Used by transaction abort: live objects mutated inside the aborted
        transaction become unreachable through the store, and fresh fetches
        observe the last stabilised state.
        """
        with self._serve_lock.write_locked():
            self._identity.clear()
            self._shadow.clear()
            self._epoch += 1

    # -- bounded-cache policy ------------------------------------------

    def _may_demote(self, oid: Oid, obj: Any) -> bool:
        """Whether an LRU victim may leave the strong set: only objects
        whose current state still matches their last-stored state —
        unstabilised mutations must never become collectable.

        The cheap test is the clean-state snapshot; an object without
        one (promoted back from the weak tier — demotion dropped its
        snapshot — or registered by a walk) is re-encoded and its bytes
        compared against the stored signature instead.  Either check
        errs towards pinning.
        """
        shadow = self._shadow.get(oid)
        if shadow is not None:
            return snapshots_equal(shadow, self._serializer.snapshot(obj))
        sig = self._stored_sig.get(oid)
        if sig is None:
            return False  # never stored (or sig not yet seen): pin it

        def known_oid(child: Any) -> Oid:
            child_oid = self._identity.oid_for(child)
            if child_oid is None:
                # References an object the store has never seen: the
                # victim must be dirty (a new edge).
                raise LookupError(int(oid))
            return child_oid

        try:
            raw = self._serializer.encode_object(oid, obj, known_oid) \
                .to_bytes()
        except Exception:
            return False
        return (len(raw), zlib.crc32(raw)) == sig

    def _on_demoted(self, oid: Oid) -> None:
        """A demoted object's snapshot would pin its children (snapshots
        hold plain references); drop it — if the object survives and is
        walked again it is simply re-encoded, and the byte-signature
        filter suppresses the redundant write."""
        self._shadow.pop(oid, None)

    # ------------------------------------------------------------------
    # stabilisation (checkpoint)
    # ------------------------------------------------------------------

    def stabilize(self) -> int:
        """Make the state reachable from the roots durable; returns the
        number of records written.

        This is PJama's ``stabilizeAll``: persistence by reachability.  The
        live graph is walked from the root objects along strong edges, but
        only *dirty* nodes — mutated or newly reached since the last
        stabilise, per the snapshot tracker — are re-serialised.  Changed
        records go to the engine as one atomic batch.

        The work runs in **three phases** (the write-path twin of the
        read path's plan-outside-the-lock shape):

        1. *Walk* — under the commit lock: reachability, dirty detection
           and flattening (OID assignment needs the identity map), which
           yields the dirty ``(oid, record)`` set and fresh shadows.
        2. *Encode* — no lock held: the dirty set is chunked onto the
           encoder pool, where ``to_bytes()`` + crc signature + optional
           per-record compression run; encoded chunks stream into the
           write batch in completion order.  crc and compression release
           the GIL, so encode work overlaps other threads' walks and
           commit waits.
        3. *Commit* — back under the lock: the batch is submitted and
           the optimistic bookkeeping installed, with the pre-commit
           values kept for rollback.  Per-OID commit sequence numbers
           (stamped during the walk) resolve races between stabilises
           that reach this phase out of walk order, and a garbage
           collection between walk and commit forces a re-walk.

        Thread-safe: over an engine with a ``group`` commit pipeline,
        stabilises from several threads coalesce into shared group
        commits because each thread waits for durability outside the
        lock.  Over an ``async`` pipeline the call returns once the
        batch is submitted; ``self.last_commit`` is its durability
        ticket and :meth:`flush` the barrier.
        """
        self._check_open()
        with self._tracer.root("store.stabilize"):
            return self._stabilize_traced()

    def _stabilize_traced(self) -> int:
        """The stabilise loop proper, run under :meth:`stabilize`'s root
        trace scope (the shared null scope when tracing is off)."""
        with self._commit_lock:
            self._write_busy += 1
        try:
            while True:
                outcome = self._stabilize_once()
                if outcome is None:
                    # A garbage collection slipped between our walk and
                    # commit phases: the encoded records could reference
                    # freed OIDs.  Rare (collections take the commit lock
                    # for their whole mark/sweep), so simply re-walk.
                    continue
                written, seq, ticket, rollback = outcome
                if ticket is not None and not self._engine.asynchronous:
                    # The durability wait happens with no lock held, so
                    # stabilises from several threads coalesce into
                    # shared group commits over a pipelined engine.
                    wait_start = time.perf_counter_ns()
                    try:
                        ticket.result()
                    except BaseException:
                        with self._commit_lock:
                            self._rollback_bookkeeping(seq, *rollback)
                        raise
                    with self._commit_lock:
                        self._phase_counters["commit_ns"].inc(
                            time.perf_counter_ns() - wait_start)
                return written
        finally:
            with self._commit_lock:
                self._write_busy -= 1

    def _stabilize_once(self):
        """One walk/encode/commit attempt.

        Returns ``None`` when a concurrent garbage collection
        invalidated the walk (the caller must retry), else a
        ``(written, seq, ticket, rollback)`` tuple — ``ticket`` is the
        durability ticket of the submitted batch (``None`` when the
        checkpoint was clean) and ``rollback`` the pre-commit
        bookkeeping for a failed wait.

        Small dirty sets (at most one encode chunk's worth) run all
        three phases under one continuous hold of the commit lock:
        there is no encode parallelism to win, and the continuous hold
        keeps the incremental-commit profile identical to the
        pre-pipeline write path.  Only dirty sets large enough to
        chunk release the lock for the encode phase.
        """
        # ---- phase 1: walk (commit lock held, no engine I/O) ----------
        walk_start = time.perf_counter_ns()
        with self._commit_lock:
            gc_seq = self._gc_seq
            self._stabilize_seq += 1
            seq = self._stabilize_seq
            reachable, records, fresh_shadows = self._flatten_from_roots()
            # Walk-time stored signatures drive the encode phase's
            # unchanged-bytes filter; the stamps make this walk the
            # current owner of its dirty OIDs.
            prev_sigs = {oid: self._stored_sig.get(oid) for oid in records}
            for oid in records:
                self._commit_seq[oid] = seq
            walk_ns = time.perf_counter_ns() - walk_start
            active = current_span()
            if active is not None:
                active.child("store.walk", time.time_ns() - walk_ns,
                             walk_ns)
            if (self._encoder.workers == 0
                    or len(records) <= self._encoder.chunk_records):
                # Small dirty set: encode inline under the same lock hold
                # — a lock bounce costs more than the encode itself.
                return self._encode_and_commit(seq, gc_seq, records,
                                               prev_sigs, fresh_shadows,
                                               walk_ns)
        return self._encode_and_commit(seq, gc_seq, records, prev_sigs,
                                       fresh_shadows, walk_ns)

    def _encode_and_commit(self, seq, gc_seq, records, prev_sigs,
                           fresh_shadows, walk_ns):
        """Phases 2 and 3 of one stabilise attempt.  Called either under
        the commit lock (small dirty set — the phase-3 ``with`` is a
        reentrant no-op) or without it (pipelined encode)."""
        # ---- phase 2: encode (chunks stream in) -----------------------
        encode_start = time.perf_counter_ns()
        batch = WriteBatch()
        written_sigs: dict[Oid, tuple[int, int]] = {}
        encoded_bytes = 0
        stored_bytes = 0
        group_of = getattr(self._engine, "shard_of", None)
        try:
            for chunk in self._encoder.encode_stream(records.values(),
                                                     self._codec,
                                                     group_of=group_of):
                for item in chunk:
                    encoded_bytes += item.raw_len
                    stored_bytes += len(item.stored)
                    if prev_sigs[item.oid] == item.sig:
                        # Bytes identical to the stored record (a
                        # conservative snapshot fired): nothing to write.
                        continue
                    batch.write(item.oid, item.stored)
                    written_sigs[item.oid] = item.sig
        except BaseException:
            # An aborted encode must leave no trace: signatures and
            # shadows were never touched, so only our walk stamps need
            # releasing (entries a later walk re-stamped are theirs).
            with self._commit_lock:
                for oid in records:
                    if self._commit_seq.get(oid) == seq:
                        del self._commit_seq[oid]
            raise
        encode_ns = time.perf_counter_ns() - encode_start
        active = current_span()
        if active is not None:
            active.child("store.encode", time.time_ns() - encode_ns,
                         encode_ns)

        # ---- phase 3: commit (commit lock re-taken) -------------------
        commit_start = time.perf_counter_ns()
        with trace_span("store.commit"), self._commit_lock:
            if self._gc_seq != gc_seq:
                for oid in records:
                    if self._commit_seq.get(oid) == seq:
                        del self._commit_seq[oid]
                return None
            # OIDs a later walk collected after ours: that stabilise
            # observed fresher state, so our encoding must not land.
            superseded = {oid for oid in records
                          if self._commit_seq.get(oid, seq) > seq}
            if superseded:
                batch.writes = [(oid, raw) for oid, raw in batch.writes
                                if oid not in superseded]
                written_sigs = {oid: sig for oid, sig in written_sigs.items()
                                if oid not in superseded}
                fresh_shadows = {oid: snap
                                 for oid, snap in fresh_shadows.items()
                                 if oid not in superseded}
            weak_targets = {
                oid: (record.payload.oid
                      if isinstance(record.payload, Ref) else None)
                for oid, record in records.items()
                if record.kind == KIND_WEAKREF and oid not in superseded
            }
            # Roots and the allocator cursor are compared against the
            # engine *here*, not at walk time: a concurrent stabilise
            # may have committed newer values since our walk.
            if self._roots != self._engine.roots():
                batch.set_roots(self._roots)
            if int(self._allocator.next_oid) != self._engine.next_oid:
                batch.advance_next_oid(int(self._allocator.next_oid))
            counters = self._phase_counters
            counters["stabilize_count"].inc()
            counters["walk_ns"].inc(walk_ns)
            counters["encode_ns"].inc(encode_ns)
            counters["encoded_bytes"].inc(encoded_bytes)
            counters["compressed_bytes"].inc(stored_bytes)
            # A fully-clean checkpoint (no writes, roots and allocator
            # cursor already durable) skips the engine entirely — no
            # fsyncs, no metadata rewrite.
            if batch.is_empty:
                self._shadow.update(fresh_shadows)
                self._weak_stored.update(weak_targets)
                counters["commit_ns"].inc(
                    time.perf_counter_ns() - commit_start)
                return 0, seq, None, None
            # Bookkeeping is committed optimistically under the lock (the
            # engine's pending overlay already serves the new state to
            # readers); the pre-commit values are kept so a failed commit
            # re-dirties exactly what it covered.
            rollback_sigs = {oid: prev_sigs[oid] for oid in written_sigs}
            prev_shadows = {oid: self._shadow.get(oid)
                            for oid in fresh_shadows}
            prev_weak = {oid: self._weak_stored.get(oid, _WEAK_UNKNOWN)
                         for oid in weak_targets}
            ticket = self._engine.apply_async(batch)
            self.last_commit = ticket
            self._stored_sig.update(written_sigs)
            self._shadow.update(fresh_shadows)
            self._weak_stored.update(weak_targets)
            counters["commit_ns"].inc(time.perf_counter_ns() - commit_start)
        rollback = (rollback_sigs, prev_shadows, prev_weak)
        return len(batch.writes), seq, ticket, rollback

    def _rollback_bookkeeping(self, seq: int,
                              rollback_sigs: dict[Oid, Any],
                              prev_shadows: dict[Oid, Any],
                              prev_weak: dict[Oid, Any]) -> None:
        """Undo one failed commit's optimistic bookkeeping (caller holds
        the commit lock).  Sequence-guarded: an OID a later walk stamped
        belongs to that stabilise now — its bookkeeping stands."""
        for oid, sig in rollback_sigs.items():
            if self._commit_seq.get(oid) != seq:
                continue
            if sig is None:
                self._stored_sig.pop(oid, None)
            else:
                self._stored_sig[oid] = sig
        for oid, snap in prev_shadows.items():
            if self._commit_seq.get(oid) != seq:
                continue
            if snap is None:
                self._shadow.pop(oid, None)
            else:
                self._shadow[oid] = snap
        for oid, target in prev_weak.items():
            if self._commit_seq.get(oid) != seq:
                continue
            if target is _WEAK_UNKNOWN:
                self._weak_stored.pop(oid, None)
            else:
                self._weak_stored[oid] = target

    def _flatten_from_roots(self) -> tuple[set[Oid], dict[Oid, Record],
                                           dict[Oid, Any]]:
        """Walk the live graph from the roots; returns (reachable-oids,
        records-for-dirty-live-nodes, snapshots-to-commit-on-success).

        Clean nodes (snapshot matches the state stored at the last
        stabilise) are traversed but not re-serialised.  Roots that are
        not live (never fetched this session) contribute their *stored*
        subgraph to the reachable set without being decoded.
        """
        records: dict[Oid, Record] = {}
        fresh_shadows: dict[Oid, Any] = {}
        reachable: set[Oid] = set()
        live_worklist: list[Any] = []
        stored_worklist: list[Oid] = []

        # Snapshot the root table: set_root from another thread must not
        # resize the dict under this iteration.  peek() rather than
        # object_for(): a full walk must not churn the bounded cache's
        # recency order.
        for oid in list(self._roots.values()):
            obj = self._identity.peek(oid)
            if obj is not None:
                live_worklist.append(obj)
            else:
                stored_worklist.append(oid)

        seen_ids: set[int] = set()
        weakrefs: list[tuple[Oid, PersistentWeakRef]] = []

        def walk_live(start: Any) -> None:
            pending = [start]
            while pending:
                obj = pending.pop()
                if id(obj) in seen_ids:
                    continue
                seen_ids.add(id(obj))
                oid = self._ensure_oid(obj)
                reachable.add(oid)
                if isinstance(obj, PersistentWeakRef):
                    weakrefs.append((oid, obj))
                    continue
                pending.extend(self._serializer.references_of(obj))
                old = self._shadow.get(oid)
                if old is not None:
                    snap = self._serializer.snapshot(obj)
                    if snapshots_equal(old, snap):
                        continue  # clean: stored record still current
                    fresh_shadows[oid] = snap
                else:
                    fresh_shadows[oid] = self._serializer.snapshot(obj)
                self.encode_count += 1
                records[oid] = self._serializer.encode_object(
                    oid, obj, self._ensure_oid
                )

        while live_worklist:
            walk_live(live_worklist.pop())

        # Stored-only roots: mark their stored closure reachable.  If the
        # walk reaches an OID whose object *is* live (fetched and possibly
        # mutated), switch back to the live walk so its current state is
        # re-encoded — otherwise mutations behind a never-fetched root
        # would silently miss the checkpoint.
        seen_stored: set[Oid] = set()
        while stored_worklist:
            oid = stored_worklist.pop()
            if oid in seen_stored or oid in reachable:
                continue
            live = self._identity.peek(oid)
            if live is not None:
                walk_live(live)
                continue
            seen_stored.add(oid)
            reachable.add(oid)
            if self._engine.contains(oid):
                for ref in record_refs(self._read_record(oid),
                                       include_weak=False):
                    stored_worklist.append(ref)

        # Weak references never pull their target into persistence: the
        # stored edge points at the target only if it is independently
        # persistent (already stored or strongly reachable this round).
        # This runs *after* both walks — the stored-root walk can switch
        # back into the live walk and surface more weakrefs, and every
        # one of them needs a record or its parent would reference a
        # missing OID.  A weakref whose stored target (per the
        # ``_weak_stored`` cache) is unchanged since its last commit is
        # skipped outright — previously every stabilise rebuilt and
        # re-serialised every live weakref just for the byte-signature
        # filter to discover it unchanged.
        for oid, weakref in weakrefs:
            target = weakref.get()
            target_oid = None
            if target is not None:
                candidate = self._identity.oid_for(target)
                if candidate is not None and (candidate in reachable
                                              or self._engine.contains(candidate)):
                    target_oid = candidate
            if (self._weak_stored.get(oid, _WEAK_UNKNOWN) == target_oid
                    and oid in self._stored_sig):
                continue  # stored weak record already points at target_oid
            self.weak_rebuilds += 1
            payload = Ref(target_oid) if target_oid is not None else None
            records[oid] = Record(oid, KIND_WEAKREF, "", "", payload)
        return reachable, records, fresh_shadows

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------

    def collect_garbage(self) -> int:
        """Disk garbage collection: free stored objects unreachable from the
        roots along strong edges, and clear weak references to them.

        Returns the number of freed objects.  Mirrors the paper's Figure 7
        requirement: hyper-programs held only through weak references become
        collectable once no strong user references remain.

        Holds the commit lock for the whole mark/sweep: a stabilise
        committing fresh objects between the mark walk and the victim
        sweep would get them deleted as garbage.
        """
        self._check_open()
        with self._commit_lock:
            self._write_busy += 1
            try:
                return self._collect_garbage_locked()
            finally:
                self._write_busy -= 1

    def _collect_garbage_locked(self) -> int:
        # Bring the durable state up to date first, so the mark phase can
        # run purely over stored records: collecting against a stale disk
        # image could free objects the durable graph still references.
        self.stabilize()
        marked: set[Oid] = set()
        worklist: list[Oid] = list(self._roots.values())
        while worklist:
            oid = worklist.pop()
            if oid in marked:
                continue
            marked.add(oid)
            if self._engine.contains(oid):
                for ref in record_refs(self._read_record(oid),
                                       include_weak=False):
                    if ref not in marked:
                        worklist.append(ref)

        victims = [oid for oid in self._engine.oids() if oid not in marked]
        batch = WriteBatch()
        freed = set(victims)
        for oid in victims:
            batch.delete(oid)
        # Clear stored weak references whose targets are being freed (or
        # were already missing).
        for oid in self._engine.oids():
            if oid in freed:
                continue
            record = self._read_record(oid)
            if record.kind == KIND_WEAKREF and isinstance(record.payload, Ref):
                target = record.payload.oid
                if target in freed or not self._engine.contains(target):
                    cleared = Record(oid, KIND_WEAKREF, "", "", None)
                    batch.write(oid, cleared.to_bytes())
                    live = self._identity.peek(oid)
                    if isinstance(live, PersistentWeakRef):
                        live.clear()
        # One atomic batch: deletions and weak-reference clears commit (and
        # recover) together, so a crash cannot leave a cleared weakref
        # without its deletion or vice versa.
        if not batch.is_empty:
            self._engine.apply(batch)
        for oid, raw in batch.writes:
            self._stored_sig[oid] = (len(raw), zlib.crc32(raw))
            # Every write here is a cleared weak record.
            self._weak_stored[oid] = None
        # Invalidate any stabilise caught between its walk and commit
        # phases: its encoded records may reference OIDs this sweep just
        # freed, so it must re-walk (see ``_stabilize_once``).
        self._gc_seq += 1
        # Evictions happen exclusively against the serving threads, and
        # the epoch moves: a fault whose plan predates this sweep could
        # otherwise install freed records from its stale reads.
        with self._serve_lock.write_locked():
            # Clear live weak references pointing at freed objects —
            # before the victims leave the identity map, while their
            # targets still resolve to OIDs.
            for oid, obj in self._identity.items():
                if isinstance(obj, PersistentWeakRef) \
                        and obj.get() is not None:
                    target_oid = self._identity.oid_for(obj.get())
                    if target_oid is not None and target_oid in freed:
                        obj.clear()
            for oid in victims:
                self._identity.evict(oid)
                self._shadow.pop(oid, None)
                self._stored_sig.pop(oid, None)
                self._weak_stored.pop(oid, None)
                self._commit_seq.pop(oid, None)
            self._epoch += 1
        # Reclaim space the deletions left behind.
        self._engine.compact()
        return len(victims)

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------

    def transaction(self) -> "Transaction":
        """A commit-on-success / revert-on-failure scope around mutations.

        See :class:`repro.store.transactions.Transaction`.
        """
        from repro.store.transactions import Transaction
        return Transaction(self)

    @property
    def active_transaction(self):
        """The currently open transaction, or ``None``."""
        return self._active_txn

    def _begin_transaction(self, txn: Any) -> None:
        from repro.errors import TransactionError
        if self._active_txn is not None:
            raise TransactionError("store already has an active transaction")
        self._active_txn = txn

    def _end_transaction(self, txn: Any) -> None:
        if self._active_txn is txn:
            self._active_txn = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def statistics(self) -> StoreStatistics:
        return StoreStatistics(
            object_count=self._engine.object_count,
            root_count=len(self._roots),
            live_count=len(self._identity),
            heap_pages=self._engine.page_count,
            next_oid=int(self._allocator.next_oid),
        )

    def stats(self) -> dict[str, int]:
        """Stabilise-phase counters, cumulative over the store's life.

        ``walk_ns`` / ``encode_ns`` / ``commit_ns`` attribute each
        stabilise's wall time to its three phases (commit includes the
        durability wait on synchronous engines); ``encoded_bytes`` is
        the raw serialised volume and ``compressed_bytes`` the volume
        actually handed to the engine (equal when no codec is in force
        or compression never won).  ``encode_count`` counts dirty
        non-weak records serialised by walks; ``weak_rebuilds`` counts
        weak records rebuilt because their stored target changed.

        This is the compatibility view over the store's
        :class:`~repro.store.obs.MetricsRegistry` counters; with
        ``metrics=False`` the phase counters are no-ops and read zero.
        """
        with self._commit_lock:
            out = {name: counter.value
                   for name, counter in self._phase_counters.items()}
        out["encode_count"] = self.encode_count
        out["weak_rebuilds"] = self.weak_rebuilds
        return out

    @property
    def metrics_registry(self) -> MetricsRegistry:
        """The store's telemetry registry (shared with its engine
        wrapper; disabled under ``metrics=False``)."""
        return self._metrics

    def metrics(self) -> dict:
        """A plain-dict snapshot of every store and engine instrument
        (see :meth:`repro.store.obs.MetricsRegistry.snapshot`)."""
        return self._metrics.snapshot()

    @property
    def tracer(self) -> Tracer:
        """The store's span tracer (inert unless ``trace_sample``,
        ``slow_trace_ms`` or ``trace_log`` configured it).  Kept traces
        land in ``tracer.spans`` (a :class:`~repro.store.obs.SpanLog`)
        and, when a sink path was given, in the JSONL trace log."""
        return self._tracer

    def stored_record(self, oid: Oid) -> Record:
        """The stored record for an OID (browser / debugging use)."""
        self._check_open()
        if not self._engine.contains(oid):
            raise UnknownOidError(int(oid))
        return self._read_record(oid)

    def verify_referential_integrity(self) -> list[str]:
        """Check that every stored reference resolves; returns problems found
        (empty list means the store is sound)."""
        problems: list[str] = []
        for oid in self._engine.oids():
            record = self._read_record(oid)
            for ref in record_refs(record, include_weak=True):
                if not self._engine.contains(ref):
                    problems.append(
                        f"oid {int(oid)} references missing oid {int(ref)}"
                    )
        for name, oid in self._roots.items():
            if not self._engine.contains(oid) and \
                    self._identity.peek(oid) is None:
                problems.append(f"root {name!r} names missing oid {int(oid)}")
        return problems
