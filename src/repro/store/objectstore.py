"""The orthogonally persistent object store.

This is the PJama analogue: "a persistent store with root(s), reachability
and referential integrity" (paper, Section 1).  Key behaviours:

* **Roots** — named entry points (:meth:`ObjectStore.set_root`).
* **Persistence by reachability** — :meth:`stabilize` makes durable exactly
  the storable nodes reachable from the roots by strong edges; no explicit
  "save this object" calls are needed for interior objects.
* **Referential integrity** — stored objects refer to each other by OID,
  OIDs are never reused, and garbage collection only frees what is
  unreachable, so a stored reference always resolves.
* **Identity** — fetching an OID twice returns the same live object
  (:class:`~repro.store.cache.IdentityMap`).
* **Typed fidelity** — instances are rebuilt from their *registered* class
  after a schema-fingerprint check (:mod:`repro.store.registry`).
* **Weak references** — :class:`~repro.store.weakrefs.PersistentWeakRef`
  edges do not make their target reachable; the collector clears dead ones
  (paper Figure 7).
* **Crash safety** — stabilisation is atomic through the write-ahead log
  (:mod:`repro.store.wal`).

The store lives in a directory holding ``store.heap``, ``store.wal`` and
``store.meta``.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any, Callable, Iterable, Optional

from repro.errors import (
    StoreClosedError,
    UnknownOidError,
    UnknownRootError,
)
from repro.store.cache import IdentityMap
from repro.store.heap import HeapFile, RecordId
from repro.store.oids import NULL_OID, Oid, OidAllocator
from repro.store.registry import ClassRegistry, default_registry
from repro.store.serializer import (
    KIND_WEAKREF,
    Record,
    Ref,
    Serializer,
)
from repro.store.wal import (
    ENTRY_BEGIN,
    ENTRY_DELETE,
    ENTRY_NEXT_OID,
    ENTRY_ROOT,
    ENTRY_UNROOT,
    ENTRY_WRITE,
    LogEntry,
    WriteAheadLog,
)
from repro.store.weakrefs import PersistentWeakRef

_HEAP_NAME = "store.heap"
_WAL_NAME = "store.wal"
_META_NAME = "store.meta"


def record_refs(record: Record, include_weak: bool = True) -> list[Oid]:
    """All OIDs referenced by a record (optionally excluding weak edges)."""
    if record.kind == KIND_WEAKREF:
        if include_weak and isinstance(record.payload, Ref):
            return [record.payload.oid]
        return []
    refs: list[Oid] = []

    def visit(value: Any) -> None:
        if isinstance(value, Ref):
            refs.append(value.oid)
        elif type(value) is tuple or type(value) is frozenset:
            for item in value:
                visit(item)

    payload = record.payload
    if isinstance(payload, dict):
        for value in payload.values():
            visit(value)
    elif isinstance(payload, list):
        # List/set records hold values; dict records hold (key, value)
        # tuples — visit() recurses into tuples either way.
        for item in payload:
            visit(item)
    return refs


class StoreStatistics:
    """A point-in-time summary of store contents (used by the browser)."""

    def __init__(self, object_count: int, root_count: int, live_count: int,
                 heap_pages: int, next_oid: int):
        self.object_count = object_count
        self.root_count = root_count
        self.live_count = live_count
        self.heap_pages = heap_pages
        self.next_oid = next_oid

    def __repr__(self) -> str:
        return (f"StoreStatistics(objects={self.object_count}, "
                f"roots={self.root_count}, live={self.live_count}, "
                f"pages={self.heap_pages}, next_oid={self.next_oid})")


class ObjectStore:
    """An orthogonally persistent object store over a directory."""

    def __init__(self, directory: str,
                 registry: ClassRegistry | None = None):
        self._directory = directory
        os.makedirs(directory, exist_ok=True)
        self.registry = registry if registry is not None else default_registry
        self._serializer = Serializer(self.registry)
        self._heap = HeapFile(os.path.join(directory, _HEAP_NAME))
        self._wal = WriteAheadLog(os.path.join(directory, _WAL_NAME))
        self._identity = IdentityMap()
        self._allocator = OidAllocator()
        self._roots: dict[str, Oid] = {}
        self._table: dict[Oid, RecordId] = {}
        self._stored_sig: dict[Oid, tuple[int, int]] = {}  # oid -> (len, crc)
        self._txn_counter = 0
        self._active_txn = None
        self._closed = False
        self._load_metadata()
        self._recover()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def open(cls, directory: str,
             registry: ClassRegistry | None = None) -> "ObjectStore":
        """Open (creating if necessary) the store in ``directory``."""
        return cls(directory, registry)

    def close(self) -> None:
        """Flush and close; the store object is unusable afterwards."""
        if self._closed:
            return
        self._heap.close()
        self._wal.close()
        self._closed = True

    def __enter__(self) -> "ObjectStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def directory(self) -> str:
        return self._directory

    @property
    def is_closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError("the store has been closed")

    # ------------------------------------------------------------------
    # metadata snapshot
    # ------------------------------------------------------------------

    def _meta_path(self) -> str:
        return os.path.join(self._directory, _META_NAME)

    def _load_metadata(self) -> None:
        path = self._meta_path()
        if not os.path.exists(path):
            return
        with open(path, "r", encoding="utf-8") as fh:
            meta = json.load(fh)
        self._allocator.advance_to(meta["next_oid"])
        self._roots = {name: Oid(oid) for name, oid in meta["roots"].items()}
        self._table = {Oid(int(oid)): RecordId(rid[0], rid[1])
                       for oid, rid in meta["objects"].items()}
        self._stored_sig = {Oid(int(oid)): (sig[0], sig[1])
                            for oid, sig in meta.get("signatures", {}).items()}

    def _write_metadata(self) -> None:
        meta = {
            "format": 1,
            "next_oid": int(self._allocator.next_oid),
            "roots": {name: int(oid) for name, oid in self._roots.items()},
            "objects": {str(int(oid)): [rid.page_no, rid.slot]
                        for oid, rid in self._table.items()},
            "signatures": {str(int(oid)): [sig[0], sig[1]]
                           for oid, sig in self._stored_sig.items()},
        }
        path = self._meta_path()
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(meta, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def _recover(self) -> None:
        """Replay committed WAL batches over the metadata snapshot."""
        batches = self._wal.committed_batches()
        if not batches:
            self._wal.truncate()
            return
        for batch in batches:
            for entry in batch:
                if entry.kind == ENTRY_WRITE:
                    self._apply_write(entry.oid, entry.data)
                elif entry.kind == ENTRY_DELETE:
                    self._apply_delete(entry.oid)
                elif entry.kind == ENTRY_ROOT:
                    self._roots[entry.name] = entry.oid
                elif entry.kind == ENTRY_UNROOT:
                    self._roots.pop(entry.name, None)
                elif entry.kind == ENTRY_NEXT_OID:
                    self._allocator.advance_to(int(entry.oid))
        self._heap.flush()
        self._write_metadata()
        self._wal.truncate()

    def _apply_write(self, oid: Oid, record_bytes: bytes) -> None:
        old = self._table.pop(oid, None)
        if old is not None:
            self._heap.delete(old)
        self._table[oid] = self._heap.insert(record_bytes)
        self._stored_sig[oid] = (len(record_bytes), zlib.crc32(record_bytes))

    def _apply_delete(self, oid: Oid) -> None:
        rid = self._table.pop(oid, None)
        if rid is not None:
            self._heap.delete(rid)
        self._stored_sig.pop(oid, None)

    # ------------------------------------------------------------------
    # roots
    # ------------------------------------------------------------------

    def set_root(self, name: str, obj: Any) -> Oid:
        """Bind ``obj`` as the persistent root called ``name``.

        The binding becomes durable at the next :meth:`stabilize`.
        """
        self._check_open()
        oid = self._ensure_oid(obj)
        self._roots[name] = oid
        return oid

    def get_root(self, name: str) -> Any:
        """The object bound to root ``name`` (fetched if not yet live)."""
        self._check_open()
        try:
            oid = self._roots[name]
        except KeyError:
            raise UnknownRootError(name) from None
        return self.object_for(oid)

    def delete_root(self, name: str) -> None:
        """Unbind a root; its objects survive until garbage collection."""
        self._check_open()
        if name not in self._roots:
            raise UnknownRootError(name)
        del self._roots[name]

    def has_root(self, name: str) -> bool:
        return name in self._roots

    def root_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._roots))

    def root_oid(self, name: str) -> Oid:
        try:
            return self._roots[name]
        except KeyError:
            raise UnknownRootError(name) from None

    # ------------------------------------------------------------------
    # identity / oids
    # ------------------------------------------------------------------

    def oid_of(self, obj: Any) -> Optional[Oid]:
        """The OID of a live object, or ``None`` if it has none yet."""
        return self._identity.oid_for(obj)

    def _ensure_oid(self, obj: Any) -> Oid:
        oid = self._identity.oid_for(obj)
        if oid is None:
            if type(obj) is not PersistentWeakRef:
                # Validate up front that the object is storable at all, so
                # errors surface at set_root time rather than at stabilise.
                self._serializer.references_of(obj)
            oid = self._allocator.allocate()
            self._identity.add(oid, obj)
        return oid

    def is_stored(self, oid: Oid) -> bool:
        return oid in self._table

    def stored_oids(self) -> tuple[Oid, ...]:
        return tuple(sorted(self._table))

    # ------------------------------------------------------------------
    # fetch
    # ------------------------------------------------------------------

    def object_for(self, oid: Oid) -> Any:
        """Materialise (or return the live) object named by ``oid``.

        Fetch is closure-based: the whole subgraph below ``oid`` that is
        not yet live is decoded in two phases (shells, then fills), so
        shared structure and cycles come back exactly as stored.
        """
        self._check_open()
        live = self._identity.object_for(oid)
        if live is not None:
            return live
        if oid not in self._table:
            raise UnknownOidError(int(oid))
        # Phase 0: find every record needed that is not already live.
        needed: dict[Oid, Record] = {}
        worklist = [oid]
        while worklist:
            current = worklist.pop()
            if current in needed or current in self._identity:
                continue
            record = self._read_record(current)
            needed[current] = record
            for ref in record_refs(record, include_weak=True):
                if ref not in needed and ref not in self._identity:
                    if ref not in self._table:
                        raise UnknownOidError(
                            f"stored object {int(current)} references "
                            f"missing oid {int(ref)}"
                        )
                    worklist.append(ref)
        # Phase 1: shells.
        for record_oid, record in needed.items():
            shell = self._serializer.make_shell(record)
            self._identity.add(record_oid, shell)
        # Phase 2: fill.
        for record_oid, record in needed.items():
            shell = self._identity.object_for(record_oid)
            self._serializer.fill_shell(shell, record, self._resolve)
        return self._identity.object_for(oid)

    def _resolve(self, oid: Oid) -> Any:
        obj = self._identity.object_for(oid)
        if obj is None:
            raise UnknownOidError(int(oid))
        return obj

    def _read_record(self, oid: Oid) -> Record:
        rid = self._table[oid]
        return Record.from_bytes(self._heap.read(rid))

    def refresh(self, obj: Any) -> Any:
        """Discard in-memory state of ``obj``'s OID and re-fetch from disk."""
        self._check_open()
        oid = self._identity.oid_for(obj)
        if oid is None or oid not in self._table:
            raise UnknownOidError("object is not stored")
        self._identity.evict(oid)
        return self.object_for(oid)

    def evict_all(self) -> None:
        """Drop every live object; subsequent fetches re-read from disk.

        Used by transaction abort: live objects mutated inside the aborted
        transaction become unreachable through the store, and fresh fetches
        observe the last stabilised state.
        """
        self._identity.clear()

    # ------------------------------------------------------------------
    # stabilisation (checkpoint)
    # ------------------------------------------------------------------

    def stabilize(self) -> int:
        """Make the state reachable from the roots durable; returns the
        number of records written.

        This is PJama's ``stabilizeAll``: persistence by reachability.  The
        live graph is walked from the root objects along strong edges; new
        and modified nodes are written through the WAL, then checkpointed
        into the heap and metadata snapshot.
        """
        self._check_open()
        reachable, records = self._flatten_from_roots()
        changed: list[tuple[Oid, bytes]] = []
        for oid, record in records.items():
            raw = record.to_bytes()
            sig = (len(raw), zlib.crc32(raw))
            if self._stored_sig.get(oid) != sig:
                changed.append((oid, raw))
        self._txn_counter += 1
        txn = self._txn_counter
        self._wal.append(LogEntry(ENTRY_BEGIN, txn))
        for oid, raw in changed:
            self._wal.append(LogEntry(ENTRY_WRITE, txn, oid, raw))
        for name, oid in self._roots.items():
            self._wal.append(LogEntry(ENTRY_ROOT, txn, oid, b"", name))
        self._wal.append(LogEntry(ENTRY_NEXT_OID, txn,
                                  Oid(int(self._allocator.next_oid))))
        self._wal.commit(txn)
        for oid, raw in changed:
            self._apply_write(oid, raw)
        self._heap.flush()
        self._write_metadata()
        self._wal.truncate()
        return len(changed)

    def _flatten_from_roots(self) -> tuple[set[Oid], dict[Oid, Record]]:
        """Walk the live graph from the roots; returns (reachable-oids,
        records-for-live-reachable-nodes).

        Roots that are not live (never fetched this session) contribute
        their *stored* subgraph to the reachable set without being decoded.
        """
        records: dict[Oid, Record] = {}
        reachable: set[Oid] = set()
        live_worklist: list[Any] = []
        stored_worklist: list[Oid] = []

        for oid in self._roots.values():
            obj = self._identity.object_for(oid)
            if obj is not None:
                live_worklist.append(obj)
            else:
                stored_worklist.append(oid)

        seen_ids: set[int] = set()
        weakrefs: list[tuple[Oid, PersistentWeakRef]] = []

        def walk_live(start: Any) -> None:
            pending = [start]
            while pending:
                obj = pending.pop()
                if id(obj) in seen_ids:
                    continue
                seen_ids.add(id(obj))
                oid = self._ensure_oid(obj)
                reachable.add(oid)
                if isinstance(obj, PersistentWeakRef):
                    weakrefs.append((oid, obj))
                    continue
                pending.extend(self._serializer.references_of(obj))
                records[oid] = self._serializer.encode_object(
                    oid, obj, self._ensure_oid
                )

        while live_worklist:
            walk_live(live_worklist.pop())

        # Weak references never pull their target into persistence: the
        # stored edge points at the target only if it is independently
        # persistent (already stored or strongly reachable this round).
        for oid, weakref in weakrefs:
            target = weakref.get()
            target_oid = None
            if target is not None:
                candidate = self._identity.oid_for(target)
                if candidate is not None and (candidate in reachable
                                              or candidate in self._table):
                    target_oid = candidate
            payload = Ref(target_oid) if target_oid is not None else None
            records[oid] = Record(oid, KIND_WEAKREF, "", "", payload)

        # Stored-only roots: mark their stored closure reachable.  If the
        # walk reaches an OID whose object *is* live (fetched and possibly
        # mutated), switch back to the live walk so its current state is
        # re-encoded — otherwise mutations behind a never-fetched root
        # would silently miss the checkpoint.
        seen_stored: set[Oid] = set()
        while stored_worklist:
            oid = stored_worklist.pop()
            if oid in seen_stored or oid in reachable:
                continue
            live = self._identity.object_for(oid)
            if live is not None:
                walk_live(live)
                continue
            seen_stored.add(oid)
            reachable.add(oid)
            if oid in self._table:
                for ref in record_refs(self._read_record(oid),
                                       include_weak=False):
                    stored_worklist.append(ref)
        return reachable, records

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------

    def collect_garbage(self) -> int:
        """Disk garbage collection: free stored objects unreachable from the
        roots along strong edges, and clear weak references to them.

        Returns the number of freed objects.  Mirrors the paper's Figure 7
        requirement: hyper-programs held only through weak references become
        collectable once no strong user references remain.
        """
        self._check_open()
        # Bring the durable state up to date first, so the mark phase can
        # run purely over stored records: collecting against a stale disk
        # image could free objects the durable graph still references.
        self.stabilize()
        marked: set[Oid] = set()
        worklist: list[Oid] = list(self._roots.values())
        while worklist:
            oid = worklist.pop()
            if oid in marked:
                continue
            marked.add(oid)
            if oid in self._table:
                for ref in record_refs(self._read_record(oid),
                                       include_weak=False):
                    if ref not in marked:
                        worklist.append(ref)

        victims = [oid for oid in self._table if oid not in marked]
        for oid in victims:
            self._apply_delete(oid)
            self._identity.evict(oid)
        # Reclaim page space the deletions left behind.
        self._heap.compact_fragmented()
        # Clear stored weak references whose targets were freed.
        freed = set(victims)
        for oid in list(self._table):
            record = self._read_record(oid)
            if record.kind == KIND_WEAKREF and isinstance(record.payload, Ref):
                if record.payload.oid in freed or \
                        record.payload.oid not in self._table:
                    cleared = Record(oid, KIND_WEAKREF, "", "", None)
                    self._apply_write(oid, cleared.to_bytes())
                    live = self._identity.object_for(oid)
                    if isinstance(live, PersistentWeakRef):
                        live.clear()
        # Clear live weak references pointing at freed objects.
        for oid, obj in self._identity.items():
            if isinstance(obj, PersistentWeakRef) and obj.get() is not None:
                target_oid = self._identity.oid_for(obj.get())
                if target_oid is not None and target_oid in freed:
                    obj.clear()
        self._heap.flush()
        self._write_metadata()
        return len(victims)

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------

    def transaction(self) -> "Transaction":
        """A commit-on-success / revert-on-failure scope around mutations.

        See :class:`repro.store.transactions.Transaction`.
        """
        from repro.store.transactions import Transaction
        return Transaction(self)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def statistics(self) -> StoreStatistics:
        return StoreStatistics(
            object_count=len(self._table),
            root_count=len(self._roots),
            live_count=len(self._identity),
            heap_pages=self._heap.page_count,
            next_oid=int(self._allocator.next_oid),
        )

    def stored_record(self, oid: Oid) -> Record:
        """The stored record for an OID (browser / debugging use)."""
        self._check_open()
        if oid not in self._table:
            raise UnknownOidError(int(oid))
        return self._read_record(oid)

    def verify_referential_integrity(self) -> list[str]:
        """Check that every stored reference resolves; returns problems found
        (empty list means the store is sound)."""
        problems: list[str] = []
        for oid in self._table:
            record = self._read_record(oid)
            for ref in record_refs(record, include_weak=True):
                if ref not in self._table:
                    problems.append(
                        f"oid {int(oid)} references missing oid {int(ref)}"
                    )
        for name, oid in self._roots.items():
            if oid not in self._table and \
                    self._identity.object_for(oid) is None:
                problems.append(f"root {name!r} names missing oid {int(oid)}")
        return problems
