"""The OCB browser object (Section 5.3).

Manages panels over objects, classes, methods and fields; supports
navigation ("simple navigation between related objects and classes"),
access to persistent roots ("All OCB facilities other than access to
persistent roots ... will work with any Java system" — root access is the
store-specific part, provided here for our store), method invocation from
the browser, and the hyper-programming hook: selecting a denotable entity
fires the ``link-requested`` callback that the UI routes to an editor.
"""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING

from repro.browser.callbacks import CallbackRegistry
from repro.browser.customize import DisplayCustomizer
from repro.browser.graphview import sharing_report
from repro.browser.panels import DenotableEntity, Panel
from repro.errors import BrowserError, NoSuchPanelError
from repro.reflect.introspect import for_class
from repro.reflect.metaobjects import JMethod

if TYPE_CHECKING:  # pragma: no cover
    from repro.store.objectstore import ObjectStore


class OCB:
    """An Object/Class Browser session."""

    def __init__(self, store: "ObjectStore | None" = None,
                 customizer: Optional[DisplayCustomizer] = None,
                 callbacks: Optional[CallbackRegistry] = None):
        self.store = store
        self.customizer = customizer or DisplayCustomizer()
        self.callbacks = callbacks or CallbackRegistry()
        self._panels: dict[int, Panel] = {}
        self._history: list[int] = []

    # ------------------------------------------------------------------
    # opening panels
    # ------------------------------------------------------------------

    def _add(self, panel: Panel) -> Panel:
        self._panels[panel.id] = panel
        self._history.append(panel.id)
        self.callbacks.fire("panel-opened", panel=panel)
        return panel

    def open_object(self, obj: Any) -> Panel:
        """Open a panel on an object (the left panel of Figure 12)."""
        return self._add(Panel(obj, subject_kind="object",
                               customizer=self.customizer,
                               store=self.store))

    def open_class(self, cls: type) -> Panel:
        return self._add(Panel(cls, subject_kind="class",
                               customizer=self.customizer,
                               store=self.store))

    def open_method(self, cls: type, name: str) -> Panel:
        """Open a panel on one method (the right panel of Figure 12)."""
        method = for_class(cls).get_method(name)
        return self._add(Panel(method, subject_kind="method",
                               customizer=self.customizer,
                               store=self.store))

    def open_root(self, name: str) -> Panel:
        """Open a persistent root by name (the store-specific facility)."""
        if self.store is None:
            raise BrowserError("this browser has no store attached")
        return self.open_object(self.store.get_root(name))

    def open_store_overview(self) -> list[str]:
        """Summary of the attached store: roots and statistics."""
        if self.store is None:
            raise BrowserError("this browser has no store attached")
        stats = self.store.statistics()
        lines = [
            f"store at {self.store.directory}",
            f"  {stats.object_count} stored objects on "
            f"{stats.heap_pages} pages, {stats.live_count} live",
        ]
        for root in self.store.root_names():
            lines.append(f"  root {root!r} -> oid "
                         f"{int(self.store.root_oid(root))}")
        return lines

    # ------------------------------------------------------------------
    # panels and navigation
    # ------------------------------------------------------------------

    def panel(self, panel_id: int) -> Panel:
        try:
            return self._panels[panel_id]
        except KeyError:
            raise NoSuchPanelError(panel_id) from None

    def panels(self) -> tuple[Panel, ...]:
        return tuple(self._panels[pid] for pid in self._history
                     if pid in self._panels)

    @property
    def front_panel(self) -> Optional[Panel]:
        panels = self.panels()
        return panels[-1] if panels else None

    def close_panel(self, panel_id: int) -> None:
        self.panel(panel_id)
        del self._panels[panel_id]
        self._history = [pid for pid in self._history if pid != panel_id]

    def navigate(self, panel_id: int, entity_label: str) -> Panel:
        """Follow a reference: open a new panel on a panel's entity."""
        entity = self.panel(panel_id).entity_named(entity_label)
        self.callbacks.fire("navigate", source=panel_id, entity=entity)
        if isinstance(entity.target, JMethod):
            return self._add(Panel(entity.target, subject_kind="method",
                                   customizer=self.customizer,
                                   store=self.store))
        if isinstance(entity.target, type):
            return self.open_class(entity.target)
        return self.open_object(entity.target)

    # ------------------------------------------------------------------
    # interaction (hyper-programming hook, method invocation)
    # ------------------------------------------------------------------

    def select_entity(self, panel_id: int, entity_label: str,
                      as_location: bool = False) -> DenotableEntity:
        """The right-mouse-button gesture of Section 5.4.1: selects a
        denotable entity (value or location half) and fires
        ``link-requested`` for the UI to route to the front-most editor."""
        entity = self.panel(panel_id).entity_named(entity_label)
        if as_location and not entity.location_capable:
            raise BrowserError(
                f"{entity_label!r} cannot be linked as a location"
            )
        self.callbacks.fire("link-requested", entity=entity,
                            as_location=as_location)
        return entity

    def invoke_method(self, panel_id: int, method_name: str,
                      *args: Any) -> Any:
        """Invoke a method of the panel's subject from the browser
        ("in some cases method invocation", Section 5.3)."""
        panel = self.panel(panel_id)
        if panel.subject_kind == "object":
            target = panel.subject
            method = for_class(type(target)).get_method(method_name)
            return method.invoke(target, *args)
        if panel.subject_kind == "class":
            method = for_class(panel.subject).get_method(method_name)
            return method.invoke(None, *args)
        raise BrowserError(
            f"panel {panel_id} ({panel.subject_kind}) has no invocable "
            f"methods"
        )

    # ------------------------------------------------------------------
    # sharing / identity
    # ------------------------------------------------------------------

    def sharing(self, panel_id: int) -> list[str]:
        """The sharing/identity report for a panel's object graph."""
        panel = self.panel(panel_id)
        return sharing_report(panel.subject, self.store)
