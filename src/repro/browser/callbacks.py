"""Browser callbacks.

OCB "allow[s] control from running Java programs through a class interface
and call-back methods which allow the programmer to specify actions to be
performed in response to user interaction" (Section 5.3).  The registry
maps event names to handler lists; the browser and the UI fire events such
as ``"entity-selected"``, ``"link-requested"``, ``"panel-opened"`` and
``"navigate"``.
"""

from __future__ import annotations

from typing import Any, Callable

Handler = Callable[..., Any]


class CallbackRegistry:
    """Named event channels with multiple handlers each."""

    def __init__(self) -> None:
        self._handlers: dict[str, list[Handler]] = {}
        self.fired: list[tuple[str, dict[str, Any]]] = []

    def register(self, event: str, handler: Handler) -> None:
        self._handlers.setdefault(event, []).append(handler)

    def unregister(self, event: str, handler: Handler) -> None:
        handlers = self._handlers.get(event, [])
        if handler in handlers:
            handlers.remove(handler)

    def fire(self, event: str, **payload: Any) -> list[Any]:
        """Invoke every handler for ``event``; returns their results.

        Every firing is also recorded in :attr:`fired`, so programs (and
        tests) can observe interaction history — part of the "control from
        running programs" aim.
        """
        self.fired.append((event, payload))
        return [handler(**payload)
                for handler in self._handlers.get(event, [])]

    def handlers_for(self, event: str) -> tuple[Handler, ...]:
        return tuple(self._handlers.get(event, []))

    def events(self) -> tuple[str, ...]:
        return tuple(sorted(self._handlers))
