"""Object-graph views: sharing and identity visualisation.

OCB aims "to support the visualisation of object sharing and identity, and
to allow simple navigation between related objects and classes"
(Section 5.3).  This module builds a directed graph over the storable
nodes reachable from a starting object — nodes keyed by identity, edges
labelled with the field/index that holds the reference — and derives the
sharing report (which objects are referenced from more than one place).
"""

from __future__ import annotations

from typing import Any, Iterator, TYPE_CHECKING

import networkx as nx

from repro.browser.render import default_summary
from repro.store.serializer import is_inline
from repro.store.weakrefs import PersistentWeakRef

if TYPE_CHECKING:  # pragma: no cover
    from repro.store.objectstore import ObjectStore


def _edges_of(obj: Any) -> Iterator[tuple[str, Any]]:
    """(edge label, referenced storable node) pairs for one node."""

    def expand(label: str, value: Any) -> Iterator[tuple[str, Any]]:
        if type(value) in (tuple, frozenset):
            for index, item in enumerate(value):
                yield from expand(f"{label}({index})", item)
        elif not is_inline(value):
            yield label, value

    if isinstance(obj, PersistentWeakRef):
        target = obj.get()
        if target is not None:
            yield from expand("~weak", target)
        return
    if isinstance(obj, list):
        for index, value in enumerate(obj):
            yield from expand(f"[{index}]", value)
    elif isinstance(obj, dict):
        for key, value in obj.items():
            yield from expand(f"[{key!r}].key", key)
            yield from expand(f"[{key!r}]", value)
    elif isinstance(obj, set):
        for value in obj:
            yield from expand("{member}", value)
    elif isinstance(obj, bytearray):
        return
    else:
        for name in sorted(getattr(obj, "__dict__", {}) or {}):
            if name.startswith("_"):
                continue
            yield from expand(f".{name}", getattr(obj, name))


def object_graph(root: Any, max_nodes: int = 10_000) -> nx.MultiDiGraph:
    """The identity graph reachable from ``root``.

    Nodes are ``id()`` values carrying the live object and a summary label;
    edges carry the field/index label.  The graph is a multigraph because
    sharing means *parallel* edges (``holder[0]`` and ``holder[1]`` naming
    the same object) and each must be visible.  Weak edges are marked
    ``weak=True`` and drawn from :class:`PersistentWeakRef` nodes.
    """
    graph = nx.MultiDiGraph()
    worklist = [root]
    seen: dict[int, Any] = {}
    while worklist and len(seen) < max_nodes:
        obj = worklist.pop()
        node = id(obj)
        if node in seen:
            continue
        seen[node] = obj
        graph.add_node(node, obj=obj, label=default_summary(obj))
        for label, child in _edges_of(obj):
            graph.add_edge(node, id(child), label=label,
                           weak=label.startswith("~weak"))
            if id(child) not in seen:
                worklist.append(child)
    # Second pass: any child discovered but not expanded (max_nodes cap)
    # still needs node attributes.
    for node in graph.nodes:
        if "label" not in graph.nodes[node]:
            graph.nodes[node]["label"] = "<unexpanded>"
    return graph


def shared_nodes(graph: nx.MultiDiGraph) -> list[int]:
    """Nodes referenced from more than one place (object sharing).

    In-degree counts parallel edges, so two references from the same
    holder count as sharing — matching OCB's one-box-many-arrows view.
    """
    return [node for node in graph.nodes
            if graph.in_degree(node) > 1]


def sharing_report(root: Any,
                   store: "ObjectStore | None" = None) -> list[str]:
    """Human-readable sharing/identity report for the graph under ``root``."""
    graph = object_graph(root)
    lines = [f"{graph.number_of_nodes()} objects, "
             f"{graph.number_of_edges()} references"]
    for node in shared_nodes(graph):
        data = graph.nodes[node]
        referrers = []
        for pred in graph.predecessors(node):
            for edge_data in graph.get_edge_data(pred, node).values():
                label = edge_data.get("label", "?")
                referrers.append(f"{graph.nodes[pred]['label']}{label}")
        oid_note = ""
        if store is not None and "obj" in data:
            oid = store.oid_of(data["obj"])
            if oid is not None:
                oid_note = f" (oid {int(oid)})"
        lines.append(
            f"shared: {data['label']}{oid_note} <- "
            f"{', '.join(sorted(referrers))}"
        )
    return lines


def render_graph(root: Any, indent: str = "  ",
                 max_depth: int = 6) -> str:
    """An ASCII tree of the object graph with back-references marked.

    Repeat visits are printed as ``*<label>`` rather than expanded — the
    textual equivalent of OCB drawing one box with many incoming arrows.
    """
    lines: list[str] = []
    seen: set[int] = set()

    def walk(obj: Any, label: str, depth: int) -> None:
        summary = default_summary(obj)
        prefix = indent * depth
        if id(obj) in seen:
            lines.append(f"{prefix}{label} -> *{summary}")
            return
        seen.add(id(obj))
        lines.append(f"{prefix}{label} -> {summary}")
        if depth >= max_depth:
            return
        for edge_label, child in _edges_of(obj):
            walk(child, edge_label, depth + 1)

    walk(root, "root", 0)
    return "\n".join(lines)
