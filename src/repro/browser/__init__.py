"""The Object/Class Browser — OCB (paper Section 5.3, reference [9]).

Design aims reproduced from the paper:

* portability — pure Python, no GUI dependency (rendering is text);
* "control from running Java programs through a class interface and
  call-back methods" — :mod:`~repro.browser.callbacks`;
* "the visualisation of object sharing and identity, and ... simple
  navigation between related objects and classes" —
  :mod:`~repro.browser.graphview` and panel navigation;
* "the graphical display format to be customised for specific classes,
  including the temporary hiding of superclass fields and methods" —
  :mod:`~repro.browser.customize`;
* "to support hyper-programming in Java" — every panel exposes its
  *denotable entities* (objects, classes, methods, fields as values or
  locations, array elements) ready to be inserted into an editor as
  hyper-links.
"""

from repro.browser.callbacks import CallbackRegistry
from repro.browser.customize import DisplayCustomizer
from repro.browser.panels import DenotableEntity, Panel
from repro.browser.ocb import OCB
from repro.browser.graphview import object_graph, sharing_report

__all__ = [
    "CallbackRegistry",
    "DisplayCustomizer",
    "DenotableEntity",
    "Panel",
    "OCB",
    "object_graph",
    "sharing_report",
]
