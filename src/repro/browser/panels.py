"""Browser panels and denotable entities.

Figure 12 shows the OCB window with "an instance of the class Person in
the left panel and the static method marry in the right panel".  A
:class:`Panel` displays one subject (object, class, method or field) and
enumerates the subject's **denotable entities** — the things a programmer
can point at with the right mouse button to insert a hyper-link.

"Where appropriate, the user can select whether to link to a value or the
location containing the value, by pressing the right-hand mouse button
over the right or left half of the panel respectively" (Section 5.4.1):
each entity reports whether it is location-capable, and
:meth:`DenotableEntity.make_link` takes a ``as_location`` flag.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Optional, TYPE_CHECKING

from repro.browser.customize import DisplayCustomizer
from repro.browser.render import (
    render_class,
    render_method,
    render_object,
    summarise,
)
from repro.core.editform import HyperLink
from repro.core.hyperlink import (
    ArrayElementLocation,
    ClassRef,
    ConstructorRef,
    FieldLocation,
    FieldRef,
    MethodRef,
)
from repro.core.linkkinds import LinkKind
from repro.errors import BrowserError
from repro.reflect.introspect import for_class
from repro.reflect.metaobjects import JField, JMethod
from repro.store.serializer import is_inline

if TYPE_CHECKING:  # pragma: no cover
    from repro.store.objectstore import ObjectStore

_panel_ids = itertools.count(1)


@dataclass
class DenotableEntity:
    """Something in a panel that can become a hyper-link."""

    kind: LinkKind
    label: str
    target: Any
    #: For fields/array elements: the holder needed to build a location.
    holder: Any = None
    member: str = ""
    index: int = -1

    @property
    def location_capable(self) -> bool:
        return self.kind in (LinkKind.FIELD, LinkKind.ARRAY_ELEMENT) and \
            self.holder is not None

    def make_link(self, as_location: bool = False) -> HyperLink:
        """An editing-form link for this entity (offset set on insertion).

        ``as_location`` selects the location half of the paper's
        value-or-location gesture.
        """
        if as_location and not self.location_capable:
            raise BrowserError(
                f"{self.label!r} has no location to link to"
            )
        if self.kind is LinkKind.STATIC_METHOD:
            method = self.target
            assert isinstance(method, JMethod)
            return HyperLink(MethodRef.of(method), self.label, 0, True,
                             False, LinkKind.STATIC_METHOD)
        if self.kind is LinkKind.CONSTRUCTOR:
            return HyperLink(ConstructorRef.of(self.target), self.label, 0,
                             True, False, LinkKind.CONSTRUCTOR)
        if self.kind in (LinkKind.CLASS, LinkKind.INTERFACE):
            return HyperLink(ClassRef.of(self.target), self.label, 0, True,
                             False, self.kind)
        if self.kind is LinkKind.FIELD:
            if as_location:
                return HyperLink(FieldLocation(self.holder, self.member),
                                 self.label, 0, False, False, LinkKind.FIELD)
            if isinstance(self.target, JField):
                return HyperLink(FieldRef.of(self.target), self.label, 0,
                                 True, False, LinkKind.FIELD)
            return self._value_link(self.target)
        if self.kind is LinkKind.ARRAY_ELEMENT:
            if as_location:
                return HyperLink(ArrayElementLocation(self.holder, self.index),
                                 self.label, 0, False, False,
                                 LinkKind.ARRAY_ELEMENT)
            return self._value_link(self.target)
        return self._value_link(self.target)

    def _value_link(self, value: Any) -> HyperLink:
        if is_inline(value):
            return HyperLink(value, self.label, 0, False, True,
                             LinkKind.PRIMITIVE_VALUE)
        kind = LinkKind.ARRAY if isinstance(value, list) else LinkKind.OBJECT
        return HyperLink(value, self.label, 0, False, False, kind)


class Panel:
    """One browser panel showing a subject and its denotable entities."""

    def __init__(self, subject: Any, *, subject_kind: str = "object",
                 customizer: Optional[DisplayCustomizer] = None,
                 store: "ObjectStore | None" = None):
        if subject_kind not in ("object", "class", "method", "field"):
            raise BrowserError(f"unknown panel kind {subject_kind!r}")
        self.id = next(_panel_ids)
        self.subject = subject
        self.subject_kind = subject_kind
        self.customizer = customizer or DisplayCustomizer()
        self.store = store

    # -- display -----------------------------------------------------------

    def render(self) -> str:
        if self.subject_kind == "class":
            lines = render_class(self.subject, self.customizer)
        elif self.subject_kind == "method":
            method: JMethod = self.subject
            lines = render_method(
                method.get_declaring_class().python_class,
                method.get_name())
        elif self.subject_kind == "field":
            field: JField = self.subject
            lines = [f"field {field.get_declaring_class().get_simple_name()}"
                     f".{field.get_name()}"]
        else:
            lines = render_object(self.subject, self.customizer, self.store)
        return "\n".join(lines)

    def title(self) -> str:
        if self.subject_kind == "class":
            return f"class {self.subject.__name__}"
        if self.subject_kind == "method":
            return f"method {self.subject.qualified_name()}"
        if self.subject_kind == "field":
            return f"field {self.subject.get_name()}"
        return summarise(self.subject, self.customizer, self.store)

    # -- denotable entities -------------------------------------------------

    def entities(self) -> list[DenotableEntity]:
        """Everything in this panel a hyper-link can be made to."""
        if self.subject_kind == "class":
            return self._class_entities(self.subject)
        if self.subject_kind == "method":
            method: JMethod = self.subject
            return [DenotableEntity(LinkKind.STATIC_METHOD,
                                    method.qualified_name(), method)]
        if self.subject_kind == "field":
            field: JField = self.subject
            return [DenotableEntity(LinkKind.FIELD, field.get_name(), field,
                                    holder=None,
                                    member=field.get_name())]
        return self._object_entities(self.subject)

    def _class_entities(self, cls: type) -> list[DenotableEntity]:
        meta = for_class(cls)
        kind = LinkKind.INTERFACE if meta.is_interface() else LinkKind.CLASS
        entities = [
            DenotableEntity(kind, meta.get_simple_name(), cls),
            DenotableEntity(LinkKind.CONSTRUCTOR,
                            f"new {meta.get_simple_name()}", cls),
        ]
        for method in meta.get_methods():
            if not self.customizer.shows_field(cls, method.get_name()):
                continue
            entities.append(DenotableEntity(
                LinkKind.STATIC_METHOD, method.qualified_name(), method))
        for field in meta.get_fields():
            if not self.customizer.shows_field(cls, field.get_name()):
                continue
            holder = cls if field.is_static() else None
            entities.append(DenotableEntity(
                LinkKind.FIELD, field.get_name(), field,
                holder=holder, member=field.get_name()))
        return entities

    def _object_entities(self, obj: Any) -> list[DenotableEntity]:
        entities = [self._entity_for_value(
            summarise(obj, self.customizer, self.store), obj)]
        if isinstance(obj, list):
            for index, value in enumerate(obj):
                entities.append(DenotableEntity(
                    LinkKind.ARRAY_ELEMENT, f"[{index}]", value,
                    holder=obj, index=index))
            return entities
        if isinstance(obj, (dict, set)) or is_inline(obj):
            return entities
        meta = for_class(type(obj))
        for field in meta.get_fields():
            name = field.get_name()
            if not self.customizer.shows_field(type(obj), name):
                continue
            try:
                value = field.get(obj)
            except Exception:
                continue
            entities.append(DenotableEntity(
                LinkKind.FIELD, f".{name}", value,
                holder=obj, member=name))
        for method in meta.get_methods():
            if not self.customizer.shows_field(type(obj),
                                               method.get_name()):
                continue
            entities.append(DenotableEntity(
                LinkKind.STATIC_METHOD, method.qualified_name(), method))
        return entities

    @staticmethod
    def _entity_for_value(label: str, value: Any) -> DenotableEntity:
        if is_inline(value):
            return DenotableEntity(LinkKind.PRIMITIVE_VALUE, label, value)
        if isinstance(value, list):
            return DenotableEntity(LinkKind.ARRAY, label, value)
        return DenotableEntity(LinkKind.OBJECT, label, value)

    def entity_named(self, label: str) -> DenotableEntity:
        for entity in self.entities():
            if entity.label == label:
                return entity
        raise BrowserError(f"panel {self.id} has no entity {label!r}")

    def __repr__(self) -> str:
        return f"Panel({self.id}, {self.subject_kind}, {self.title()!r})"
