"""Per-class display customisation.

OCB allows "the graphical display format to be customised for specific
classes, including the temporary hiding of superclass fields and methods"
(Section 5.3).  A :class:`DisplayCustomizer` holds, per class:

* an optional *summary function* (how an instance is abbreviated inside
  other displays — e.g. show a Person as its name);
* an optional *field filter* (which fields the full display shows);
* a *hide-superclass* toggle (temporarily suppress inherited members).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

SummaryFn = Callable[[Any], str]
FieldFilter = Callable[[str], bool]


class ClassDisplayPolicy:
    """The display policy for one class."""

    __slots__ = ("summary", "field_filter", "hide_superclass")

    def __init__(self) -> None:
        self.summary: Optional[SummaryFn] = None
        self.field_filter: Optional[FieldFilter] = None
        self.hide_superclass = False


class DisplayCustomizer:
    """Class-keyed display policies with MRO-based lookup."""

    def __init__(self) -> None:
        self._policies: dict[type, ClassDisplayPolicy] = {}

    def policy_for(self, cls: type) -> ClassDisplayPolicy:
        """The policy for ``cls``, following the MRO (a policy set on a
        base class applies to subclasses unless overridden)."""
        for klass in cls.__mro__:
            if klass in self._policies:
                return self._policies[klass]
        return ClassDisplayPolicy()

    def _own_policy(self, cls: type) -> ClassDisplayPolicy:
        if cls not in self._policies:
            self._policies[cls] = ClassDisplayPolicy()
        return self._policies[cls]

    def set_summary(self, cls: type, summary: SummaryFn) -> None:
        """Customise how instances of ``cls`` are abbreviated."""
        self._own_policy(cls).summary = summary

    def set_field_filter(self, cls: type,
                         field_filter: FieldFilter) -> None:
        self._own_policy(cls).field_filter = field_filter

    def hide_superclass_members(self, cls: type, hide: bool = True) -> None:
        """Temporarily hide (or re-show) inherited fields and methods."""
        self._own_policy(cls).hide_superclass = hide

    def summarise(self, obj: Any, fallback: Callable[[Any], str]) -> str:
        policy = self.policy_for(type(obj))
        if policy.summary is not None:
            return policy.summary(obj)
        return fallback(obj)

    def shows_field(self, cls: type, name: str) -> bool:
        policy = self.policy_for(cls)
        if policy.field_filter is not None and not policy.field_filter(name):
            return False
        if policy.hide_superclass:
            own = cls.__dict__.get("__annotations__", {})
            own_slots = cls.__dict__.get("__slots__", ())
            if name not in own and name not in own_slots and \
                    name not in vars(cls):
                return False
        return True
