"""Text rendering of objects, classes and members for the browser.

Pure functions from entities to display lines.  Identity is made visible
(OCB design aim: "visualisation of object sharing and identity") by
annotating every storable node with its OID where the store knows it, and
by giving repeated appearances of the same object the same marker.
"""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING

from repro.browser.customize import DisplayCustomizer
from repro.reflect.introspect import for_class, for_object
from repro.store.serializer import is_inline

if TYPE_CHECKING:  # pragma: no cover
    from repro.store.objectstore import ObjectStore

_MAX_SUMMARY = 48


def identity_marker(obj: Any, store: "ObjectStore | None") -> str:
    """``#<oid>`` when the store knows the object, ``@<id>`` otherwise."""
    if store is not None:
        oid = store.oid_of(obj)
        if oid is not None:
            return f"#{int(oid)}"
    return f"@{id(obj) & 0xFFFF:04x}"


def default_summary(obj: Any, store: "ObjectStore | None" = None) -> str:
    """A one-line abbreviation of any value."""
    if is_inline(obj):
        text = repr(obj)
        return text if len(text) <= _MAX_SUMMARY else \
            text[:_MAX_SUMMARY - 3] + "..."
    if isinstance(obj, list):
        return f"array[{len(obj)}] {identity_marker(obj, store)}"
    if isinstance(obj, dict):
        return f"map[{len(obj)}] {identity_marker(obj, store)}"
    if isinstance(obj, set):
        return f"set[{len(obj)}] {identity_marker(obj, store)}"
    return (f"{type(obj).__name__} "
            f"{identity_marker(obj, store)}")


def summarise(obj: Any, customizer: Optional[DisplayCustomizer] = None,
              store: "ObjectStore | None" = None) -> str:
    if customizer is not None and not is_inline(obj) and \
            not isinstance(obj, (list, dict, set)):
        return customizer.summarise(
            obj, lambda value: default_summary(value, store))
    return default_summary(obj, store)


def render_object(obj: Any, customizer: Optional[DisplayCustomizer] = None,
                  store: "ObjectStore | None" = None) -> list[str]:
    """Display lines for one object: header, fields, then methods."""
    customizer = customizer or DisplayCustomizer()
    lines: list[str] = []
    if isinstance(obj, list):
        lines.append(f"array[{len(obj)}] {identity_marker(obj, store)}")
        for index, value in enumerate(obj):
            lines.append(f"  [{index}] = {summarise(value, customizer, store)}")
        return lines
    if isinstance(obj, dict):
        lines.append(f"map[{len(obj)}] {identity_marker(obj, store)}")
        for key, value in obj.items():
            lines.append(f"  {summarise(key, customizer, store)} -> "
                         f"{summarise(value, customizer, store)}")
        return lines
    if isinstance(obj, set):
        lines.append(f"set[{len(obj)}] {identity_marker(obj, store)}")
        for value in sorted(obj, key=repr):
            lines.append(f"  {summarise(value, customizer, store)}")
        return lines
    meta = for_object(obj)
    lines.append(f"{meta.get_simple_name()} instance "
                 f"{identity_marker(obj, store)}")
    for field in meta.get_fields():
        name = field.get_name()
        if not customizer.shows_field(type(obj), name):
            continue
        try:
            value = field.get(obj)
        except Exception:
            value = "<unreadable>"
        lines.append(f"  .{name} = {summarise(value, customizer, store)}")
    methods = [method for method in meta.get_methods()
               if customizer.shows_field(type(obj),
                                         method.get_name())]
    for method in methods:
        params = ", ".join(method.parameter_names())
        marker = "static " if method.is_static() else ""
        lines.append(f"  {marker}{method.get_name()}({params})")
    return lines


def render_class(cls: type,
                 customizer: Optional[DisplayCustomizer] = None) -> list[str]:
    """Display lines for a class: header, hierarchy, fields, methods."""
    customizer = customizer or DisplayCustomizer()
    meta = for_class(cls)
    kind = "interface" if meta.is_interface() else "class"
    lines = [f"{kind} {meta.get_name()}"]
    superclass = meta.get_superclass()
    if superclass is not None and superclass.python_class is not object:
        lines.append(f"  extends {superclass.get_simple_name()}")
    for field in meta.get_fields():
        if customizer.shows_field(cls, field.get_name()):
            static = "static " if field.is_static() else ""
            lines.append(f"  {static}field {field.get_name()}")
    for method in meta.get_methods():
        if customizer.shows_field(cls, method.get_name()):
            static = "static " if method.is_static() else ""
            params = ", ".join(method.parameter_names())
            lines.append(f"  {static}method {method.get_name()}({params})")
    return lines


def render_method(cls: type, name: str) -> list[str]:
    """Display lines for a single method (the right panel of Figure 12)."""
    method = for_class(cls).get_method(name)
    declaring = method.get_declaring_class().get_simple_name()
    static = "static " if method.is_static() else ""
    params = ", ".join(method.parameter_names())
    return [f"{static}method {declaring}.{name}({params})"]
