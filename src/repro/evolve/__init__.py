"""System evolution through hyper-programming (paper Section 7)."""

from repro.evolve.evolution import EvolutionEngine, EvolutionStep

__all__ = ["EvolutionEngine", "EvolutionStep"]
