"""Schema evolution via linguistic reflection (paper Section 7).

"Since a hyper-programming system can ensure that the hyper-program source
text is always available for any persistent class that was created within
the system, it is possible to write an evolution program that updates the
source, re-compiles it and reconstructs the persistent data using
linguistic reflection.  Indeed, in a transactional system it is possible
to do this in a separate transaction while the system is live."

An :class:`EvolutionStep` names a persistent class, a source rewrite
(old class-definition source -> new source) and an instance converter
(old field dict -> new field dict).  The :class:`EvolutionEngine`:

1. fetches the class's stored hyper-program source (available by
   construction in a hyper-programming system),
2. rewrites it and re-compiles through linguistic reflection,
3. re-registers the evolved class (superseding the old binding) and
   installs the converter for the old schema fingerprint,
4. reconstructs every stored instance of the class,
5. runs the whole step inside a store transaction — failure rolls back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.compiler import DynamicCompiler
from repro.core.hyperprogram import HyperProgram
from repro.errors import EvolutionError
from repro.store.objectstore import ObjectStore
from repro.store.serializer import KIND_INSTANCE

SourceRewrite = Callable[[str], str]
InstanceConverter = Callable[[dict[str, Any]], dict[str, Any]]

#: Root under which class-definition hyper-programs are archived, keyed by
#: qualified class name — "the hyper-program source text is always
#: available for any persistent class that was created within the system".
SOURCE_ARCHIVE_ROOT = "_class_sources"


@dataclass
class EvolutionStep:
    """One evolution: rewrite a class's source and convert its instances.

    The class keeps its qualified name across evolution (renaming a
    persistent class would orphan its stored records; the paper's
    reconstruction workflow evolves classes in place).
    """

    class_name: str                      # qualified name of the class
    rewrite: SourceRewrite
    convert: InstanceConverter

    def describe(self) -> str:
        return f"evolve {self.class_name}"


class EvolutionEngine:
    """Runs evolution steps against a store."""

    def __init__(self, store: ObjectStore):
        self._store = store
        if not store.has_root(SOURCE_ARCHIVE_ROOT):
            store.set_root(SOURCE_ARCHIVE_ROOT, {})

    # ------------------------------------------------------------------
    # the source archive
    # ------------------------------------------------------------------

    def archive_source(self, class_name: str,
                       program: HyperProgram) -> None:
        """Record the hyper-program that defines a persistent class."""
        archive = self._store.get_root(SOURCE_ARCHIVE_ROOT)
        archive[class_name] = program

    def source_of(self, class_name: str) -> HyperProgram:
        archive = self._store.get_root(SOURCE_ARCHIVE_ROOT)
        try:
            return archive[class_name]
        except KeyError:
            raise EvolutionError(
                f"no archived source for class {class_name!r}; classes "
                f"created outside the system cannot be evolved "
                f"(paper footnote 2)"
            ) from None

    def archived_classes(self) -> tuple[str, ...]:
        return tuple(sorted(self._store.get_root(SOURCE_ARCHIVE_ROOT)))

    # ------------------------------------------------------------------
    # evolution
    # ------------------------------------------------------------------

    def run(self, step: EvolutionStep) -> type:
        """Execute one evolution step transactionally; returns the evolved
        class.  On any failure the store is rolled back to the last
        stabilised state and :class:`EvolutionError` is raised."""
        self._store.stabilize()  # evolution starts from a durable state
        try:
            with self._store.transaction():
                evolved = self._run_inside_txn(step)
        except EvolutionError:
            raise
        except Exception as exc:
            raise EvolutionError(
                f"{step.describe()} failed and was rolled back: {exc}"
            ) from exc
        return evolved

    def _run_inside_txn(self, step: EvolutionStep) -> type:
        registry = self._store.registry
        old_entry = registry.entry_for_name(step.class_name)
        old_fingerprint = old_entry.fingerprint
        program = self.source_of(step.class_name)

        # Live instances of the old class would be unserialisable once the
        # registry binding moves to the evolved class; flush them so every
        # fetch below materialises (and converts) against the new class.
        self._store.evict_all()

        # 1. Update the source.
        new_text = step.rewrite(program.the_text)
        new_program = HyperProgram(new_text, list(program.the_links),
                                   program.class_name)

        # 2. Re-compile through linguistic reflection.
        evolved = DynamicCompiler.compile_hyper_program(new_program)

        # 3. Re-register under the *same qualified name* so stored records
        #    resolve to the evolved class, and install the converter.
        module_name, __, simple = step.class_name.rpartition(".")
        evolved.__module__ = module_name or evolved.__module__
        evolved.__qualname__ = simple or step.class_name
        entry = registry.register(evolved)
        if entry.name != step.class_name:
            raise EvolutionError(
                f"evolved class registers as {entry.name!r}, expected "
                f"{step.class_name!r}"
            )
        registry.register_converter(evolved, old_fingerprint, step.convert)

        # 4. Reconstruct stored instances: fetch (conversion applies on
        #    materialisation), so the next stabilise writes new-schema
        #    records.
        reconstructed = 0
        for oid in self._store.stored_oids():
            record = self._store.stored_record(oid)
            if record.kind == KIND_INSTANCE and \
                    record.class_name == step.class_name and \
                    record.fingerprint == old_fingerprint:
                self._store.object_for(oid)
                reconstructed += 1

        # 5. Archive the evolved source.
        self.archive_source(step.class_name, new_program)
        self._last_reconstructed = reconstructed
        return evolved

    @property
    def last_reconstructed(self) -> int:
        """Instances reconstructed by the most recent step."""
        return getattr(self, "_last_reconstructed", 0)
