"""Clipboard for text-and-link fragments.

Cut and paste in a hyper-program editor must carry *links* along with
text (Section 5.1: "insertion, cutting and pasting of text and links").
A :class:`Fragment` is a detached piece of document: its text plus the
links it contained, with positions relative to the fragment start.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.editform import HyperLink


@dataclass
class Fragment:
    """A detached run of document content.

    ``text`` may span lines; each link is recorded with a
    (line-within-fragment, offset) anchor.
    """

    text: str = ""
    links: list[tuple[int, int, HyperLink]] = field(default_factory=list)

    def is_empty(self) -> bool:
        return not self.text and not self.links

    def line_count(self) -> int:
        return self.text.count("\n") + 1

    def clone(self) -> "Fragment":
        return Fragment(self.text,
                        [(line, col, link.clone())
                         for line, col, link in self.links])


class Clipboard:
    """A simple last-in clipboard with bounded history."""

    def __init__(self, history_limit: int = 32):
        self._history: list[Fragment] = []
        self._limit = history_limit

    def put(self, fragment: Fragment) -> None:
        self._history.append(fragment.clone())
        if len(self._history) > self._limit:
            del self._history[0]

    def current(self) -> Optional[Fragment]:
        """The most recent fragment (cloned, so pasting twice yields two
        independent copies of the links' anchors)."""
        if not self._history:
            return None
        return self._history[-1].clone()

    def history(self) -> tuple[Fragment, ...]:
        return tuple(self._history)

    def clear(self) -> None:
        self._history.clear()

    def __len__(self) -> int:
        return len(self._history)
