"""The hyper-program editor — layer 3 of Figure 10.

The pre-defined user editor (Section 5.1) built on the window editor API.
It adds hyper-programming behaviour to plain editing:

* links are displayed as buttons; "if the programmer presses a button, the
  associated entity is displayed in the top-most browser window"
  (Section 5.4.1) — :meth:`press_link` returns the entity for the UI to
  show;
* the **Insert Link** path (the editor-side half of Section 5.4.1's two
  insertion gestures);
* optional parser-directed insertion: the legality check the paper intends
  to incorporate (Section 2) can reject syntactically illegal insertions;
* **Compile**, **Display Class** and **Go** (Section 5.4.2), with
  compilation errors "described in terms of the translated textual form"
  exactly as the paper's current version does.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.core.compiler import DynamicCompiler
from repro.core.convert import editing_to_storage, storage_to_editing
from repro.core.editform import HyperLink
from repro.core.hyperprogram import HyperProgram
from repro.core.legality import is_legal_insertion
from repro.editor.basic import BasicEditor
from repro.editor.window import WindowEditor
from repro.errors import CompilationError, IllegalLinkInsertionError


class HyperProgramEditor:
    """One hyper-program editor window's behaviour."""

    def __init__(self, class_name: str = "",
                 width: int = 80, height: int = 24,
                 check_insertions: bool = False):
        self.basic = BasicEditor()
        self.window = WindowEditor(self.basic, width, height)
        self.class_name = class_name
        #: When true, link insertions are parser-directed (Section 2's
        #: planned extension); illegal insertions raise.
        self.check_insertions = check_insertions
        self.last_error: Optional[CompilationError] = None
        self._compiled_class: Optional[type] = None

    # ------------------------------------------------------------------
    # document load/save (editing form <-> storage form, Section 3)
    # ------------------------------------------------------------------

    def load(self, program: HyperProgram) -> None:
        """Load a storage-form hyper-program for editing."""
        self.basic.form = storage_to_editing(program)
        self.basic.cursor = (0, 0)
        self.basic.clear_selection()
        if program.class_name:
            self.class_name = program.class_name
        self._compiled_class = None

    def to_storage_form(self) -> HyperProgram:
        """The current document as a storage-form hyper-program."""
        return editing_to_storage(self.basic.form, self.class_name)

    # ------------------------------------------------------------------
    # editing with hyper-links
    # ------------------------------------------------------------------

    def type_text(self, text: str) -> None:
        self.basic.insert_text(text)
        self.window.ensure_cursor_visible()
        self._compiled_class = None

    def insert_link(self, link: HyperLink) -> HyperLink:
        """Insert a link button at the cursor (the Insert Link button)."""
        if self.check_insertions:
            program = self.to_storage_form()
            line, col = self.basic.cursor
            pos = sum(
                len(self.basic.form.text_of_line(i)) + 1
                for i in range(line)
            ) + col
            if not is_legal_insertion(program, pos, link.kind):
                raise IllegalLinkInsertionError(
                    f"a {link.kind.value} link is not syntactically legal "
                    f"at line {line}, column {col}"
                )
        self._compiled_class = None
        return self.basic.insert_link(link)

    def press_link(self, link: HyperLink) -> Any:
        """Pressing a link button: returns the associated entity so the UI
        can display it in the top-most browser window."""
        return link.hyper_link_object

    def relabel_link(self, link: HyperLink, label: str) -> None:
        """Button names 'can be changed and are not significant to the
        semantics of the hyper-program' (Section 5.4.1)."""
        link.label = label

    # ------------------------------------------------------------------
    # Compile / Display Class / Go (Section 5.4.2)
    # ------------------------------------------------------------------

    def compile(self, mechanism: str = "auto") -> type:
        """Translate, compile and load the hyper-program; returns the
        principal class."""
        program = self.to_storage_form()
        try:
            self._compiled_class = DynamicCompiler.compile_hyper_program(
                program, mechanism)
        except CompilationError as error:
            # "In the current version the error is described in terms of
            # the translated textual form" — keep it available verbatim.
            self.last_error = error
            raise
        self.last_error = None
        return self._compiled_class

    def display_class(self) -> type:
        """The Display Class button: compile if needed and return the
        principal class for the browser to display."""
        if self._compiled_class is None:
            self.compile()
        assert self._compiled_class is not None
        return self._compiled_class

    def go(self, args: Sequence[str] | None = None) -> Any:
        """The Go button: compile if needed and execute ``main``."""
        principal = self.display_class()
        return DynamicCompiler.run_main(principal, args)

    # ------------------------------------------------------------------
    # display
    # ------------------------------------------------------------------

    def render(self, show_cursor: bool = False) -> str:
        return self.window.render(show_cursor)

    def error_report(self, hyper_terms: bool = True) -> str:
        """The last compilation failure.

        With ``hyper_terms`` (default), diagnostics are re-expressed at
        hyper-program positions through the generation source map — the
        paper's planned "future version" of error display.  The raw
        textual-form description (the paper's *current* behaviour) is
        always included below it.
        """
        if self.last_error is None:
            return "no error"
        report = [f"compilation failed: {self.last_error}"]
        if hyper_terms:
            hyper_description = self._hyper_terms_description()
            if hyper_description:
                report.append(f"in the hyper-program: {hyper_description}")
        if self.last_error.diagnostics:
            report.append(f"diagnostics: {self.last_error.diagnostics}")
        if self.last_error.textual_form:
            report.append("translated textual form:")
            report.append(self.last_error.textual_form)
        return "\n".join(report)

    def _hyper_terms_description(self) -> Optional[str]:
        """Locate the last error inside the original hyper-program."""
        from repro.core.errormap import describe_syntax_error

        source_map = DynamicCompiler.last_source_map
        textual = self.last_error.textual_form if self.last_error else None
        if source_map is None or not textual:
            return None
        try:
            compile(textual, "<hyper>", "exec")
        except SyntaxError as error:
            return describe_syntax_error(error, source_map, textual)
        return None
