"""The window editor — layer 2 of Figure 10.

"The window editor provides an API for the graphical display and editing
of the contents of a basic editor.  It supports multiple fonts, sizes and
colours."  (Section 5.1)

Rendering targets plain text: each display cell row is produced from the
basic editor's edit form with link buttons drawn as ``[label]`` spans, a
viewport (scrolling window) over the document, an optional cursor mark,
and a face map describing which :class:`~repro.editor.faces.Face` applies
to every span — the information a graphical front end would need, kept
inspectable for tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.editform import HyperLink
from repro.editor.basic import BasicEditor
from repro.editor.faces import Face, FaceTable


@dataclass(frozen=True)
class StyledSpan:
    """One styled run of a display line."""

    text: str
    face: Face
    link: Optional[HyperLink] = None

    @property
    def is_button(self) -> bool:
        return self.link is not None


class WindowEditor:
    """Displays (and scrolls over) a basic editor's contents."""

    def __init__(self, editor: BasicEditor, width: int = 80,
                 height: int = 24, faces: Optional[FaceTable] = None):
        if width < 8 or height < 1:
            raise ValueError(f"unusable window geometry {width}x{height}")
        self.editor = editor
        self.width = width
        self.height = height
        self.faces = faces if faces is not None else FaceTable()
        self.top_line = 0

    # ------------------------------------------------------------------
    # viewport
    # ------------------------------------------------------------------

    def resize(self, width: int, height: int) -> None:
        if width < 8 or height < 1:
            raise ValueError(f"unusable window geometry {width}x{height}")
        self.width = width
        self.height = height
        self._clamp_viewport()

    def scroll_to(self, line: int) -> None:
        self.top_line = max(0, line)
        self._clamp_viewport()

    def scroll_by(self, delta: int) -> None:
        self.scroll_to(self.top_line + delta)

    def ensure_cursor_visible(self) -> None:
        line, __ = self.editor.cursor
        if line < self.top_line:
            self.top_line = line
        elif line >= self.top_line + self.height:
            self.top_line = line - self.height + 1

    def _clamp_viewport(self) -> None:
        last = max(0, self.editor.form.line_count() - 1)
        self.top_line = min(self.top_line, last)

    def visible_line_numbers(self) -> range:
        end = min(self.top_line + self.height,
                  self.editor.form.line_count())
        return range(self.top_line, end)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def styled_line(self, line_no: int) -> list[StyledSpan]:
        """The styled spans of one document line."""
        form = self.editor.form
        text = form.text_of_line(line_no)
        spans: list[StyledSpan] = []
        cursor = 0
        for link in form.links_on_line(line_no):
            if link.pos > cursor:
                spans.append(StyledSpan(text[cursor:link.pos],
                                        self.faces.face("text")))
            face = self.faces.face_for_link_kind(
                link.kind, link.is_special, link.is_primitive)
            spans.append(StyledSpan(f"[{link.label}]", face, link))
            cursor = link.pos
        if cursor < len(text) or not spans:
            spans.append(StyledSpan(text[cursor:], self.faces.face("text")))
        return spans

    def render_line(self, line_no: int) -> str:
        rendered = "".join(span.text for span in self.styled_line(line_no))
        return rendered[:self.width]

    def render(self, show_cursor: bool = False) -> str:
        """The visible viewport as text (one string, newline separated)."""
        lines = []
        cursor_line, cursor_col = self.editor.cursor
        for line_no in self.visible_line_numbers():
            rendered = self.render_line(line_no)
            if show_cursor and line_no == cursor_line:
                # Cursor drawn in *text* coordinates: count button widths
                # before the cursor column.
                display_col = self._display_column(line_no, cursor_col)
                if display_col <= len(rendered):
                    rendered = (rendered[:display_col] + "|" +
                                rendered[display_col:])[:self.width]
            lines.append(rendered)
        return "\n".join(lines)

    def _display_column(self, line_no: int, text_col: int) -> int:
        extra = sum(
            len(link.label) + 2
            for link in self.editor.form.links_on_line(line_no)
            if link.pos < text_col
        )
        return text_col + extra

    # ------------------------------------------------------------------
    # button hit testing (pressing a link shows it in the browser,
    # Section 5.4.1)
    # ------------------------------------------------------------------

    def button_at(self, line_no: int, display_col: int
                  ) -> Optional[HyperLink]:
        """The link button covering a display column, if any."""
        position = 0
        for span in self.styled_line(line_no):
            end = position + len(span.text)
            if span.is_button and position <= display_col < end:
                return span.link
            position = end
        return None

    def buttons(self) -> list[tuple[int, HyperLink]]:
        """All link buttons in the document as (line, link) pairs."""
        return list(self.editor.form.all_links())
