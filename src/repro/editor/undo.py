"""Undo/redo for the basic editor.

Snapshot-based: before every mutating operation the editor pushes a clone
of its edit form (plus cursor), and undo/redo walk the snapshot chain.
Bounded so that long sessions do not grow without limit.
"""

from __future__ import annotations

from typing import Generic, TypeVar

from repro.errors import NothingToUndoError

T = TypeVar("T")


class UndoStack(Generic[T]):
    """A bounded undo/redo stack of state snapshots."""

    def __init__(self, limit: int = 200):
        self._undo: list[T] = []
        self._redo: list[T] = []
        self._limit = limit

    def record(self, snapshot: T) -> None:
        """Push the pre-operation state; clears the redo branch."""
        self._undo.append(snapshot)
        if len(self._undo) > self._limit:
            del self._undo[0]
        self._redo.clear()

    def undo(self, current: T) -> T:
        """Exchange ``current`` for the previous snapshot."""
        if not self._undo:
            raise NothingToUndoError("nothing to undo")
        snapshot = self._undo.pop()
        self._redo.append(current)
        return snapshot

    def redo(self, current: T) -> T:
        if not self._redo:
            raise NothingToUndoError("nothing to redo")
        snapshot = self._redo.pop()
        self._undo.append(current)
        return snapshot

    @property
    def can_undo(self) -> bool:
        return bool(self._undo)

    @property
    def can_redo(self) -> bool:
        return bool(self._redo)

    def depth(self) -> int:
        return len(self._undo)

    def clear(self) -> None:
        self._undo.clear()
        self._redo.clear()
