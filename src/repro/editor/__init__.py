"""The hyper-program editor (paper Section 5.1, Figure 10).

Three independently replaceable layers:

* **basic editor** (:mod:`~repro.editor.basic`) — "stores and manipulates
  text and hyper-links.  It supports basic operations such as insertion,
  cutting and pasting of text and links";
* **window editor** (:mod:`~repro.editor.window`) — "provides an API for
  the graphical display and editing of the contents of a basic editor.
  It supports multiple fonts, sizes and colours" (faces, viewport,
  rendering);
* **user editor** (:mod:`~repro.editor.hyper`) — "Various higher-level
  user editors may be constructed using the window editor API.  One, the
  hyper-program editor, is pre-defined": link buttons, Insert Link,
  Compile, Display Class and Go.
"""

from repro.editor.faces import Face, FaceTable
from repro.editor.clipboard import Clipboard, Fragment
from repro.editor.undo import UndoStack
from repro.editor.basic import BasicEditor
from repro.editor.window import WindowEditor
from repro.editor.hyper import HyperProgramEditor

__all__ = [
    "Face",
    "FaceTable",
    "Clipboard",
    "Fragment",
    "UndoStack",
    "BasicEditor",
    "WindowEditor",
    "HyperProgramEditor",
]
