"""The basic editor — layer 1 of Figure 10.

"The basic editor stores and manipulates text and hyper-links.  It
supports basic operations such as insertion, cutting and pasting of text
and links."  (Section 5.1)

The buffer is an :class:`~repro.core.editform.EditForm` (the editing form
of Figure 11).  The editor adds a cursor, an optional selection, a
clipboard that carries links with text, and undo/redo.
"""

from __future__ import annotations

from typing import Optional

from repro.core.editform import EditForm, HyperLink
from repro.editor.clipboard import Clipboard, Fragment
from repro.editor.undo import UndoStack

Position = tuple[int, int]


class BasicEditor:
    """Cursor-based editing over an edit form."""

    def __init__(self, form: Optional[EditForm] = None,
                 clipboard: Optional[Clipboard] = None):
        self.form = form if form is not None else EditForm()
        self.clipboard = clipboard if clipboard is not None else Clipboard()
        self.cursor: Position = (0, 0)
        self.selection_anchor: Optional[Position] = None
        self._undo: UndoStack[tuple[EditForm, Position]] = UndoStack()

    # ------------------------------------------------------------------
    # cursor and selection
    # ------------------------------------------------------------------

    def move_cursor(self, line: int, col: int) -> None:
        line = max(0, min(line, self.form.line_count() - 1))
        col = max(0, min(col, len(self.form.text_of_line(line))))
        self.cursor = (line, col)

    def set_selection(self, anchor: Position, cursor: Position) -> None:
        self.move_cursor(*anchor)
        anchor = self.cursor
        self.move_cursor(*cursor)
        self.selection_anchor = anchor

    def clear_selection(self) -> None:
        self.selection_anchor = None

    @property
    def selection(self) -> Optional[tuple[Position, Position]]:
        """The selection as an ordered (start, end) pair, or ``None``."""
        if self.selection_anchor is None or \
                self.selection_anchor == self.cursor:
            return None
        pair = sorted([self.selection_anchor, self.cursor])
        return pair[0], pair[1]

    # ------------------------------------------------------------------
    # undo plumbing
    # ------------------------------------------------------------------

    def _checkpoint(self) -> None:
        self._undo.record((self.form.clone(), self.cursor))

    def undo(self) -> None:
        self.form, self.cursor = self._undo.undo((self.form.clone(),
                                                  self.cursor))
        self.clear_selection()

    def redo(self) -> None:
        self.form, self.cursor = self._undo.redo((self.form.clone(),
                                                  self.cursor))
        self.clear_selection()

    @property
    def can_undo(self) -> bool:
        return self._undo.can_undo

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------

    def insert_text(self, text: str) -> None:
        """Type ``text`` at the cursor (replacing any selection)."""
        self._checkpoint()
        self._delete_selection_no_checkpoint()
        line, col = self.cursor
        self.cursor = self.form.insert_text(line, col, text)

    def insert_link(self, link: HyperLink) -> HyperLink:
        """Insert a hyper-link button at the cursor."""
        self._checkpoint()
        self._delete_selection_no_checkpoint()
        line, col = self.cursor
        return self.form.insert_link(line, col, link)

    def newline(self) -> None:
        self.insert_text("\n")

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------

    def delete_selection(self) -> str:
        """Delete and return the selected text (links inside go with it)."""
        if self.selection is None:
            return ""
        self._checkpoint()
        return self._delete_selection_no_checkpoint()

    def _delete_selection_no_checkpoint(self) -> str:
        span = self.selection
        if span is None:
            return ""
        start, end = span
        deleted = self.form.delete_range(start, end)
        self.cursor = start
        self.clear_selection()
        return deleted

    def backspace(self) -> None:
        """Delete the character (or join lines) before the cursor; a link
        anchored exactly at the cursor is removed first, like an embedded
        character."""
        if self.selection is not None:
            self.delete_selection()
            return
        line, col = self.cursor
        links_here = [link for link in self.form.links_on_line(line)
                      if link.pos == col]
        if links_here:
            self._checkpoint()
            self.form.remove_link(line, links_here[-1])
            return
        if col > 0:
            self._checkpoint()
            self.form.delete_range((line, col - 1), (line, col))
            self.cursor = (line, col - 1)
        elif line > 0:
            self._checkpoint()
            new_col = len(self.form.text_of_line(line - 1))
            self.form.join_lines(line - 1)
            self.cursor = (line - 1, new_col)

    def delete_link(self, line: int, link: HyperLink) -> None:
        self._checkpoint()
        self.form.remove_link(line, link)

    # ------------------------------------------------------------------
    # clipboard (text and links travel together)
    # ------------------------------------------------------------------

    def copy(self) -> Fragment:
        """Copy the selection (with its links) to the clipboard."""
        span = self.selection
        if span is None:
            return Fragment()
        fragment = self._extract_fragment(*span)
        self.clipboard.put(fragment)
        return fragment

    def cut(self) -> Fragment:
        span = self.selection
        if span is None:
            return Fragment()
        fragment = self._extract_fragment(*span)
        self.clipboard.put(fragment)
        self._checkpoint()
        self._delete_selection_no_checkpoint()
        return fragment

    def paste(self) -> None:
        """Insert the clipboard fragment (text and links) at the cursor."""
        fragment = self.clipboard.current()
        if fragment is None or fragment.is_empty():
            return
        self._checkpoint()
        self._delete_selection_no_checkpoint()
        start_line, start_col = self.cursor
        self.cursor = self.form.insert_text(start_line, start_col,
                                            fragment.text)
        for frag_line, frag_col, link in fragment.links:
            if frag_line == 0:
                self.form.insert_link(start_line, start_col + frag_col,
                                      link)
            else:
                self.form.insert_link(start_line + frag_line, frag_col, link)

    def _extract_fragment(self, start: Position, end: Position) -> Fragment:
        (l1, c1), (l2, c2) = start, end
        if l1 == l2:
            text = self.form.text_of_line(l1)[c1:c2]
            links = [(0, link.pos - c1, link.clone())
                     for link in self.form.links_on_line(l1)
                     if c1 < link.pos < c2]
            return Fragment(text, links)
        parts = [self.form.text_of_line(l1)[c1:]]
        parts.extend(self.form.text_of_line(i) for i in range(l1 + 1, l2))
        parts.append(self.form.text_of_line(l2)[:c2])
        links: list[tuple[int, int, HyperLink]] = []
        for link in self.form.links_on_line(l1):
            if link.pos > c1:
                links.append((0, link.pos - c1, link.clone()))
        for line_no in range(l1 + 1, l2):
            for link in self.form.links_on_line(line_no):
                links.append((line_no - l1, link.pos, link.clone()))
        for link in self.form.links_on_line(l2):
            if link.pos < c2:
                links.append((l2 - l1, link.pos, link.clone()))
        return Fragment("\n".join(parts), links)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def link_at_cursor(self) -> Optional[HyperLink]:
        line, col = self.cursor
        for link in self.form.links_on_line(line):
            if link.pos == col:
                return link
        return None

    def find(self, needle: str,
             start: Position = (0, 0)) -> Optional[Position]:
        """First occurrence of ``needle`` at or after ``start``."""
        line, col = start
        for line_no in range(line, self.form.line_count()):
            text = self.form.text_of_line(line_no)
            from_col = col if line_no == line else 0
            index = text.find(needle, from_col)
            if index != -1:
                return line_no, index
        return None

    def text(self) -> str:
        return "\n".join(self.form.text_of_line(i)
                         for i in range(self.form.line_count()))

    def render(self) -> str:
        return self.form.render()
