"""Faces: "multiple fonts, sizes, styles and colours" (Section 5.1).

A :class:`Face` bundles the display attributes the window editor applies
to text spans and link buttons; a :class:`FaceTable` names faces and maps
link kinds and syntactic roles onto them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.linkkinds import LinkKind


@dataclass(frozen=True)
class Face:
    """One display face."""

    family: str = "monospace"
    size: int = 12
    bold: bool = False
    italic: bool = False
    colour: str = "black"
    background: str = "white"

    def with_(self, **changes) -> "Face":
        """A modified copy, e.g. ``face.with_(bold=True)``."""
        return replace(self, **changes)

    def describe(self) -> str:
        flags = "".join(flag for flag, on in
                        (("b", self.bold), ("i", self.italic)) if on)
        suffix = f"+{flags}" if flags else ""
        return f"{self.family}:{self.size}:{self.colour}{suffix}"


DEFAULT_TEXT = Face()
DEFAULT_KEYWORD = Face(bold=True, colour="navy")
DEFAULT_LINK = Face(colour="blue", background="lightgrey")
DEFAULT_SPECIAL_LINK = Face(bold=True, colour="darkgreen",
                            background="lightgrey")
DEFAULT_PRIMITIVE_LINK = Face(italic=True, colour="purple",
                              background="lightgrey")


class FaceTable:
    """Named faces plus the kind-to-face policy of the window editor."""

    def __init__(self) -> None:
        self._named: dict[str, Face] = {
            "text": DEFAULT_TEXT,
            "keyword": DEFAULT_KEYWORD,
            "link": DEFAULT_LINK,
            "special-link": DEFAULT_SPECIAL_LINK,
            "primitive-link": DEFAULT_PRIMITIVE_LINK,
        }

    def define(self, name: str, face: Face) -> None:
        self._named[name] = face

    def face(self, name: str) -> Face:
        try:
            return self._named[name]
        except KeyError:
            raise KeyError(f"no face named {name!r}; defined: "
                           f"{sorted(self._named)}") from None

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._named))

    def face_for_link_kind(self, kind: LinkKind,
                           is_special: bool, is_primitive: bool) -> Face:
        if is_primitive:
            return self.face("primitive-link")
        if is_special:
            return self.face("special-link")
        return self.face("link")
