"""Lexer for the Java subset, with hyper-link hole tokens.

The lexer recognises standard Java tokens (identifiers, keywords,
literals, separators, operators, comments) plus one extension: a *hole*
``⟦kind⟧`` standing for an embedded hyper-link of the given
:class:`~repro.core.linkkinds.LinkKind` — the way this reproduction writes
down "a hyper-link occurs here" in flat text for grammar checking.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.linkkinds import LinkKind
from repro.errors import LexError

HOLE_OPEN = "⟦"   # ⟦
HOLE_CLOSE = "⟧"  # ⟧


class TokenType(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    INT_LIT = "int"
    FLOAT_LIT = "float"
    CHAR_LIT = "char"
    STRING_LIT = "string"
    BOOL_LIT = "bool"
    NULL_LIT = "null"
    SEPARATOR = "separator"   # ( ) { } [ ] ; , .
    OPERATOR = "operator"
    HOLE = "hole"             # ⟦kind⟧ hyper-link hole
    EOF = "eof"


KEYWORDS = frozenset({
    "abstract", "boolean", "break", "byte", "case", "catch", "char",
    "class", "const", "continue", "default", "do", "double", "else",
    "extends", "final", "finally", "float", "for", "goto", "if",
    "implements", "import", "instanceof", "int", "interface", "long",
    "native", "new", "package", "private", "protected", "public",
    "return", "short", "static", "strictfp", "super", "switch",
    "synchronized", "this", "throw", "throws", "transient", "try",
    "void", "volatile", "while",
})

PRIMITIVE_TYPE_KEYWORDS = frozenset({
    "boolean", "byte", "char", "double", "float", "int", "long", "short",
})

MODIFIER_KEYWORDS = frozenset({
    "abstract", "final", "native", "private", "protected", "public",
    "static", "strictfp", "synchronized", "transient", "volatile",
})

_SEPARATORS = "(){}[];,."

# Longest first so ">>>=" wins over ">>" etc.
_OPERATORS = sorted([
    ">>>=", ">>>", "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||",
    "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<",
    ">>", "+", "-", "*", "/", "%", "<", ">", "=", "!", "~", "&", "|",
    "^", "?", ":",
], key=len, reverse=True)

_KIND_BY_VALUE = {kind.value: kind for kind in LinkKind}


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    line: int
    column: int
    #: For HOLE tokens: the 0-based ordinal of the hole in source order,
    #: linking the hole to its entry in the hyper-program's link vector.
    ordinal: int = -1

    @property
    def hole_kind(self) -> LinkKind:
        if self.type is not TokenType.HOLE:
            raise ValueError(f"{self!r} is not a hole token")
        return _KIND_BY_VALUE[self.value]

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"


class Lexer:
    """Tokenises Java-subset source text."""

    def __init__(self, source: str):
        self._source = source
        self._pos = 0
        self._line = 1
        self._column = 1
        self._hole_counter = 0

    def tokens(self) -> list[Token]:
        """The full token stream, ending with one EOF token."""
        out: list[Token] = []
        while True:
            token = self._next_token()
            out.append(token)
            if token.type is TokenType.EOF:
                return out

    # -- machinery -----------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        return self._source[index] if index < len(self._source) else ""

    def _advance(self, count: int = 1) -> str:
        text = self._source[self._pos:self._pos + count]
        for ch in text:
            if ch == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
        self._pos += count
        return text

    def _error(self, message: str) -> LexError:
        return LexError(f"{message} at {self._line}:{self._column}",
                        self._line, self._column)

    def _skip_trivia(self) -> None:
        while self._pos < len(self._source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._pos < len(self._source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self._pos < len(self._source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise self._error("unterminated block comment")
            else:
                return

    # -- token recognisers ------------------------------------------------

    def _next_token(self) -> Token:
        self._skip_trivia()
        line, column = self._line, self._column
        if self._pos >= len(self._source):
            return Token(TokenType.EOF, "", line, column)
        ch = self._peek()
        if ch == HOLE_OPEN:
            return self._lex_hole(line, column)
        if ch.isalpha() or ch == "_" or ch == "$":
            return self._lex_word(line, column)
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._lex_number(line, column)
        if ch == '"':
            return self._lex_string(line, column)
        if ch == "'":
            return self._lex_char(line, column)
        if ch in _SEPARATORS:
            self._advance()
            return Token(TokenType.SEPARATOR, ch, line, column)
        for op in _OPERATORS:
            if self._source.startswith(op, self._pos):
                self._advance(len(op))
                return Token(TokenType.OPERATOR, op, line, column)
        raise self._error(f"unexpected character {ch!r}")

    def _lex_hole(self, line: int, column: int) -> Token:
        self._advance()  # consume ⟦
        end = self._source.find(HOLE_CLOSE, self._pos)
        if end == -1:
            raise self._error("unterminated hyper-link hole")
        kind_text = self._source[self._pos:end].strip()
        if kind_text not in _KIND_BY_VALUE:
            raise self._error(f"unknown hyper-link kind {kind_text!r}")
        self._advance(end - self._pos + 1)
        ordinal = self._hole_counter
        self._hole_counter += 1
        return Token(TokenType.HOLE, kind_text, line, column, ordinal)

    def _lex_word(self, line: int, column: int) -> Token:
        start = self._pos
        while self._pos < len(self._source) and (
                self._peek().isalnum() or self._peek() in "_$"):
            self._advance()
        word = self._source[start:self._pos]
        if word in ("true", "false"):
            return Token(TokenType.BOOL_LIT, word, line, column)
        if word == "null":
            return Token(TokenType.NULL_LIT, word, line, column)
        if word in KEYWORDS:
            return Token(TokenType.KEYWORD, word, line, column)
        return Token(TokenType.IDENT, word, line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        # NB: _peek() returns "" at end of input, and `"" in "eE"` is true
        # in Python, so every membership test below guards on truthiness.
        start = self._pos
        is_float = False
        if self._peek() == "0" and self._peek(1) and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
        else:
            while self._peek().isdigit():
                self._advance()
            if self._peek() == ".":
                is_float = True
                self._advance()
                while self._peek().isdigit():
                    self._advance()
            if self._peek() and self._peek() in "eE":
                is_float = True
                self._advance()
                if self._peek() and self._peek() in "+-":
                    self._advance()
                if not self._peek().isdigit():
                    raise self._error("malformed exponent")
                while self._peek().isdigit():
                    self._advance()
        if self._peek() and self._peek() in "fFdD":
            is_float = True
            self._advance()
        elif self._peek() and self._peek() in "lL":
            self._advance()
        text = self._source[start:self._pos]
        return Token(TokenType.FLOAT_LIT if is_float else TokenType.INT_LIT,
                     text, line, column)

    def _lex_string(self, line: int, column: int) -> Token:
        start = self._pos
        self._advance()  # opening quote
        while True:
            ch = self._peek()
            if not ch or ch == "\n":
                raise self._error("unterminated string literal")
            if ch == "\\":
                self._advance(2)
                continue
            self._advance()
            if ch == '"':
                break
        return Token(TokenType.STRING_LIT,
                     self._source[start:self._pos], line, column)

    def _lex_char(self, line: int, column: int) -> Token:
        start = self._pos
        self._advance()  # opening quote
        if self._peek() == "\\":
            self._advance(2)
        else:
            self._advance()
        if self._peek() != "'":
            raise self._error("unterminated character literal")
        self._advance()
        return Token(TokenType.CHAR_LIT,
                     self._source[start:self._pos], line, column)
