"""AST nodes for the Java subset.

Plain dataclasses; the parser builds these and the production checkers
inspect their shapes.  Hyper-link holes appear as :class:`HoleExpr` /
:class:`HoleType` carrying their :class:`~repro.core.linkkinds.LinkKind`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.linkkinds import LinkKind


class Node:
    """Base class for all AST nodes."""


# -- types -------------------------------------------------------------------

@dataclass
class PrimitiveTypeNode(Node):
    name: str


@dataclass
class ClassTypeNode(Node):
    parts: tuple[str, ...]

    @property
    def name(self) -> str:
        return ".".join(self.parts)


@dataclass
class ArrayTypeNode(Node):
    element: Node
    dimensions: int = 1


@dataclass
class HoleType(Node):
    """A hyper-link hole in a type position."""
    kind: LinkKind
    ordinal: int = -1


# -- expressions ---------------------------------------------------------------

@dataclass
class Literal(Node):
    value: str
    literal_kind: str  # int/float/char/string/bool/null


@dataclass
class NameExpr(Node):
    parts: tuple[str, ...]

    @property
    def name(self) -> str:
        return ".".join(self.parts)


@dataclass
class ThisExpr(Node):
    pass


@dataclass
class ParenExpr(Node):
    inner: Node


@dataclass
class FieldAccessExpr(Node):
    target: Node
    name: str


@dataclass
class ArrayAccessExpr(Node):
    array: Node
    index: Node


@dataclass
class MethodCallExpr(Node):
    target: Optional[Node]  # None for unqualified calls
    name: str
    args: list[Node] = field(default_factory=list)


@dataclass
class HoleCallExpr(Node):
    """Invocation of a hyper-linked method: ``⟦(static) method⟧(args)``."""
    hole: "HoleExpr"
    args: list[Node] = field(default_factory=list)


@dataclass
class NewExpr(Node):
    created: Node  # ClassTypeNode or HoleType/HoleExpr for linked ctor/class
    args: list[Node] = field(default_factory=list)


@dataclass
class NewArrayExpr(Node):
    element: Node
    dimension_exprs: list[Node] = field(default_factory=list)
    extra_dims: int = 0


@dataclass
class UnaryExpr(Node):
    op: str
    operand: Node
    prefix: bool = True


@dataclass
class BinaryExpr(Node):
    op: str
    left: Node
    right: Node


@dataclass
class InstanceOfExpr(Node):
    expr: Node
    type: Node


@dataclass
class ConditionalExpr(Node):
    condition: Node
    then: Node
    otherwise: Node


@dataclass
class AssignmentExpr(Node):
    op: str
    target: Node
    value: Node


@dataclass
class CastExpr(Node):
    type: Node
    expr: Node


@dataclass
class HoleExpr(Node):
    """A hyper-link hole in an expression position."""
    kind: LinkKind
    ordinal: int = -1


# -- statements -------------------------------------------------------------------

@dataclass
class Block(Node):
    statements: list[Node] = field(default_factory=list)


@dataclass
class LocalVarDecl(Node):
    type: Node
    declarators: list[tuple[str, int, Optional[Node]]] = field(
        default_factory=list)  # (name, extra array dims, initialiser)


@dataclass
class ExprStatement(Node):
    expr: Node


@dataclass
class IfStatement(Node):
    condition: Node
    then: Node
    otherwise: Optional[Node] = None


@dataclass
class WhileStatement(Node):
    condition: Node
    body: Node


@dataclass
class ForStatement(Node):
    init: Optional[Node]
    condition: Optional[Node]
    update: list[Node]
    body: Node


@dataclass
class ReturnStatement(Node):
    value: Optional[Node] = None


@dataclass
class ThrowStatement(Node):
    value: Node


@dataclass
class EmptyStatement(Node):
    pass


@dataclass
class BreakStatement(Node):
    pass


@dataclass
class ContinueStatement(Node):
    pass


# -- declarations --------------------------------------------------------------------

@dataclass
class Param(Node):
    type: Node
    name: str
    extra_dims: int = 0


@dataclass
class FieldDecl(Node):
    modifiers: tuple[str, ...]
    type: Node
    declarators: list[tuple[str, int, Optional[Node]]] = field(
        default_factory=list)


@dataclass
class MethodDecl(Node):
    modifiers: tuple[str, ...]
    return_type: Optional[Node]  # None for void
    name: str
    params: list[Param] = field(default_factory=list)
    body: Optional[Block] = None


@dataclass
class ConstructorDecl(Node):
    modifiers: tuple[str, ...]
    name: str
    params: list[Param] = field(default_factory=list)
    body: Optional[Block] = None


@dataclass
class ClassDecl(Node):
    modifiers: tuple[str, ...]
    name: str
    is_interface: bool = False
    extends: Optional[Node] = None
    implements: list[Node] = field(default_factory=list)
    members: list[Node] = field(default_factory=list)


@dataclass
class ImportDecl(Node):
    parts: tuple[str, ...]
    wildcard: bool = False


@dataclass
class CompilationUnit(Node):
    package: Optional[tuple[str, ...]] = None
    imports: list[ImportDecl] = field(default_factory=list)
    types: list[ClassDecl] = field(default_factory=list)
