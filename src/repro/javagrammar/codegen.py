"""Java-subset to Python transpilation.

The paper's hyper-programs are Java source.  This module closes the loop:
a hyper-program written in the Java subset (with ``⟦kind⟧`` holes where
links sit) is parsed by :mod:`repro.javagrammar.parser` and transpiled to
Python, each hole replaced by the caller-supplied denotation for the
corresponding link — the same retrieval expressions the textual form uses.
The result compiles with the standard (Python) compiler and runs against
the persistent store, so Figure 2 can be written *verbatim* and executed.

Translation summary:

========================  =======================================
Java                      Python
========================  =======================================
class C extends B         class C(B)
fields                    class-level annotations / assignments
constructor               ``__init__``
static method             ``@staticmethod``
``System.out.println``    ``print``
``new C(args)``           ``C(args)``
``new T[n]``              ``[default] * n``
``a && b`` / ``!a``       ``a and b`` / ``not a``
``x instanceof T``        ``isinstance(x, T)``
``(T) expr``              ``expr`` (fidelity enforced by the store)
``c ? a : b``             ``a if c else b``
``i++`` (statement)       ``i += 1``
``throw e``               ``raise e``
========================  =======================================

Assignments and ``++``/``--`` are supported in statement positions (and
``for`` updates), matching idiomatic Python; using them as values raises
:class:`~repro.errors.GrammarError`.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import GrammarError
from repro.javagrammar import ast_nodes as ast
from repro.javagrammar.parser import Parser

#: Maps a hole's source ordinal to its Python denotation.
HoleText = Callable[[int, "ast.LinkKind"], str]

_INDENT = "    "

_PRIMITIVE_DEFAULTS = {
    "boolean": "False", "char": "'\\x00'", "byte": "0", "short": "0",
    "int": "0", "long": "0", "float": "0.0", "double": "0.0",
}

_BINARY_OPS = {
    "&&": "and", "||": "or",
    "==": "==", "!=": "!=", "<": "<", ">": ">", "<=": "<=", ">=": ">=",
    "+": "+", "-": "-", "*": "*", "/": "/", "%": "%",
    "&": "&", "|": "|", "^": "^", "<<": "<<", ">>": ">>", ">>>": ">>",
}

_WELL_KNOWN_NAMES = {
    "System.out.println": "print",
    "System.out.print": "print",
    "null": "None",
    "this": "self",
}


class JavaToPython:
    """Transpiles one parsed compilation unit."""

    def __init__(self, hole_text: Optional[HoleText] = None):
        self._hole_text = hole_text or self._default_hole_text

    @staticmethod
    def _default_hole_text(ordinal: int, kind) -> str:
        raise GrammarError(
            f"hyper-link hole #{ordinal} ({kind.value}) has no denotation; "
            f"supply hole_text when transpiling hyper-programs"
        )

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------

    def transpile_source(self, java_source: str) -> str:
        parser = Parser(java_source)
        unit = parser.parse_compilation_unit()
        parser.expect_eof()
        return self.transpile_unit(unit)

    def transpile_unit(self, unit: ast.CompilationUnit) -> str:
        chunks = []
        for decl in unit.types:
            chunks.append(self._class_decl(decl, 0))
        return "\n\n".join(chunks) + "\n"

    # ------------------------------------------------------------------
    # declarations
    # ------------------------------------------------------------------

    def _class_decl(self, decl: ast.ClassDecl, depth: int) -> str:
        indent = _INDENT * depth
        bases = []
        if decl.extends is not None:
            bases.append(self._type_name(decl.extends))
        for implemented in decl.implements:
            bases.append(self._type_name(implemented))
        base_clause = f"({', '.join(bases)})" if bases else ""
        lines = [f"{indent}class {decl.name}{base_clause}:"]
        body: list[str] = []
        instance_fields: list[tuple[str, Optional[ast.Node], ast.Node]] = []
        for member in decl.members:
            if isinstance(member, ast.FieldDecl):
                static = "static" in member.modifiers
                for name, __, initialiser in member.declarators:
                    if static:
                        value = (self._expr(initialiser)
                                 if initialiser is not None
                                 else self._default_for(member.type))
                        body.append(f"{_INDENT * (depth + 1)}{name} = {value}")
                    else:
                        instance_fields.append((name, initialiser,
                                                member.type))
            elif isinstance(member, ast.ConstructorDecl):
                body.append(self._constructor(member, instance_fields,
                                              depth + 1))
                instance_fields = []  # consumed by the constructor
            elif isinstance(member, ast.MethodDecl):
                body.append(self._method(member, depth + 1))
            elif isinstance(member, ast.ClassDecl):
                body.append(self._class_decl(member, depth + 1))
        if instance_fields:
            # No explicit constructor: synthesise one initialising fields.
            body.insert(0, self._default_constructor(instance_fields,
                                                     depth + 1))
        if not body:
            body.append(f"{_INDENT * (depth + 1)}pass")
        lines.extend(body)
        return "\n".join(lines)

    def _default_for(self, type_node: ast.Node) -> str:
        if isinstance(type_node, ast.PrimitiveTypeNode):
            return _PRIMITIVE_DEFAULTS.get(type_node.name, "None")
        return "None"

    def _default_constructor(self, fields, depth: int) -> str:
        indent = _INDENT * depth
        lines = [f"{indent}def __init__(self):"]
        for name, initialiser, type_node in fields:
            value = (self._expr(initialiser) if initialiser is not None
                     else self._default_for(type_node))
            lines.append(f"{indent}{_INDENT}self.{name} = {value}")
        return "\n".join(lines)

    def _constructor(self, decl: ast.ConstructorDecl, fields,
                     depth: int) -> str:
        indent = _INDENT * depth
        params = ", ".join(["self"] + [param.name for param in decl.params])
        lines = [f"{indent}def __init__({params}):"]
        for name, initialiser, type_node in fields:
            value = (self._expr(initialiser) if initialiser is not None
                     else self._default_for(type_node))
            lines.append(f"{indent}{_INDENT}self.{name} = {value}")
        body = self._block_lines(decl.body, depth + 1) if decl.body else []
        lines.extend(body)
        if len(lines) == 1:
            lines.append(f"{indent}{_INDENT}pass")
        return "\n".join(lines)

    def _method(self, decl: ast.MethodDecl, depth: int) -> str:
        indent = _INDENT * depth
        is_static = "static" in decl.modifiers
        lines = []
        if is_static:
            lines.append(f"{indent}@staticmethod")
            params = ", ".join(param.name for param in decl.params)
        else:
            params = ", ".join(["self"] +
                               [param.name for param in decl.params])
        lines.append(f"{indent}def {decl.name}({params}):")
        if decl.body is None:
            lines.append(f"{indent}{_INDENT}raise NotImplementedError"
                         f"('{decl.name} is abstract')")
        else:
            body = self._block_lines(decl.body, depth + 1)
            lines.extend(body if body else [f"{indent}{_INDENT}pass"])
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def _block_lines(self, block: ast.Block, depth: int) -> list[str]:
        lines: list[str] = []
        for statement in block.statements:
            lines.extend(self._statement(statement, depth))
        return lines

    def _statement(self, node: ast.Node, depth: int) -> list[str]:
        indent = _INDENT * depth
        if isinstance(node, ast.Block):
            inner = self._block_lines(node, depth)
            return inner if inner else [f"{indent}pass"]
        if isinstance(node, ast.LocalVarDecl):
            lines = []
            for name, __, initialiser in node.declarators:
                value = (self._expr(initialiser) if initialiser is not None
                         else self._default_for(node.type))
                lines.append(f"{indent}{name} = {value}")
            return lines
        if isinstance(node, ast.ExprStatement):
            return [f"{indent}{self._statement_expr(node.expr)}"]
        if isinstance(node, ast.IfStatement):
            lines = [f"{indent}if {self._expr(node.condition)}:"]
            lines.extend(self._suite(node.then, depth + 1))
            if node.otherwise is not None:
                lines.append(f"{indent}else:")
                lines.extend(self._suite(node.otherwise, depth + 1))
            return lines
        if isinstance(node, ast.WhileStatement):
            lines = [f"{indent}while {self._expr(node.condition)}:"]
            lines.extend(self._suite(node.body, depth + 1))
            return lines
        if isinstance(node, ast.ForStatement):
            return self._for_statement(node, depth)
        if isinstance(node, ast.ReturnStatement):
            if node.value is None:
                return [f"{indent}return"]
            return [f"{indent}return {self._expr(node.value)}"]
        if isinstance(node, ast.ThrowStatement):
            return [f"{indent}raise {self._expr(node.value)}"]
        if isinstance(node, ast.BreakStatement):
            return [f"{indent}break"]
        if isinstance(node, ast.ContinueStatement):
            return [f"{indent}continue"]
        if isinstance(node, ast.EmptyStatement):
            return [f"{indent}pass"]
        raise GrammarError(f"cannot transpile statement {node!r}")

    def _suite(self, node: ast.Node, depth: int) -> list[str]:
        lines = self._statement(node, depth)
        return lines if lines else [f"{_INDENT * depth}pass"]

    def _for_statement(self, node: ast.ForStatement,
                       depth: int) -> list[str]:
        # Java's general for-loop becomes init; while cond: body; update.
        indent = _INDENT * depth
        lines: list[str] = []
        if node.init is not None:
            lines.extend(self._statement(node.init, depth))
        condition = self._expr(node.condition) if node.condition is not None \
            else "True"
        lines.append(f"{indent}while {condition}:")
        body = self._suite(node.body, depth + 1)
        lines.extend(body)
        for update in node.update:
            lines.append(f"{_INDENT * (depth + 1)}"
                         f"{self._statement_expr(update)}")
        return lines

    def _statement_expr(self, node: ast.Node) -> str:
        """An expression used as a statement; assignments and ++/-- are
        legal here and rendered as Python statements."""
        if isinstance(node, ast.AssignmentExpr):
            target = self._expr(node.target)
            op = node.op if node.op != ">>>=" else ">>="
            return f"{target} {op} {self._expr(node.value)}"
        if isinstance(node, ast.UnaryExpr) and node.op in ("++", "--"):
            delta = "+= 1" if node.op == "++" else "-= 1"
            return f"{self._expr(node.operand)} {delta}"
        return self._expr(node)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def _expr(self, node: ast.Node) -> str:
        if isinstance(node, ast.Literal):
            return self._literal(node)
        if isinstance(node, ast.NameExpr):
            return self._name(node.name)
        if isinstance(node, ast.ThisExpr):
            return "self"
        if isinstance(node, ast.ParenExpr):
            return f"({self._expr(node.inner)})"
        if isinstance(node, ast.FieldAccessExpr):
            return f"{self._expr(node.target)}.{node.name}"
        if isinstance(node, ast.ArrayAccessExpr):
            return f"{self._expr(node.array)}[{self._expr(node.index)}]"
        if isinstance(node, ast.MethodCallExpr):
            args = ", ".join(self._expr(arg) for arg in node.args)
            if node.target is None:
                return f"{self._name(node.name)}({args})"
            qualified = f"{self._expr(node.target)}.{node.name}"
            return f"{self._name(qualified)}({args})"
        if isinstance(node, ast.HoleCallExpr):
            args = ", ".join(self._expr(arg) for arg in node.args)
            return f"{self._hole(node.hole)}({args})"
        if isinstance(node, ast.NewExpr):
            args = ", ".join(self._expr(arg) for arg in node.args)
            created = (self._hole(node.created)
                       if isinstance(node.created, ast.HoleExpr)
                       else self._type_name(node.created))
            return f"{created}({args})"
        if isinstance(node, ast.NewArrayExpr):
            return self._new_array(node)
        if isinstance(node, ast.UnaryExpr):
            return self._unary(node)
        if isinstance(node, ast.BinaryExpr):
            return self._binary(node)
        if isinstance(node, ast.InstanceOfExpr):
            return (f"isinstance({self._expr(node.expr)}, "
                    f"{self._type_name(node.type)})")
        if isinstance(node, ast.ConditionalExpr):
            return (f"({self._expr(node.then)} "
                    f"if {self._expr(node.condition)} "
                    f"else {self._expr(node.otherwise)})")
        if isinstance(node, ast.CastExpr):
            # Java casts narrow static types; object fidelity is enforced
            # by the store's registry, so the cast is a no-op wrapper.
            return f"({self._expr(node.expr)})"
        if isinstance(node, ast.AssignmentExpr):
            raise GrammarError(
                "assignment is only supported in statement position"
            )
        if isinstance(node, (ast.HoleExpr, ast.HoleType)):
            return self._hole(node)
        raise GrammarError(f"cannot transpile expression {node!r}")

    def _hole(self, node: ast.Node) -> str:
        return self._hole_text(node.ordinal, node.kind)

    def _literal(self, node: ast.Literal) -> str:
        if node.literal_kind == "null":
            return "None"
        if node.literal_kind == "bool":
            return "True" if node.value == "true" else "False"
        if node.literal_kind == "char":
            return node.value.replace("'", '"', 2) \
                if '"' not in node.value else node.value
        if node.literal_kind in ("int", "float"):
            return node.value.rstrip("lLfFdD")
        return node.value  # strings carry their quotes

    def _name(self, dotted: str) -> str:
        return _WELL_KNOWN_NAMES.get(dotted, dotted)

    def _type_name(self, node: ast.Node) -> str:
        if isinstance(node, ast.PrimitiveTypeNode):
            return {"boolean": "bool", "char": "str", "float": "float",
                    "double": "float"}.get(node.name, "int")
        if isinstance(node, ast.ClassTypeNode):
            if node.name == "String":
                return "str"
            if node.name == "Object":
                return "object"
            return node.name
        if isinstance(node, ast.ArrayTypeNode):
            return "list"
        if isinstance(node, (ast.HoleType, ast.HoleExpr)):
            return self._hole(node)
        raise GrammarError(f"cannot transpile type {node!r}")

    def _new_array(self, node: ast.NewArrayExpr) -> str:
        if not node.dimension_exprs:
            raise GrammarError("array creation needs at least one dimension")
        default = "None"
        if isinstance(node.element, ast.PrimitiveTypeNode):
            default = _PRIMITIVE_DEFAULTS.get(node.element.name, "None")
        result = default
        for dimension in reversed(node.dimension_exprs):
            size = self._expr(dimension)
            result = f"[{result} for __ in range({size})]"
        return result

    def _unary(self, node: ast.UnaryExpr) -> str:
        if node.op in ("++", "--"):
            raise GrammarError(
                f"{node.op} is only supported in statement position"
            )
        operand = self._expr(node.operand)
        if node.op == "!":
            return f"(not {operand})"
        return f"({node.op}{operand})"

    def _binary(self, node: ast.BinaryExpr) -> str:
        op = _BINARY_OPS.get(node.op)
        if op is None:
            raise GrammarError(f"unsupported binary operator {node.op!r}")
        left, right = self._expr(node.left), self._expr(node.right)
        if node.op == "/" and self._is_integral(node):
            # Java / on integers truncates; Python // floors.  Use int()
            # of true division to match Java's truncation toward zero.
            return f"int({left} / {right})"
        return f"({left} {op} {right})"

    @staticmethod
    def _is_integral(node: ast.BinaryExpr) -> bool:
        return (isinstance(node.left, ast.Literal)
                and node.left.literal_kind == "int"
                and isinstance(node.right, ast.Literal)
                and node.right.literal_kind == "int")


def transpile(java_source: str,
              hole_text: Optional[HoleText] = None) -> str:
    """One-shot transpilation of Java-subset source to Python."""
    return JavaToPython(hole_text).transpile_source(java_source)
