"""Recursive-descent parser for the Java subset, hole-aware.

The grammar covers what the paper's examples and Table 1 need: compilation
units, class/interface declarations, fields, methods, constructors, the
usual statements, and the full expression grammar down to the productions
named in Table 1 (``Primary``, ``Literal``, ``FieldAccess``, ``Name``,
``ArrayAccess``) plus the type productions (``ClassType``,
``InterfaceType``, ``PrimitiveType``, ``ArrayType``).

Hyper-link holes (``⟦kind⟧`` tokens) are accepted exactly where the
paper's Section 2 rule allows:

* **type positions** accept type-kind holes (class, interface, primitive
  type, array type);
* **primary positions** accept value-kind holes (object, primitive value,
  field, array, array element);
* a **method hole** is accepted only as an invocation target (its ``Name``
  production is context-sensitive);
* a **constructor hole** is accepted only directly after ``new``;
* package positions never accept holes — "packages cannot be linked to".
"""

from __future__ import annotations

from typing import Optional

from repro.core.linkkinds import LinkKind
from repro.errors import ParseError
from repro.javagrammar import ast_nodes as ast
from repro.javagrammar.lexer import (
    Lexer,
    MODIFIER_KEYWORDS,
    PRIMITIVE_TYPE_KEYWORDS,
    Token,
    TokenType,
)

#: Hole kinds legal in a type position.
_TYPE_HOLE_KINDS = frozenset({
    LinkKind.CLASS, LinkKind.INTERFACE, LinkKind.PRIMITIVE_TYPE,
    LinkKind.ARRAY_TYPE,
})

#: Hole kinds legal as a primary expression on their own.
_PRIMARY_HOLE_KINDS = frozenset({
    LinkKind.OBJECT, LinkKind.PRIMITIVE_VALUE, LinkKind.FIELD,
    LinkKind.ARRAY, LinkKind.ARRAY_ELEMENT,
})

_ASSIGN_OPS = frozenset({"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
                         "^=", "<<=", ">>=", ">>>="})

# Binary operator precedence (higher binds tighter).
_BINARY_PRECEDENCE = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,  # instanceof handled separately
    "<<": 8, ">>": 8, ">>>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class Parser:
    """One-token-lookahead recursive-descent parser."""

    def __init__(self, source: str):
        self._tokens = Lexer(source).tokens()
        self._pos = 0

    # ------------------------------------------------------------------
    # token machinery
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _check(self, type_: TokenType, value: str | None = None) -> bool:
        token = self._peek()
        return token.type is type_ and (value is None or token.value == value)

    def _match(self, type_: TokenType, value: str | None = None
               ) -> Optional[Token]:
        if self._check(type_, value):
            return self._advance()
        return None

    def _expect(self, type_: TokenType, value: str | None = None) -> Token:
        if self._check(type_, value):
            return self._advance()
        token = self._peek()
        wanted = value if value is not None else type_.value
        raise ParseError(
            f"expected {wanted!r} but found {token.value or token.type.value!r}",
            token.line, token.column,
        )

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(f"{message} (at {token.value!r})",
                          token.line, token.column)

    def at_eof(self) -> bool:
        return self._peek().type is TokenType.EOF

    def expect_eof(self) -> None:
        if not self.at_eof():
            raise self._error("trailing input after parse")

    # ------------------------------------------------------------------
    # compilation unit and declarations
    # ------------------------------------------------------------------

    def parse_compilation_unit(self) -> ast.CompilationUnit:
        unit = ast.CompilationUnit()
        if self._match(TokenType.KEYWORD, "package"):
            unit.package = self._qualified_name_parts()
            self._expect(TokenType.SEPARATOR, ";")
        while self._check(TokenType.KEYWORD, "import"):
            unit.imports.append(self._parse_import())
        while not self.at_eof():
            unit.types.append(self.parse_class_declaration())
        return unit

    def _parse_import(self) -> ast.ImportDecl:
        self._expect(TokenType.KEYWORD, "import")
        parts = [self._expect(TokenType.IDENT).value]
        wildcard = False
        while self._match(TokenType.SEPARATOR, "."):
            if self._match(TokenType.OPERATOR, "*"):
                wildcard = True
                break
            parts.append(self._expect(TokenType.IDENT).value)
        self._expect(TokenType.SEPARATOR, ";")
        return ast.ImportDecl(tuple(parts), wildcard)

    def _parse_modifiers(self) -> tuple[str, ...]:
        modifiers = []
        while self._peek().type is TokenType.KEYWORD and \
                self._peek().value in MODIFIER_KEYWORDS:
            modifiers.append(self._advance().value)
        return tuple(modifiers)

    def parse_class_declaration(self) -> ast.ClassDecl:
        modifiers = self._parse_modifiers()
        is_interface = False
        if self._match(TokenType.KEYWORD, "interface"):
            is_interface = True
        else:
            self._expect(TokenType.KEYWORD, "class")
        name = self._expect(TokenType.IDENT).value
        decl = ast.ClassDecl(modifiers, name, is_interface)
        if self._match(TokenType.KEYWORD, "extends"):
            decl.extends = self.parse_type()
        if self._match(TokenType.KEYWORD, "implements"):
            decl.implements.append(self.parse_type())
            while self._match(TokenType.SEPARATOR, ","):
                decl.implements.append(self.parse_type())
        self._expect(TokenType.SEPARATOR, "{")
        while not self._check(TokenType.SEPARATOR, "}"):
            if self._match(TokenType.SEPARATOR, ";"):
                continue
            decl.members.append(self._parse_member(decl.name))
        self._expect(TokenType.SEPARATOR, "}")
        return decl

    def _parse_member(self, class_name: str) -> ast.Node:
        modifiers = self._parse_modifiers()
        if self._check(TokenType.KEYWORD, "class") or \
                self._check(TokenType.KEYWORD, "interface"):
            # Nested type: re-parse with the modifiers already consumed.
            nested = self.parse_class_declaration_body(modifiers)
            return nested
        # Constructor: ClassName '('
        if self._check(TokenType.IDENT, class_name) and \
                self._peek(1).type is TokenType.SEPARATOR and \
                self._peek(1).value == "(":
            name = self._advance().value
            params = self._parse_params()
            self._skip_throws()
            body = self.parse_block()
            return ast.ConstructorDecl(modifiers, name, params, body)
        # void method
        if self._match(TokenType.KEYWORD, "void"):
            name = self._expect(TokenType.IDENT).value
            params = self._parse_params()
            self._skip_throws()
            body = None if self._match(TokenType.SEPARATOR, ";") \
                else self.parse_block()
            return ast.MethodDecl(modifiers, None, name, params, body)
        # Field or typed method.
        member_type = self.parse_type()
        name = self._expect(TokenType.IDENT).value
        if self._check(TokenType.SEPARATOR, "("):
            params = self._parse_params()
            self._skip_throws()
            body = None if self._match(TokenType.SEPARATOR, ";") \
                else self.parse_block()
            return ast.MethodDecl(modifiers, member_type, name, params, body)
        declarators = [self._parse_declarator(name)]
        while self._match(TokenType.SEPARATOR, ","):
            next_name = self._expect(TokenType.IDENT).value
            declarators.append(self._parse_declarator(next_name))
        self._expect(TokenType.SEPARATOR, ";")
        return ast.FieldDecl(modifiers, member_type, declarators)

    def parse_class_declaration_body(self,
                                     modifiers: tuple[str, ...]
                                     ) -> ast.ClassDecl:
        """Class declaration whose modifiers were already consumed."""
        decl = self.parse_class_declaration()
        decl.modifiers = modifiers + decl.modifiers
        return decl

    def _parse_declarator(self, name: str) -> tuple[str, int, Optional[ast.Node]]:
        dims = 0
        while self._check(TokenType.SEPARATOR, "[") and \
                self._peek(1).value == "]":
            self._advance()
            self._advance()
            dims += 1
        initialiser = None
        if self._match(TokenType.OPERATOR, "="):
            initialiser = self.parse_expression()
        return name, dims, initialiser

    def _parse_params(self) -> list[ast.Param]:
        self._expect(TokenType.SEPARATOR, "(")
        params: list[ast.Param] = []
        if not self._check(TokenType.SEPARATOR, ")"):
            params.append(self._parse_param())
            while self._match(TokenType.SEPARATOR, ","):
                params.append(self._parse_param())
        self._expect(TokenType.SEPARATOR, ")")
        return params

    def _parse_param(self) -> ast.Param:
        self._match(TokenType.KEYWORD, "final")
        param_type = self.parse_type()
        name = self._expect(TokenType.IDENT).value
        dims = 0
        while self._check(TokenType.SEPARATOR, "[") and \
                self._peek(1).value == "]":
            self._advance()
            self._advance()
            dims += 1
        return ast.Param(param_type, name, dims)

    def _skip_throws(self) -> None:
        if self._match(TokenType.KEYWORD, "throws"):
            self.parse_type()
            while self._match(TokenType.SEPARATOR, ","):
                self.parse_type()

    # ------------------------------------------------------------------
    # types
    # ------------------------------------------------------------------

    def parse_type(self) -> ast.Node:
        """Type = (PrimitiveType | ClassOrInterfaceType | type hole) {'[' ']'}"""
        base: ast.Node
        token = self._peek()
        if token.type is TokenType.HOLE:
            kind = token.hole_kind
            if kind not in _TYPE_HOLE_KINDS:
                raise self._error(
                    f"a {kind.value} hyper-link is not legal in a type position"
                )
            self._advance()
            base = ast.HoleType(kind, token.ordinal)
        elif token.type is TokenType.KEYWORD and \
                token.value in PRIMITIVE_TYPE_KEYWORDS:
            self._advance()
            base = ast.PrimitiveTypeNode(token.value)
        elif token.type is TokenType.IDENT:
            base = ast.ClassTypeNode(self._qualified_name_parts())
        else:
            raise self._error("expected a type")
        dims = 0
        while self._check(TokenType.SEPARATOR, "[") and \
                self._peek(1).value == "]":
            self._advance()
            self._advance()
            dims += 1
        if dims:
            return ast.ArrayTypeNode(base, dims)
        return base

    def _qualified_name_parts(self) -> tuple[str, ...]:
        parts = [self._expect(TokenType.IDENT).value]
        while self._check(TokenType.SEPARATOR, ".") and \
                self._peek(1).type is TokenType.IDENT:
            self._advance()
            parts.append(self._advance().value)
        return tuple(parts)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        self._expect(TokenType.SEPARATOR, "{")
        block = ast.Block()
        while not self._check(TokenType.SEPARATOR, "}"):
            block.statements.append(self.parse_statement())
        self._expect(TokenType.SEPARATOR, "}")
        return block

    def parse_statement(self) -> ast.Node:
        token = self._peek()
        if token.type is TokenType.SEPARATOR and token.value == "{":
            return self.parse_block()
        if token.type is TokenType.SEPARATOR and token.value == ";":
            self._advance()
            return ast.EmptyStatement()
        if token.type is TokenType.KEYWORD:
            if token.value == "if":
                return self._parse_if()
            if token.value == "while":
                return self._parse_while()
            if token.value == "for":
                return self._parse_for()
            if token.value == "return":
                self._advance()
                value = None
                if not self._check(TokenType.SEPARATOR, ";"):
                    value = self.parse_expression()
                self._expect(TokenType.SEPARATOR, ";")
                return ast.ReturnStatement(value)
            if token.value == "throw":
                self._advance()
                value = self.parse_expression()
                self._expect(TokenType.SEPARATOR, ";")
                return ast.ThrowStatement(value)
            if token.value == "break":
                self._advance()
                self._match(TokenType.IDENT)
                self._expect(TokenType.SEPARATOR, ";")
                return ast.BreakStatement()
            if token.value == "continue":
                self._advance()
                self._match(TokenType.IDENT)
                self._expect(TokenType.SEPARATOR, ";")
                return ast.ContinueStatement()
            if token.value in PRIMITIVE_TYPE_KEYWORDS or \
                    token.value == "final":
                return self._parse_local_declaration()
        if self._looks_like_local_declaration():
            return self._parse_local_declaration()
        expr = self.parse_expression()
        self._expect(TokenType.SEPARATOR, ";")
        return ast.ExprStatement(expr)

    def _looks_like_local_declaration(self) -> bool:
        """Disambiguate ``Type name ...`` from an expression statement."""
        token = self._peek()
        if token.type is TokenType.HOLE and \
                token.hole_kind in _TYPE_HOLE_KINDS:
            follow = self._peek(1)
            return follow.type is TokenType.IDENT or \
                (follow.type is TokenType.SEPARATOR and follow.value == "[")
        if token.type is not TokenType.IDENT:
            return False
        offset = 1
        while self._peek(offset).type is TokenType.SEPARATOR and \
                self._peek(offset).value == "." and \
                self._peek(offset + 1).type is TokenType.IDENT:
            offset += 2
        while self._peek(offset).type is TokenType.SEPARATOR and \
                self._peek(offset).value == "[" and \
                self._peek(offset + 1).value == "]":
            offset += 2
        return self._peek(offset).type is TokenType.IDENT

    def _parse_local_declaration(self) -> ast.LocalVarDecl:
        self._match(TokenType.KEYWORD, "final")
        var_type = self.parse_type()
        name = self._expect(TokenType.IDENT).value
        declarators = [self._parse_declarator(name)]
        while self._match(TokenType.SEPARATOR, ","):
            next_name = self._expect(TokenType.IDENT).value
            declarators.append(self._parse_declarator(next_name))
        self._expect(TokenType.SEPARATOR, ";")
        return ast.LocalVarDecl(var_type, declarators)

    def _parse_if(self) -> ast.IfStatement:
        self._expect(TokenType.KEYWORD, "if")
        self._expect(TokenType.SEPARATOR, "(")
        condition = self.parse_expression()
        self._expect(TokenType.SEPARATOR, ")")
        then = self.parse_statement()
        otherwise = None
        if self._match(TokenType.KEYWORD, "else"):
            otherwise = self.parse_statement()
        return ast.IfStatement(condition, then, otherwise)

    def _parse_while(self) -> ast.WhileStatement:
        self._expect(TokenType.KEYWORD, "while")
        self._expect(TokenType.SEPARATOR, "(")
        condition = self.parse_expression()
        self._expect(TokenType.SEPARATOR, ")")
        return ast.WhileStatement(condition, self.parse_statement())

    def _parse_for(self) -> ast.ForStatement:
        self._expect(TokenType.KEYWORD, "for")
        self._expect(TokenType.SEPARATOR, "(")
        init: Optional[ast.Node] = None
        if not self._check(TokenType.SEPARATOR, ";"):
            if self._looks_like_local_declaration() or \
                    (self._peek().type is TokenType.KEYWORD and
                     self._peek().value in PRIMITIVE_TYPE_KEYWORDS):
                init = self._parse_local_declaration()
            else:
                init = ast.ExprStatement(self.parse_expression())
                self._expect(TokenType.SEPARATOR, ";")
        else:
            self._advance()
        condition = None
        if not self._check(TokenType.SEPARATOR, ";"):
            condition = self.parse_expression()
        self._expect(TokenType.SEPARATOR, ";")
        update: list[ast.Node] = []
        if not self._check(TokenType.SEPARATOR, ")"):
            update.append(self.parse_expression())
            while self._match(TokenType.SEPARATOR, ","):
                update.append(self.parse_expression())
        self._expect(TokenType.SEPARATOR, ")")
        return ast.ForStatement(init, condition, update,
                                self.parse_statement())

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def parse_expression(self) -> ast.Node:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Node:
        left = self._parse_conditional()
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in _ASSIGN_OPS:
            if not self._is_assignable(left):
                raise self._error("left-hand side is not assignable")
            op = self._advance().value
            value = self._parse_assignment()
            return ast.AssignmentExpr(op, left, value)
        return left

    @staticmethod
    def _is_assignable(node: ast.Node) -> bool:
        if isinstance(node, (ast.NameExpr, ast.FieldAccessExpr,
                             ast.ArrayAccessExpr)):
            return True
        # A location-capable hole is assignable (links to locations,
        # Section 2): field and array-element holes.
        if isinstance(node, ast.HoleExpr):
            return node.kind in (LinkKind.FIELD, LinkKind.ARRAY_ELEMENT)
        return False

    def _parse_conditional(self) -> ast.Node:
        condition = self._parse_binary(1)
        if self._match(TokenType.OPERATOR, "?"):
            then = self.parse_expression()
            self._expect(TokenType.OPERATOR, ":")
            otherwise = self._parse_conditional()
            return ast.ConditionalExpr(condition, then, otherwise)
        return condition

    def _parse_binary(self, min_precedence: int) -> ast.Node:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.type is TokenType.KEYWORD and \
                    token.value == "instanceof":
                self._advance()
                left = ast.InstanceOfExpr(left, self.parse_type())
                continue
            if token.type is not TokenType.OPERATOR:
                return left
            precedence = _BINARY_PRECEDENCE.get(token.value, 0)
            if precedence < min_precedence:
                return left
            op = self._advance().value
            right = self._parse_binary(precedence + 1)
            left = ast.BinaryExpr(op, left, right)

    def _parse_unary(self) -> ast.Node:
        token = self._peek()
        if token.type is TokenType.OPERATOR and \
                token.value in ("+", "-", "!", "~", "++", "--"):
            op = self._advance().value
            return ast.UnaryExpr(op, self._parse_unary(), prefix=True)
        if self._is_cast_ahead():
            self._expect(TokenType.SEPARATOR, "(")
            cast_type = self.parse_type()
            self._expect(TokenType.SEPARATOR, ")")
            return ast.CastExpr(cast_type, self._parse_unary())
        return self._parse_postfix()

    def _is_cast_ahead(self) -> bool:
        """Lookahead for ``( Type )`` followed by a unary expression."""
        if not self._check(TokenType.SEPARATOR, "("):
            return False
        token = self._peek(1)
        if token.type is TokenType.KEYWORD and \
                token.value in PRIMITIVE_TYPE_KEYWORDS:
            return True
        if token.type is TokenType.HOLE and \
                token.hole_kind in _TYPE_HOLE_KINDS:
            return True
        if token.type is not TokenType.IDENT:
            return False
        # ( Name ) ident/literal/( — treat as cast; ( Name ) op — expression.
        offset = 2
        while self._peek(offset).value == "." and \
                self._peek(offset + 1).type is TokenType.IDENT:
            offset += 2
        while self._peek(offset).value == "[" and \
                self._peek(offset + 1).value == "]":
            offset += 2
        if self._peek(offset).value != ")":
            return False
        after = self._peek(offset + 1)
        return after.type in (TokenType.IDENT, TokenType.INT_LIT,
                              TokenType.FLOAT_LIT, TokenType.STRING_LIT,
                              TokenType.CHAR_LIT, TokenType.BOOL_LIT,
                              TokenType.NULL_LIT, TokenType.HOLE) or \
            (after.type is TokenType.SEPARATOR and after.value == "(") or \
            (after.type is TokenType.KEYWORD and
             after.value in ("this", "new"))

    def _parse_postfix(self) -> ast.Node:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.type is TokenType.SEPARATOR and token.value == ".":
                self._advance()
                name = self._expect(TokenType.IDENT).value
                if self._check(TokenType.SEPARATOR, "("):
                    args = self._parse_args()
                    expr = ast.MethodCallExpr(expr, name, args)
                else:
                    expr = ast.FieldAccessExpr(expr, name)
            elif token.type is TokenType.SEPARATOR and token.value == "[":
                self._advance()
                index = self.parse_expression()
                self._expect(TokenType.SEPARATOR, "]")
                expr = ast.ArrayAccessExpr(expr, index)
            elif token.type is TokenType.OPERATOR and \
                    token.value in ("++", "--"):
                self._advance()
                expr = ast.UnaryExpr(token.value, expr, prefix=False)
            else:
                return expr

    def _parse_args(self) -> list[ast.Node]:
        self._expect(TokenType.SEPARATOR, "(")
        args: list[ast.Node] = []
        if not self._check(TokenType.SEPARATOR, ")"):
            args.append(self.parse_expression())
            while self._match(TokenType.SEPARATOR, ","):
                args.append(self.parse_expression())
        self._expect(TokenType.SEPARATOR, ")")
        return args

    def _parse_primary(self) -> ast.Node:
        token = self._peek()
        if token.type is TokenType.HOLE:
            return self._parse_hole_primary()
        if token.type in (TokenType.INT_LIT, TokenType.FLOAT_LIT,
                          TokenType.CHAR_LIT, TokenType.STRING_LIT,
                          TokenType.BOOL_LIT, TokenType.NULL_LIT):
            self._advance()
            return ast.Literal(token.value, token.type.value)
        if token.type is TokenType.KEYWORD and token.value == "this":
            self._advance()
            return ast.ThisExpr()
        if token.type is TokenType.KEYWORD and token.value == "new":
            return self._parse_creation()
        if token.type is TokenType.SEPARATOR and token.value == "(":
            self._advance()
            inner = self.parse_expression()
            self._expect(TokenType.SEPARATOR, ")")
            return ast.ParenExpr(inner)
        if token.type is TokenType.IDENT:
            parts = self._qualified_name_parts()
            if self._check(TokenType.SEPARATOR, "("):
                args = self._parse_args()
                if len(parts) == 1:
                    return ast.MethodCallExpr(None, parts[0], args)
                return ast.MethodCallExpr(
                    ast.NameExpr(parts[:-1]), parts[-1], args)
            return ast.NameExpr(parts)
        raise self._error("expected an expression")

    def _parse_hole_primary(self) -> ast.Node:
        token = self._advance()
        kind = token.hole_kind
        hole = ast.HoleExpr(kind, token.ordinal)
        if kind in _PRIMARY_HOLE_KINDS:
            return hole
        if kind is LinkKind.STATIC_METHOD:
            # "a hyper-link can appear legally at a position corresponding
            # to the production Name where it denotes a constructor" — for
            # a method the Name must be an invocation target.
            if self._check(TokenType.SEPARATOR, "("):
                return ast.HoleCallExpr(hole, self._parse_args())
            raise ParseError(
                "a (static) method hyper-link is only legal as an "
                "invocation target", token.line, token.column,
            )
        if kind is LinkKind.CONSTRUCTOR:
            raise ParseError(
                "a constructor hyper-link is only legal after 'new'",
                token.line, token.column,
            )
        if kind is LinkKind.CLASS or kind is LinkKind.INTERFACE:
            # A linked type in an expression is only legal as the target
            # of a static member access or invocation.
            if self._match(TokenType.SEPARATOR, "."):
                name = self._expect(TokenType.IDENT).value
                if self._check(TokenType.SEPARATOR, "("):
                    return ast.MethodCallExpr(hole, name, self._parse_args())
                return ast.FieldAccessExpr(hole, name)
            raise ParseError(
                f"a {kind.value} hyper-link is not an expression by itself",
                token.line, token.column,
            )
        raise ParseError(
            f"a {kind.value} hyper-link is not legal in an expression",
            token.line, token.column,
        )

    def _parse_creation(self) -> ast.Node:
        self._expect(TokenType.KEYWORD, "new")
        token = self._peek()
        if token.type is TokenType.HOLE:
            kind = token.hole_kind
            if kind in (LinkKind.CONSTRUCTOR, LinkKind.CLASS):
                self._advance()
                created: ast.Node = ast.HoleExpr(kind, token.ordinal)
                args = self._parse_args()
                return ast.NewExpr(created, args)
            raise ParseError(
                f"a {kind.value} hyper-link cannot follow 'new'",
                token.line, token.column,
            )
        created_type = self.parse_type()
        if self._check(TokenType.SEPARATOR, "["):
            dim_exprs: list[ast.Node] = []
            extra = 0
            while self._match(TokenType.SEPARATOR, "["):
                if self._check(TokenType.SEPARATOR, "]"):
                    self._advance()
                    extra += 1
                else:
                    dim_exprs.append(self.parse_expression())
                    self._expect(TokenType.SEPARATOR, "]")
            return ast.NewArrayExpr(created_type, dim_exprs, extra)
        args = self._parse_args()
        return ast.NewExpr(created_type, args)
