"""Production-level checking — the executable Table 1.

``parse_production(name, text)`` answers "can this text be derived from
production *name*?", for the nine productions Table 1 names.  A hyper-link
hole ``⟦kind⟧`` is accepted by a production exactly when Table 1 pairs the
kind with that production (or a production it derives from), which is the
paper's necessary condition; ``check_program`` then applies the full
context-sensitive check by parsing an entire hole-bearing program.
"""

from __future__ import annotations

from typing import Callable

from repro.core.linkkinds import LinkKind, PRODUCTION_FOR_KIND
from repro.errors import GrammarError, LexError, ParseError
from repro.javagrammar import ast_nodes as ast
from repro.javagrammar.lexer import HOLE_CLOSE, HOLE_OPEN
from repro.javagrammar.parser import Parser


def _parse_class_type(parser: Parser) -> ast.Node:
    node = parser.parse_type()
    if isinstance(node, ast.ClassTypeNode):
        return node
    if isinstance(node, ast.HoleType) and node.kind in (
            LinkKind.CLASS, LinkKind.INTERFACE):
        # InterfaceType and ClassType share the ClassOrInterfaceType shape;
        # the hole kind distinguishes them.
        return node
    raise ParseError("not a ClassType")


def _parse_interface_type(parser: Parser) -> ast.Node:
    node = parser.parse_type()
    if isinstance(node, ast.ClassTypeNode):
        return node
    if isinstance(node, ast.HoleType) and node.kind is LinkKind.INTERFACE:
        return node
    raise ParseError("not an InterfaceType")


def _parse_primitive_type(parser: Parser) -> ast.Node:
    node = parser.parse_type()
    if isinstance(node, ast.PrimitiveTypeNode):
        return node
    if isinstance(node, ast.HoleType) and \
            node.kind is LinkKind.PRIMITIVE_TYPE:
        return node
    raise ParseError("not a PrimitiveType")


def _parse_array_type(parser: Parser) -> ast.Node:
    node = parser.parse_type()
    if isinstance(node, ast.ArrayTypeNode):
        return node
    if isinstance(node, ast.HoleType) and node.kind is LinkKind.ARRAY_TYPE:
        return node
    raise ParseError("not an ArrayType")


def _parse_primary(parser: Parser) -> ast.Node:
    node = parser.parse_expression()
    acceptable = (ast.Literal, ast.ParenExpr, ast.ThisExpr, ast.NewExpr,
                  ast.NewArrayExpr, ast.FieldAccessExpr, ast.ArrayAccessExpr,
                  ast.MethodCallExpr, ast.HoleCallExpr)
    if isinstance(node, acceptable):
        return node
    if isinstance(node, ast.HoleExpr):
        # Object and array links are Primary (Table 1); value-ish holes
        # that are themselves access forms (field, array element, literal)
        # also derive from Primary in the Java grammar.
        if node.kind in (LinkKind.OBJECT, LinkKind.ARRAY, LinkKind.FIELD,
                         LinkKind.ARRAY_ELEMENT, LinkKind.PRIMITIVE_VALUE):
            return node
    raise ParseError("not a Primary")


def _parse_literal(parser: Parser) -> ast.Node:
    node = parser.parse_expression()
    if isinstance(node, ast.Literal):
        return node
    if isinstance(node, ast.HoleExpr) and \
            node.kind is LinkKind.PRIMITIVE_VALUE:
        return node
    raise ParseError("not a Literal")


def _parse_field_access(parser: Parser) -> ast.Node:
    node = parser.parse_expression()
    if isinstance(node, ast.FieldAccessExpr):
        return node
    if isinstance(node, ast.HoleExpr) and node.kind is LinkKind.FIELD:
        return node
    # Qualified names parse as NameExpr but denote field accesses once the
    # qualifier resolves to a value — accept a.b shapes.
    if isinstance(node, ast.NameExpr) and len(node.parts) >= 2:
        return node
    raise ParseError("not a FieldAccess")


def _parse_name(parser: Parser) -> ast.Node:
    node = parser.parse_expression()
    if isinstance(node, ast.NameExpr):
        return node
    # Method and constructor links occupy Name positions (Table 1); an
    # invocation or creation wrapping the hole witnesses the Name use.
    if isinstance(node, ast.HoleCallExpr):
        return node
    if isinstance(node, ast.NewExpr) and isinstance(node.created,
                                                    ast.HoleExpr):
        return node
    raise ParseError("not a Name")


def _parse_array_access(parser: Parser) -> ast.Node:
    node = parser.parse_expression()
    if isinstance(node, ast.ArrayAccessExpr):
        return node
    if isinstance(node, ast.HoleExpr) and \
            node.kind is LinkKind.ARRAY_ELEMENT:
        return node
    raise ParseError("not an ArrayAccess")


#: Production name -> checker.
PRODUCTIONS: dict[str, Callable[[Parser], ast.Node]] = {
    "ClassType": _parse_class_type,
    "PrimitiveType": _parse_primitive_type,
    "InterfaceType": _parse_interface_type,
    "ArrayType": _parse_array_type,
    "Primary": _parse_primary,
    "Literal": _parse_literal,
    "FieldAccess": _parse_field_access,
    "Name": _parse_name,
    "ArrayAccess": _parse_array_access,
}


def parse_production(production: str, text: str) -> ast.Node:
    """Parse ``text`` as one instance of ``production`` (whole input).

    Raises :class:`~repro.errors.ParseError` (or ``GrammarError``) when the
    text cannot be derived from the production.
    """
    checker = PRODUCTIONS.get(production)
    if checker is None:
        raise GrammarError(f"unknown production {production!r}; "
                           f"Table 1 names {sorted(PRODUCTIONS)}")
    parser = Parser(text)
    node = checker(parser)
    parser.expect_eof()
    return node


def derives(production: str, text: str) -> bool:
    """Boolean form of :func:`parse_production`."""
    try:
        parse_production(production, text)
    except (ParseError, LexError):
        return False
    return True


def hole(kind: LinkKind) -> str:
    """The hole text for a link of ``kind``."""
    return f"{HOLE_OPEN}{kind.value}{HOLE_CLOSE}"


def check_program(source: str) -> list[str]:
    """Parse a complete hole-bearing Java program; returns diagnostics
    (empty list = legal, holes included).

    This is the context-sensitive half of the paper's Section 2 rule: a
    hole that matches its production can still be illegal for its
    surroundings, and such programs produce diagnostics here.
    """
    try:
        Parser(source).parse_compilation_unit()
    except (ParseError, LexError) as exc:
        location = ""
        if getattr(exc, "line", 0):
            location = f" (line {exc.line}, column {exc.column})"
        return [f"{exc}{location}"]
    return []


def table1_rows() -> list[tuple[str, str, bool]]:
    """Regenerate Table 1: for every link kind, its production and whether
    a bare hole of that kind derives from that production.

    Method and constructor holes need their witnessing context (an
    invocation / a ``new``) because their ``Name`` use is context
    sensitive — exactly the paper's "necessary but not sufficient" remark.
    """
    witness: dict[LinkKind, str] = {
        LinkKind.STATIC_METHOD: f"{hole(LinkKind.STATIC_METHOD)}()",
        LinkKind.CONSTRUCTOR: f"new {hole(LinkKind.CONSTRUCTOR)}()",
    }
    rows: list[tuple[str, str, bool]] = []
    for kind in LinkKind:
        production = PRODUCTION_FOR_KIND[kind]
        text = witness.get(kind, hole(kind))
        rows.append((kind.value, production, derives(production, text)))
    return rows


def format_table1() -> str:
    """Printable Table 1 (benchmark T1 output)."""
    rows = table1_rows()
    width = max(len(row[0]) for row in rows) + 2
    lines = [f"{'Hyper-link To':<{width}}{'Production':<16}Derives",
             "-" * (width + 24)]
    for kind, production, ok in rows:
        lines.append(f"{kind:<{width}}{production:<16}"
                     f"{'yes' if ok else 'NO'}")
    return "\n".join(lines)
