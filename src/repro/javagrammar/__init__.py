"""A Java-subset grammar for Table 1.

Section 2 of the paper defines which Java denotable values may be
hyper-linked and pairs each kind with the grammar production it must be
parsable as (Table 1), noting that "if a hyper-link cannot be parsed as its
equivalent production then it is syntactically illegal.  If it can then its
use is context sensitive with respect to the surrounding hyper-program."

This package implements that check from scratch:

* :mod:`~repro.javagrammar.lexer` — a Java lexer, extended with a *hole*
  token ``⟦kind⟧`` marking an embedded hyper-link of the given kind;
* :mod:`~repro.javagrammar.parser` — a recursive-descent parser for the
  Java subset covering classes, members, statements, expressions and all
  nine productions named by Table 1;
* :mod:`~repro.javagrammar.productions` — the public API:
  :func:`parse_production` (can this text derive production P?),
  :func:`check_program` (is this hole-bearing Java program legal, holes
  included?), and :func:`table1_rows` (regenerates Table 1).

The parser enforces both halves of the paper's rule: a hole is accepted
only where its production fits (necessity), and kind-specific context
rules apply on top — a constructor hole only after ``new``, a method hole
only as an invocation target, and nothing accepts a package position
"since packages cannot be linked to".
"""

from repro.javagrammar.lexer import Lexer, Token, TokenType
from repro.javagrammar.parser import Parser
from repro.javagrammar.productions import (
    PRODUCTIONS,
    check_program,
    parse_production,
    table1_rows,
)

__all__ = [
    "Lexer",
    "Token",
    "TokenType",
    "Parser",
    "PRODUCTIONS",
    "parse_production",
    "check_program",
    "table1_rows",
]
