"""The password-protected persistent link registry (paper Figure 7).

"To ensure that every hyper-link has such a textual form, the system
records a reference to each hyper-program submitted for translation, in a
password-protected location in the persistent store.  The hyper-linked
entities will thus remain accessible by the compiled form even if the
original hyper-program is discarded. ... the password protection prevents
any accidental or malicious tampering with the data structure."
(Section 4.1)

The structure at the persistent root is exactly Figure 7: a vector of
references to :class:`~repro.core.hyperprogram.HyperProgram` instances,
reached through a password-checking access path.  Two reference modes are
provided, reproducing the paper's evolution:

* ``weak=False`` — the paper's *current implementation*: strong references,
  under which "no hyper-program that is translated and compiled can be
  subsequently garbage collected";
* ``weak=True`` (default) — the paper's *next version* (JDK 1.2 weak
  references): each entry is a
  :class:`~repro.store.weakrefs.PersistentWeakRef`, "so that hyper-programs
  may be garbage collected once no user references to them remain".

The ablation benchmark F7 runs both modes.
"""

from __future__ import annotations

from typing import Optional

from repro.core.hyperlink import DESCRIPTOR_CLASSES, HyperLinkHP
from repro.core.hyperprogram import HyperProgram
from repro.errors import (
    BadPasswordError,
    HyperProgramCollectedError,
    UnknownHyperLinkError,
    UnknownHyperProgramError,
)
from repro.store.objectstore import ObjectStore
from repro.store.weakrefs import PersistentWeakRef

#: The persistent root under which the Figure 7 structure lives.
REGISTRY_ROOT = "_hyperprogram_registry"

#: "The password used in the calls to getLink ... is built into the
#: system" (Section 4.2).
DEFAULT_PASSWORD = "passwd"


def register_core_classes(store: ObjectStore) -> None:
    """Make the hyper-programming classes storable in ``store``."""
    for cls in (HyperProgram, HyperLinkHP) + DESCRIPTOR_CLASSES:
        store.registry.register(cls)


class LinkStore:
    """Access path to the Figure 7 structure in a persistent store."""

    def __init__(self, store: ObjectStore,
                 password: str = DEFAULT_PASSWORD,
                 weak: bool = True):
        self._store = store
        self._weak = weak
        register_core_classes(store)
        if not store.has_root(REGISTRY_ROOT):
            store.set_root(REGISTRY_ROOT,
                           {"password": password, "programs": []})

    @property
    def _structure(self) -> dict:
        # Fetched through the root on every access (the identity map makes
        # this cheap) so the link store never holds a stale reference after
        # a transaction abort or evolution flush.
        return self._store.get_root(REGISTRY_ROOT)

    # -- password checking --------------------------------------------------

    def _check_password(self, password: str) -> None:
        if password != self._structure["password"]:
            raise BadPasswordError(
                "wrong password for the hyper-program registry"
            )

    @property
    def password(self) -> str:
        """The built-in system password (not part of the paper's public
        interface; exposed for the compiler, which embeds it in generated
        textual forms)."""
        return self._structure["password"]

    @property
    def store(self) -> ObjectStore:
        return self._store

    @property
    def uses_weak_references(self) -> bool:
        return self._weak

    # -- Figure 9 operations --------------------------------------------------

    def add_hp(self, program: HyperProgram, password: str) -> int:
        """``addHP`` — record ``program`` (if not already present); returns
        its unique index in the persistent vector."""
        self._check_password(password)
        programs = self._structure["programs"]
        for index, entry in enumerate(programs):
            target = entry.get() if isinstance(entry, PersistentWeakRef) \
                else entry
            if target is program:
                return index
        entry = PersistentWeakRef(program) if self._weak else program
        programs.append(entry)
        index = len(programs) - 1
        # The program itself must stay strongly reachable until stabilised
        # even in weak mode; the *caller* holds the strong reference (the
        # paper's "user references").
        return index

    def get_hp(self, password: str, hp_index: int) -> HyperProgram:
        """The registered hyper-program at ``hp_index``."""
        self._check_password(password)
        programs = self._structure["programs"]
        if not 0 <= hp_index < len(programs):
            raise UnknownHyperProgramError(hp_index)
        entry = programs[hp_index]
        if isinstance(entry, PersistentWeakRef):
            target = entry.get()
            if target is None:
                raise HyperProgramCollectedError(
                    f"hyper-program {hp_index} has been garbage collected"
                )
            return target
        return entry

    def get_link(self, password: str, hp_index: int,
                 hl_index: int) -> HyperLinkHP:
        """``getLink`` — "returns representation of a given hyper-link"
        (Figure 9), the access path executed by compiled textual forms."""
        program = self.get_hp(password, hp_index)
        links = program.get_the_links()
        if not 0 <= hl_index < len(links):
            raise UnknownHyperLinkError(
                f"hyper-program {hp_index} has no link {hl_index}"
            )
        return links[hl_index]

    def index_of(self, program: HyperProgram, password: str) -> Optional[int]:
        """The index of a registered program, or ``None``."""
        self._check_password(password)
        for index, entry in enumerate(self._structure["programs"]):
            target = entry.get() if isinstance(entry, PersistentWeakRef) \
                else entry
            if target is program:
                return index
        return None

    def count(self, password: str) -> int:
        self._check_password(password)
        return len(self._structure["programs"])

    def collected_count(self, password: str) -> int:
        """How many weak entries have been cleared by garbage collection."""
        self._check_password(password)
        return sum(
            1 for entry in self._structure["programs"]
            if isinstance(entry, PersistentWeakRef) and entry.is_cleared
        )

    def stabilize(self) -> int:
        """Persist the registry (and everything reachable from it)."""
        return self._store.stabilize()
