"""``DynamicCompiler`` (paper Figure 9).

"After generating the textual form, the system calls a standard Java
compiler dynamically, to compile the textual form into a class that is
equivalent to the original hyper-program."  The class provides the same
method family as Figure 9:

* ``compile_classes(class_names, class_defns)`` — compile source strings;
* ``compile_class(class_name, class_defn)`` — single-class convenience;
* ``compile_hyper_programs(hps)`` / ``compile_hyper_program(hp)`` —
  register each program in the link store (``add_hp``), generate its
  textual form, compile, and load;
* ``generate_textual_form(hp)`` — the storage-to-textual translation;
* ``get_link(password, hp_index, hl_index)`` — the run-time access path
  executed by compiled textual forms.

Two compilation mechanisms are implemented, exactly the trade-off of
Section 4.3:

* **direct invocation** — CPython's in-process ``compile()``/``exec``
  ("fewer run-time overheads");
* **forked process** — a separate interpreter process compiles the source
  to a marshalled code object on disk, which the parent then loads
  ("significant additional run-time resources ... creating a new
  instantiation of the JVM" — benchmarked as B2/F9).

The direct mechanism is tried first and the forked one used as fallback,
matching Figure 9's control flow; ``mechanism="forked"`` forces the
fallback for benchmarking.
"""

from __future__ import annotations

import marshal
import os
import subprocess
import sys
import tempfile
from typing import Any, Optional, Sequence

from repro.core.hyperprogram import HyperProgram
from repro.core.linkstore import LinkStore
from repro.core.textual import generate_textual_form
from repro.errors import CompilationError, HyperProgramError, LoadingError
from repro.reflect.loader import ClassLoader, LoadedModule

_FORK_HELPER = (
    "import marshal, sys\n"
    "src_path, out_path, name = sys.argv[1], sys.argv[2], sys.argv[3]\n"
    "with open(src_path, 'r', encoding='utf-8') as fh:\n"
    "    source = fh.read()\n"
    "code = compile(source, f'<{name}>', 'exec')\n"
    "with open(out_path, 'wb') as fh:\n"
    "    marshal.dump(code, fh)\n"
)


class DynamicCompiler:
    """The hyper-program compiler; all methods are class-level, matching
    the static methods of the paper's Figure 9."""

    _link_store: Optional[LinkStore] = None
    _loader: ClassLoader = ClassLoader()
    #: Count of forked compilations (observable by tests/benchmarks).
    fork_count: int = 0
    #: Source map of the most recent textual-form generation, used to
    #: re-express diagnostics in hyper-program terms.
    last_source_map = None

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------

    @classmethod
    def install(cls, link_store: LinkStore) -> None:
        """Attach the compiler to a persistent link registry (Figure 7)."""
        cls._link_store = link_store
        cls._loader = ClassLoader({"DynamicCompiler": cls})

    @classmethod
    def installed_link_store(cls) -> LinkStore:
        if cls._link_store is None:
            raise HyperProgramError(
                "no LinkStore installed; call DynamicCompiler.install first"
            )
        return cls._link_store

    @classmethod
    def uninstall(cls) -> None:
        cls._link_store = None
        cls._loader = ClassLoader()

    # ------------------------------------------------------------------
    # run-time access path (executed by compiled textual forms)
    # ------------------------------------------------------------------

    @classmethod
    def get_link(cls, password: str, hp_index: int, hl_index: int):
        """``getLink`` — retrieve a hyper-link through the password-
        protected persistent structure."""
        return cls.installed_link_store().get_link(password, hp_index,
                                                   hl_index)

    getLink = get_link

    # ------------------------------------------------------------------
    # textual-form generation
    # ------------------------------------------------------------------

    @classmethod
    def add_hp(cls, program: HyperProgram, password: str) -> int:
        """``addHP`` — register a hyper-program for translation."""
        return cls.installed_link_store().add_hp(program, password)

    @classmethod
    def generate_textual_form(cls, program: HyperProgram) -> str:
        """``generateTextualForm`` — the compilable text of a registered
        hyper-program (registers it first if needed)."""
        source, __ = cls._textual_with_bindings(program)
        return source

    generateTextualForm = generate_textual_form

    @classmethod
    def _textual_with_bindings(cls, program: HyperProgram
                               ) -> tuple[str, dict[str, Any]]:
        from repro.core.textual import generate_textual_form_with_map

        link_store = cls.installed_link_store()
        password = link_store.password
        hp_index = link_store.add_hp(program, password)
        source, bindings, source_map = generate_textual_form_with_map(
            program, hp_index, password, link_store.store.registry)
        # Kept for hyper-terms error reporting (Section 5.4.2 future work).
        cls.last_source_map = source_map
        return source, bindings

    # ------------------------------------------------------------------
    # compilation of plain source (Figure 9, compileClasses(String[], String[]))
    # ------------------------------------------------------------------

    @classmethod
    def compile_classes(cls, class_names: Sequence[str],
                        class_defns: Sequence[str],
                        bindings: dict[str, Any] | None = None,
                        mechanism: str = "auto") -> list[type]:
        """Compile source strings and load the named classes.

        Definitions are loaded in order into a shared namespace, so later
        definitions can reference earlier ones (the classpath analogue).
        ``mechanism`` is ``"auto"`` (direct, fork on failure), ``"direct"``
        or ``"forked"``.
        """
        if len(class_names) != len(class_defns):
            raise CompilationError(
                f"{len(class_names)} names but {len(class_defns)} definitions"
            )
        shared: dict[str, Any] = dict(bindings or {})
        results: list[type] = []
        for name, defn in zip(class_names, class_defns):
            loaded = cls._compile_one(name, defn, shared, mechanism)
            klass = loaded.namespace.get(name)
            if not isinstance(klass, type):
                raise CompilationError(
                    f"compiled source does not define class {name!r}",
                    textual_form=defn,
                )
            results.append(klass)
            shared[name] = klass
        return results

    @classmethod
    def compile_class(cls, class_name: str, class_defn: str,
                      bindings: dict[str, Any] | None = None,
                      mechanism: str = "auto") -> type:
        """Compiles a single class using ``compile_classes`` above."""
        return cls.compile_classes([class_name], [class_defn],
                                   bindings, mechanism)[0]

    @classmethod
    def _compile_one(cls, name: str, source: str, bindings: dict[str, Any],
                     mechanism: str) -> LoadedModule:
        if mechanism not in ("auto", "direct", "forked"):
            raise CompilationError(f"unknown mechanism {mechanism!r}")
        if mechanism in ("auto", "direct"):
            try:  # Direct invocation of the standard compiler.
                return cls._loader.load_source(source, name=name,
                                               bindings=bindings)
            except LoadingError as exc:
                if mechanism == "direct":
                    raise CompilationError(
                        f"direct compilation of {name} failed: {exc}",
                        textual_form=source,
                        diagnostics=str(exc),
                    ) from exc
                # Fall through: "Direct invocation of compiler failed.
                # Fork an operating system process" (Figure 9).
        return cls._fork_compile(name, source, bindings)

    @classmethod
    def _fork_compile(cls, name: str, source: str,
                      bindings: dict[str, Any]) -> LoadedModule:
        """The forked-process mechanism: a child interpreter compiles the
        source to a marshalled code object (the ``.class`` file analogue),
        which the parent loads and links."""
        cls.fork_count += 1
        with tempfile.TemporaryDirectory(prefix="hyperc_") as workdir:
            src_path = os.path.join(workdir, "source.py")
            out_path = os.path.join(workdir, "compiled.marshal")
            with open(src_path, "w", encoding="utf-8") as fh:
                fh.write(source)
            proc = subprocess.run(
                [sys.executable, "-c", _FORK_HELPER, src_path, out_path, name],
                capture_output=True, text=True,
            )
            if proc.returncode != 0:
                raise CompilationError(
                    f"forked compilation of {name} failed",
                    textual_form=source,
                    diagnostics=proc.stderr.strip(),
                )
            with open(out_path, "rb") as fh:
                code = marshal.load(fh)
        namespace: dict[str, Any] = {"__name__": name,
                                     "__builtins__": __builtins__}
        namespace.update(cls._loader._parent)
        namespace.update(bindings)
        try:
            exec(code, namespace)
        except Exception as exc:
            raise CompilationError(
                f"executing forked-compiled {name} failed: {exc}",
                textual_form=source,
                diagnostics=str(exc),
            ) from exc
        return LoadedModule(name, namespace, source)

    # ------------------------------------------------------------------
    # compilation of hyper-programs (Figure 9, compileClasses(HyperProgram[]))
    # ------------------------------------------------------------------

    @classmethod
    def compile_hyper_programs(cls, programs: Sequence[HyperProgram],
                               mechanism: str = "auto") -> list[type]:
        """Register, translate and compile a batch of hyper-programs."""
        class_names: list[str] = []
        class_defns: list[str] = []
        all_bindings: dict[str, Any] = {}
        for program in programs:
            source, bindings = cls._textual_with_bindings(program)
            class_names.append(program.get_class_name())
            class_defns.append(source)
            all_bindings.update(bindings)
        return cls.compile_classes(class_names, class_defns, all_bindings,
                                   mechanism)

    @classmethod
    def compile_hyper_program(cls, program: HyperProgram,
                              mechanism: str = "auto") -> type:
        """Compiles a single hyper-program using
        ``compile_hyper_programs`` above."""
        return cls.compile_hyper_programs([program], mechanism)[0]

    @classmethod
    def compile_java_hyper_program(cls, program: HyperProgram,
                                   mechanism: str = "auto") -> type:
        """Compile a hyper-program whose text is the *Java subset* — the
        paper's own source language (Figure 2) — by transpiling it through
        :mod:`repro.javagrammar.codegen` before invoking the standard
        compiler."""
        from repro.core.javaform import java_to_python_source

        link_store = cls.installed_link_store()
        password = link_store.password
        hp_index = link_store.add_hp(program, password)
        source, bindings = java_to_python_source(
            program, hp_index, password, link_store.store.registry)
        cls.last_source_map = None  # maps cover the Python form only
        return cls.compile_classes([program.get_class_name()], [source],
                                   bindings, mechanism)[0]

    compileClasses = compile_classes
    compileClass = compile_class

    # ------------------------------------------------------------------
    # execution ("Go" button, Section 5.4.2)
    # ------------------------------------------------------------------

    @classmethod
    def run_main(cls, principal_class: type,
                 args: Sequence[str] | None = None) -> Any:
        """Execute ``static void main(String[] args)`` of the principal
        class — the editor's Go button."""
        main = getattr(principal_class, "main", None)
        if main is None or not callable(main):
            raise HyperProgramError(
                f"class {principal_class.__name__} has no main method"
            )
        return main(list(args or []))
