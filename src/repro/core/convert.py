"""Translation between the editing form and the storage form.

"Translation between the editing form and the storage form takes place
when the hyper-program editor accesses or stores a hyper-program in the
persistent store" (Section 3).  The mapping is positional:

* storage text = line texts joined with ``"\\n"``;
* a link at (line, offset) in the editing form sits at absolute position
  ``sum(len(line_i) + 1 for i < line) + offset`` in the storage form;
* and back again by locating the line containing each absolute position.

Both directions preserve link identity (the same ``hyper_link_object`` is
carried across) and document order.
"""

from __future__ import annotations

from repro.core.editform import EditForm, HyperLine, HyperLink
from repro.core.hyperlink import HyperLinkHP
from repro.core.hyperprogram import HyperProgram


def editing_to_storage(form: EditForm, class_name: str = "") -> HyperProgram:
    """Translate the editing form to the storage form."""
    text = "\n".join(line.text for line in form.lines)
    links: list[HyperLinkHP] = []
    line_start = 0
    for line in form.lines:
        for link in sorted(line.links, key=lambda item: item.pos):
            links.append(HyperLinkHP(
                link.hyper_link_object,
                link.label,
                line_start + link.pos,
                link.is_special,
                link.is_primitive,
                link.kind,
            ))
        line_start += len(line.text) + 1  # +1 for the newline
    return HyperProgram(text, links, class_name)


def storage_to_editing(program: HyperProgram) -> EditForm:
    """Translate the storage form to the editing form."""
    texts = program.the_text.split("\n")
    lines = [HyperLine(text) for text in texts]
    starts: list[int] = []
    cursor = 0
    for text in texts:
        starts.append(cursor)
        cursor += len(text) + 1
    for link in sorted(program.the_links, key=lambda item: item.string_pos):
        line_no = _line_of(starts, texts, link.string_pos)
        offset = link.string_pos - starts[line_no]
        lines[line_no].links.append(HyperLink(
            link.hyper_link_object,
            link.label,
            offset,
            link.is_special,
            link.is_primitive,
            link.kind,
        ))
    return EditForm(lines)


def _line_of(starts: list[int], texts: list[str], pos: int) -> int:
    """The line whose span contains absolute position ``pos``.

    A position exactly on a newline boundary belongs to the *end* of the
    earlier line (a link there renders before the line break).
    """
    lo, hi = 0, len(starts) - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if starts[mid] <= pos:
            lo = mid
        else:
            hi = mid - 1
    if pos == starts[lo] and lo > 0 and pos == starts[lo - 1] + len(texts[lo - 1]) + 1:
        # Position is the first column of line lo; keep it there.
        pass
    if pos <= starts[lo] + len(texts[lo]):
        return lo
    # pos points at the newline itself; anchor at end of this line.
    return lo
