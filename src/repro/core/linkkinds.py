"""The denotable hyper-links of Table 1.

Section 2 of the paper defines the Java denotable values that can be
hyper-linked — "objects; classes; interfaces; arrays; array elements;
static members; non-static members; and constructors", with links to "both
values and locations that contain values ... where appropriate" — and
Table 1 pairs each kind with the grammar production a link of that kind
must be parsable as:

    =================  ==============
    Hyper-link to      Production
    =================  ==============
    class              ClassType
    primitive type     PrimitiveType
    interface          InterfaceType
    array type         ArrayType
    object             Primary
    primitive value    Literal
    (static) field     FieldAccess
    (static) method    Name
    constructor        Name
    array              Primary
    array element      ArrayAccess
    =================  ==============

The production equivalence is *necessary but not sufficient* for a legal
insertion (Section 2): a link must also be context-sensitively legal in
its surrounding program — e.g. a ``Name`` hole accepts a constructor link
but never a package, "since packages cannot be linked to".
"""

from __future__ import annotations

import enum


class LinkKind(enum.Enum):
    """The eleven rows of Table 1."""

    CLASS = "class"
    PRIMITIVE_TYPE = "primitive type"
    INTERFACE = "interface"
    ARRAY_TYPE = "array type"
    OBJECT = "object"
    PRIMITIVE_VALUE = "primitive value"
    FIELD = "(static) field"
    STATIC_METHOD = "(static) method"
    CONSTRUCTOR = "constructor"
    ARRAY = "array"
    ARRAY_ELEMENT = "array element"

    def __str__(self) -> str:
        return self.value


#: Table 1, exactly: link kind -> the Java production it must parse as.
PRODUCTION_FOR_KIND: dict[LinkKind, str] = {
    LinkKind.CLASS: "ClassType",
    LinkKind.PRIMITIVE_TYPE: "PrimitiveType",
    LinkKind.INTERFACE: "InterfaceType",
    LinkKind.ARRAY_TYPE: "ArrayType",
    LinkKind.OBJECT: "Primary",
    LinkKind.PRIMITIVE_VALUE: "Literal",
    LinkKind.FIELD: "FieldAccess",
    LinkKind.STATIC_METHOD: "Name",
    LinkKind.CONSTRUCTOR: "Name",
    LinkKind.ARRAY: "Primary",
    LinkKind.ARRAY_ELEMENT: "ArrayAccess",
}


def production_for_kind(kind: LinkKind) -> str:
    """The Table 1 production for a link kind."""
    return PRODUCTION_FOR_KIND[kind]


#: Kinds that denote types (usable in type positions of the grammar).
TYPE_KINDS = frozenset({LinkKind.CLASS, LinkKind.PRIMITIVE_TYPE,
                        LinkKind.INTERFACE, LinkKind.ARRAY_TYPE})

#: Kinds that denote run-time values usable in expression positions.
VALUE_KINDS = frozenset({LinkKind.OBJECT, LinkKind.PRIMITIVE_VALUE,
                         LinkKind.FIELD, LinkKind.ARRAY,
                         LinkKind.ARRAY_ELEMENT})

#: Kinds that denote invocable entities.
INVOCABLE_KINDS = frozenset({LinkKind.STATIC_METHOD, LinkKind.CONSTRUCTOR})

#: Kinds that may also be linked as *locations* containing a value
#: ("such as fields and array elements", Section 2).
LOCATION_CAPABLE_KINDS = frozenset({LinkKind.FIELD, LinkKind.ARRAY_ELEMENT})

#: Kinds rendered with ``isSpecial == true`` in the storage form — the
#: Figure 5/6 boolean "denoting whether hyper-link denotes a class or
#: method" (we extend it to all type/invocable denotations, which is what
#: the flag disambiguates in Section 4.2).  A FIELD link is special when it
#: denotes the *static member itself* (name-resolved) and not special when
#: it denotes a field location holding a value.
SPECIAL_KINDS = TYPE_KINDS | INVOCABLE_KINDS
