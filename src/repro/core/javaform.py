"""Java-syntax hyper-programs.

The paper's hyper-programs are Java source (Figure 2).  This module lets a
:class:`~repro.core.hyperprogram.HyperProgram` hold the Java subset as its
text: the storage form is unchanged (text plus positioned links), and
compilation goes Java → hole-marked Java → Python (via
:mod:`repro.javagrammar.codegen`) → the standard compiler, with each hole
replaced by the same retrieval denotation the Python textual form uses.

So the paper's exact example::

    public class MarryExample {
      public static void main(String[] args) {
        (, );                        # with three links at the hole points
      }
    }

compiles and runs against the persistent store.
"""

from __future__ import annotations

from typing import Any

from repro.core.hyperprogram import HyperProgram
from repro.core.linkkinds import LinkKind
from repro.core.textual import textual_for_link
from repro.errors import CompilationError, GrammarError
from repro.javagrammar.codegen import JavaToPython
from repro.javagrammar.lexer import HOLE_CLOSE, HOLE_OPEN
from repro.store.registry import ClassRegistry


def hole_marked_java(program: HyperProgram) -> str:
    """The program text with a ``⟦kind⟧`` hole spliced at every link
    position — the parseable Java silhouette of the hyper-program."""
    parts: list[str] = []
    cursor = 0
    for link in sorted(program.the_links, key=lambda item: item.string_pos):
        parts.append(program.the_text[cursor:link.string_pos])
        parts.append(f"{HOLE_OPEN}{link.kind.value}{HOLE_CLOSE}")
        cursor = link.string_pos
    parts.append(program.the_text[cursor:])
    return "".join(parts)


def java_to_python_source(program: HyperProgram, hp_index: int,
                          password: str, registry: ClassRegistry
                          ) -> tuple[str, dict[str, Any]]:
    """Translate a Java-syntax hyper-program to compilable Python.

    Returns ``(python_source, bindings)`` exactly like the Python textual
    form generator; hole *ordinals* (source order) map to the links sorted
    by position, and each denotation embeds the link's index within the
    hyper-program's own vector, so the run-time access path is identical.
    """
    from repro.core.compiler import DynamicCompiler

    bindings: dict[str, Any] = {"DynamicCompiler": DynamicCompiler}
    ordered = sorted(enumerate(program.the_links),
                     key=lambda item: item[1].string_pos)

    def hole_text(ordinal: int, kind: LinkKind) -> str:
        if not 0 <= ordinal < len(ordered):
            raise CompilationError(
                f"hole ordinal {ordinal} out of range for "
                f"{len(ordered)} links"
            )
        link_index, link = ordered[ordinal]
        return textual_for_link(link, hp_index, link_index, password,
                                registry, bindings)

    marked = hole_marked_java(program)
    try:
        python_source = JavaToPython(hole_text).transpile_source(marked)
    except GrammarError as exc:
        raise CompilationError(
            f"Java hyper-program does not transpile: {exc}",
            textual_form=marked,
            diagnostics=str(exc),
        ) from exc
    header = ("# transpiled from Java hyper-program "
              f"{hp_index} ({program.class_name or 'anonymous'})\n"
              f"# bindings: {', '.join(sorted(bindings))}\n")
    return header + python_source, bindings
