"""Syntactic legality of hyper-link insertions.

Section 2: "The Napier88 hyper-programming system allows a hyper-link to be
inserted anywhere in a program whether it is a syntactically legal use or
not.  Illegal uses will result in compilation errors.  The same is true in
our present Java system but we intend to incorporate a parser into the
editing system to direct syntactically legal insertions of hyper-links."

This module implements that *intended* parser-directed checking (the
paper's planned extension) for the Python hyper-programs of this
reproduction: each link kind has a representative placeholder with the
shape of its Table 1 production, and an insertion is legal iff the program
with all links replaced by their placeholders still parses.  The
production-equivalence is "necessary but not sufficient" — the whole-
program parse supplies the context-sensitivity the paper describes.

The faithful *Java* production checking of Table 1 itself lives in
:mod:`repro.javagrammar`.
"""

from __future__ import annotations

import ast
from typing import Iterable, Sequence

from repro.core.hyperlink import HyperLinkHP
from repro.core.hyperprogram import HyperProgram
from repro.core.linkkinds import LinkKind

#: A representative textual stand-in per kind, shaped like the kind's
#: Table 1 production (Name-like for methods/constructors, Literal for
#: primitive values, Primary for objects/arrays, access forms for
#: fields/elements, type names for type links).
PLACEHOLDERS: dict[LinkKind, str] = {
    LinkKind.CLASS: "__HPClass__",
    LinkKind.PRIMITIVE_TYPE: "int",
    LinkKind.INTERFACE: "__HPInterface__",
    LinkKind.ARRAY_TYPE: "list",
    # Object/array placeholders are call-shaped, matching the retrieval
    # expression the textual form really generates — and, like it, not
    # assignable (a value link is not a location).
    LinkKind.OBJECT: "(__hp_get_object__())",
    LinkKind.PRIMITIVE_VALUE: "0",
    LinkKind.FIELD: "__hp_holder__.__hp_field__",
    LinkKind.STATIC_METHOD: "__HPClass__.__hp_method__",
    LinkKind.CONSTRUCTOR: "__HPClass__",
    LinkKind.ARRAY: "(__hp_get_array__())",
    LinkKind.ARRAY_ELEMENT: "__hp_array__[0]",
}


def placeholder_for(kind: LinkKind) -> str:
    return PLACEHOLDERS[kind]


def textual_skeleton(text: str,
                     links: Iterable[HyperLinkHP]) -> str:
    """The program text with every link replaced by its placeholder —
    the parse-shaped silhouette of the hyper-program."""
    parts: list[str] = []
    cursor = 0
    for link in sorted(links, key=lambda item: item.string_pos):
        parts.append(text[cursor:link.string_pos])
        parts.append(placeholder_for(link.kind))
        cursor = link.string_pos
    parts.append(text[cursor:])
    return "".join(parts)


def skeleton_parses(text: str, links: Iterable[HyperLinkHP]) -> bool:
    try:
        ast.parse(textual_skeleton(text, links))
    except SyntaxError:
        return False
    return True


def is_legal_insertion(program: HyperProgram, pos: int,
                       kind: LinkKind) -> bool:
    """Would inserting a link of ``kind`` at ``pos`` keep the program
    syntactically legal?

    This is the editor-side check the paper plans in Section 2: the
    candidate link's placeholder is spliced in along with those of the
    existing links and the whole program is parsed.
    """
    if not 0 <= pos <= len(program.the_text):
        return False
    candidate = list(program.the_links)
    probe = HyperLinkHP.__new__(HyperLinkHP)
    probe.hyper_link_object = None
    probe.label = "?"
    probe.string_pos = pos
    probe.is_special = False
    probe.is_primitive = kind is LinkKind.PRIMITIVE_VALUE
    probe.kind_name = kind.value
    candidate.append(probe)
    return skeleton_parses(program.the_text, candidate)


# ---------------------------------------------------------------------------
# The legality matrix: link kinds x syntactic contexts
# ---------------------------------------------------------------------------

#: Canonical hole contexts; ``{}`` marks the hole.  Each corresponds to a
#: syntactic position a programmer might drop a link onto.
CONTEXTS: dict[str, str] = {
    "expression": "x = {}\n",
    "callee": "x = {}(1, 2)\n",
    "call argument": "f({})\n",
    "attribute base": "x = {}.field\n",
    "subscript base": "x = {}[0]\n",
    "subscript index": "x = a[{}]\n",
    "annotation": "def f(a: {}) -> None:\n    pass\n",
    "base class": "class C({}):\n    pass\n",
    "statement": "{}\n",
    "assign target": "{} = 1\n",
    "for iterable": "for i in {}:\n    pass\n",
}


def context_accepts(context_template: str, kind: LinkKind) -> bool:
    """Does the placeholder for ``kind`` parse in the given context?"""
    source = context_template.replace("{}", placeholder_for(kind))
    try:
        ast.parse(source)
    except SyntaxError:
        return False
    return True


def legality_matrix(kinds: Sequence[LinkKind] = tuple(LinkKind),
                    contexts: dict[str, str] | None = None
                    ) -> dict[tuple[str, str], bool]:
    """The full kinds-by-contexts legality matrix.

    Keys are ``(kind.value, context_name)``.  Used by benchmark T1 to
    regenerate (and extend) the paper's Table 1.
    """
    if contexts is None:
        contexts = CONTEXTS
    matrix: dict[tuple[str, str], bool] = {}
    for kind in kinds:
        for name, template in contexts.items():
            matrix[(kind.value, name)] = context_accepts(template, kind)
    return matrix


def format_legality_matrix(matrix: dict[tuple[str, str], bool] | None = None
                           ) -> str:
    """A printable table of the legality matrix (benchmark T1 output)."""
    if matrix is None:
        matrix = legality_matrix()
    kinds = sorted({key[0] for key in matrix},
                   key=lambda value: [k.value for k in LinkKind].index(value))
    contexts = sorted({key[1] for key in matrix},
                      key=lambda value: list(CONTEXTS).index(value)
                      if value in CONTEXTS else 99)
    width = max(len(kind) for kind in kinds) + 2
    header = " " * width + " ".join(f"{name[:10]:>10}" for name in contexts)
    rows = [header]
    for kind in kinds:
        cells = " ".join(
            f"{'yes' if matrix[(kind, name)] else '-':>10}"
            for name in contexts
        )
        rows.append(f"{kind:<{width}}{cells}")
    return "\n".join(rows)
