"""The textual form (paper Sections 4.1–4.2, Figure 8).

"Standard Java compilers operate on textual source programs rather than
hyper-programs.  To enable a hyper-program to be compiled with such a
compiler, it is first translated into a purely textual form in which each
hyper-link is replaced by an equivalent textual denotation."

The denotation of each link depends on its kind:

* **object / array / array element / field location** — a retrieval
  expression through the password-protected registry, the exact shape of
  the paper's Figure 8::

      (DynamicCompiler.get_link("passwd", <hp index>, <link index>).get_object())

  Location links call ``.dereference()`` instead, so the value is read
  from the location at *run* time — delayed binding preserved (Section 7).
* **static method / constructor / class / static field** — the fully
  qualified textual name (``Person.marry``), with the defining class made
  visible to the compiled code.  The paper does this with generated
  ``import`` statements (Figure 8 lines 1–2); the Python analogue injects
  the class as a loader binding, recorded in the returned binding map and
  echoed as a header comment for fidelity.
* **primitive value** — the literal itself.

This module also provides :class:`TextualBaseline`, the conventional
programming model hyper-programming replaces (objects located by textual
root-plus-path descriptions, resolved at run time), used by the benefit
benchmarks (B1).
"""

from __future__ import annotations

from typing import Any, TYPE_CHECKING

from repro.core.hyperlink import (
    ArrayElementLocation,
    ClassRef,
    ConstructorRef,
    FieldLocation,
    FieldRef,
    HyperLinkHP,
    MethodRef,
)
from repro.core.hyperprogram import HyperProgram
from repro.errors import CompilationError, UnknownRootError
from repro.store.registry import ClassRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.store.objectstore import ObjectStore

#: Primitive type names that resolve to Python builtins rather than
#: registered classes (the PrimitiveType row of Table 1).
_BUILTIN_TYPES = {"int": int, "float": float, "bool": bool, "str": str,
                  "bytes": bytes, "complex": complex, "None": type(None)}


def textual_for_link(link: HyperLinkHP, hp_index: int, link_index: int,
                     password: str, registry: ClassRegistry,
                     bindings: dict[str, Any]) -> str:
    """The textual denotation of one hyper-link.

    ``bindings`` is extended in place with the loader bindings the
    denotation needs (the analogue of generated imports).
    """
    obj = link.hyper_link_object
    if link.is_primitive:
        return repr(obj)
    if isinstance(obj, MethodRef):
        method = obj.resolve(registry)
        declaring = method.get_declaring_class()
        bindings[declaring.get_simple_name()] = declaring.python_class
        return method.qualified_name()
    if isinstance(obj, FieldRef):
        field = obj.resolve(registry)
        declaring = field.get_declaring_class()
        bindings[declaring.get_simple_name()] = declaring.python_class
        return f"{declaring.get_simple_name()}.{field.get_name()}"
    if isinstance(obj, (ConstructorRef, ClassRef)):
        simple = obj.simple_name()
        if simple in _BUILTIN_TYPES:
            return simple
        klass = obj.resolve(registry).python_class
        bindings[simple] = klass
        return simple
    accessor = ("dereference"
                if isinstance(obj, (FieldLocation, ArrayElementLocation))
                else "get_object")
    return (f"(DynamicCompiler.get_link({password!r}, {hp_index}, "
            f"{link_index}).{accessor}())")


def generate_textual_form_with_map(program: HyperProgram, hp_index: int,
                                   password: str, registry: ClassRegistry
                                   ) -> tuple[str, dict[str, Any], "SourceMap"]:
    """Translate a storage-form hyper-program into compilable source.

    Returns ``(source, bindings, source_map)``: the compilable text, the
    names the loader must inject (``DynamicCompiler`` plus the defining
    classes of special links), and a source map that translates textual
    diagnostics back to hyper-program positions (the paper's Section 5.4.2
    "future version" of error reporting).
    """
    from repro.core.compiler import DynamicCompiler
    from repro.core.errormap import SourceMap

    bindings: dict[str, Any] = {"DynamicCompiler": DynamicCompiler}
    parts: list[str] = []
    pieces: list[tuple[int, int, int]] = []  # (hyper_start|-1, link|-1, len)
    cursor = 0
    ordered = sorted(enumerate(program.the_links),
                     key=lambda item: item[1].string_pos)
    for link_index, link in ordered:
        if link.string_pos < cursor:
            raise CompilationError(
                f"overlapping link positions at {link.string_pos}",
                textual_form=program.the_text,
            )
        verbatim = program.the_text[cursor:link.string_pos]
        parts.append(verbatim)
        pieces.append((cursor, -1, len(verbatim)))
        denotation = textual_for_link(link, hp_index, link_index, password,
                                      registry, bindings)
        parts.append(denotation)
        pieces.append((-1, link_index, len(denotation)))
        cursor = link.string_pos
    tail = program.the_text[cursor:]
    parts.append(tail)
    pieces.append((cursor, -1, len(tail)))
    body = "".join(parts)
    # Header comment mirroring Figure 8's generated import statements.
    header = ("# generated textual form of hyper-program "
              f"{hp_index} ({program.class_name or 'anonymous'})\n"
              f"# bindings: {', '.join(sorted(bindings))}\n")
    source_map = SourceMap(program, len(header))
    offset = len(header)
    for hyper_start, link_index, length in pieces:
        if link_index >= 0:
            source_map.add_link(offset, length, link_index)
        else:
            source_map.add_verbatim(offset, hyper_start, length)
        offset += length
    return header + body, bindings, source_map


def generate_textual_form(program: HyperProgram, hp_index: int,
                          password: str,
                          registry: ClassRegistry) -> tuple[str, dict[str, Any]]:
    """As :func:`generate_textual_form_with_map`, without the map."""
    source, bindings, __ = generate_textual_form_with_map(
        program, hp_index, password, registry)
    return source, bindings


# ---------------------------------------------------------------------------
# The conventional baseline: textual descriptions of how to locate objects
# ---------------------------------------------------------------------------

class PersistentLookup:
    """Run-time lookup of persistent objects by textual description.

    This is what a program must do *without* hyper-programming: name a
    root, then navigate a path of field names and indices, every step
    validated only when the program runs.  Used as the baseline in the
    benefit benchmarks (Section 1: early checking, succinctness).
    """

    _store: "ObjectStore | None" = None

    @classmethod
    def install(cls, store: "ObjectStore") -> None:
        cls._store = store

    @classmethod
    def installed_store(cls) -> "ObjectStore":
        if cls._store is None:
            raise UnknownRootError("no store installed for PersistentLookup")
        return cls._store

    @classmethod
    def lookup(cls, root_name: str, path: str = "") -> Any:
        """Resolve ``root_name`` then follow ``path``.

        ``path`` is a dotted sequence of field names, where a purely
        numeric step indexes into a list — e.g. ``"people.0.spouse"``.
        """
        value = cls.installed_store().get_root(root_name)
        if not path:
            return value
        for step in path.split("."):
            if step.lstrip("-").isdigit():
                try:
                    value = value[int(step)]
                except (IndexError, TypeError, KeyError) as exc:
                    raise LookupError(
                        f"path step {step!r} failed on "
                        f"{type(value).__name__}: {exc}"
                    ) from exc
            else:
                try:
                    value = getattr(value, step)
                except AttributeError:
                    if isinstance(value, dict) and step in value:
                        value = value[step]
                    else:
                        raise LookupError(
                            f"path step {step!r} failed on "
                            f"{type(value).__name__}"
                        ) from None
        return value


class TextualBaseline:
    """Generates the baseline (non-hyper) source for locating an object.

    ``expression("people", "0.spouse")`` returns the source text a
    conventional program embeds where a hyper-program embeds a link.
    """

    @staticmethod
    def expression(root_name: str, path: str = "") -> str:
        if path:
            return f"PersistentLookup.lookup({root_name!r}, {path!r})"
        return f"PersistentLookup.lookup({root_name!r})"

    @staticmethod
    def bindings() -> dict[str, Any]:
        return {"PersistentLookup": PersistentLookup}
