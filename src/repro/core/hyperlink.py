"""``HyperLinkHP`` — the storage-form representation of one hyper-link.

Figure 6 of the paper::

    public class HyperLinkHP {
        protected Object  hyperLinkObject;
        protected String  label;
        protected int     stringPos;
        protected boolean isSpecial;
        protected boolean isPrimitive;
        ...
        public Object getObject ()      { return hyperLinkObject; }
        public String getLabel()        { return label; }
        public int getStringPos()       { return stringPos; }
        public boolean getIsSpecial()   { return isSpecial; }
        public boolean getIsPrimitive() { return isPrimitive; }
    }

"The use of the field hyperLinkObject depends on the kind of hyper-link"
(Section 3.1): for the link to the static method it holds the ``Method``
instance, for object links it holds the object itself.  In this
reproduction, *special* links (classes, interfaces, methods, constructors,
static fields, type links) store a persistable **descriptor** naming the
entity (:class:`ClassRef`, :class:`MethodRef`, ...), because Python classes
are not themselves storable nodes; the descriptor resolves back to the live
entity through the store's class registry — the analogue of PJama storing
``Class``/``Method`` objects.  Location links store a :class:`FieldLocation`
or :class:`ArrayElementLocation`, whose ``get``/``set`` realise the paper's
delayed binding through locations (Sections 2, 5.4.1 and 7).
"""

from __future__ import annotations

from typing import Any

from repro.core.linkkinds import LinkKind
from repro.errors import LinkKindError, NoSuchMemberError
from repro.reflect.metaobjects import JClass, JConstructor, JField, JMethod
from repro.store.registry import ClassRegistry, qualified_name

_INLINE_PRIMITIVES = (type(None), bool, int, float, complex, str, bytes)


# ---------------------------------------------------------------------------
# Persistable descriptors for "special" link targets
# ---------------------------------------------------------------------------

class ClassRef:
    """Names a class; resolves through a class registry."""

    class_name: str

    def __init__(self, class_name: str):
        self.class_name = class_name

    @classmethod
    def of(cls, klass: type) -> "ClassRef":
        return cls(qualified_name(klass))

    def simple_name(self) -> str:
        return self.class_name.rsplit(".", 1)[-1]

    def resolve(self, registry: ClassRegistry) -> JClass:
        return JClass(registry.entry_for_name(self.class_name).cls)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ClassRef) and \
            other.class_name == self.class_name and type(other) is type(self)

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.class_name))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.class_name})"


class ConstructorRef(ClassRef):
    """Names a class's constructor (Table 1 row: constructor -> Name)."""

    def resolve_constructor(self, registry: ClassRegistry) -> JConstructor:
        return self.resolve(registry).get_constructor()


class MethodRef:
    """Names a (static) method; the persistable form of a ``Method`` link."""

    class_name: str
    method_name: str

    def __init__(self, class_name: str, method_name: str):
        self.class_name = class_name
        self.method_name = method_name

    @classmethod
    def of(cls, method: JMethod) -> "MethodRef":
        declaring = method.get_declaring_class()
        return cls(declaring.get_name(), method.get_name())

    def simple_name(self) -> str:
        return (f"{self.class_name.rsplit('.', 1)[-1]}"
                f".{self.method_name}")

    def resolve(self, registry: ClassRegistry) -> JMethod:
        klass = registry.entry_for_name(self.class_name).cls
        return JClass(klass).get_method(self.method_name)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, MethodRef)
                and other.class_name == self.class_name
                and other.method_name == self.method_name)

    def __hash__(self) -> int:
        return hash(("MethodRef", self.class_name, self.method_name))

    def __repr__(self) -> str:
        return f"MethodRef({self.class_name}.{self.method_name})"


class FieldRef:
    """Names a static field — the member itself, not its current value."""

    class_name: str
    field_name: str

    def __init__(self, class_name: str, field_name: str):
        self.class_name = class_name
        self.field_name = field_name

    @classmethod
    def of(cls, field: JField) -> "FieldRef":
        return cls(field.get_declaring_class().get_name(), field.get_name())

    def simple_name(self) -> str:
        return f"{self.class_name.rsplit('.', 1)[-1]}.{self.field_name}"

    def resolve(self, registry: ClassRegistry) -> JField:
        klass = registry.entry_for_name(self.class_name).cls
        return JClass(klass).get_field(self.field_name)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, FieldRef)
                and other.class_name == self.class_name
                and other.field_name == self.field_name)

    def __hash__(self) -> int:
        return hash(("FieldRef", self.class_name, self.field_name))

    def __repr__(self) -> str:
        return f"FieldRef({self.class_name}.{self.field_name})"


# ---------------------------------------------------------------------------
# Locations (links to locations that contain values — Section 2)
# ---------------------------------------------------------------------------

class FieldLocation:
    """A link to the *location* of an object's field.

    Reading the location at run time yields "the object that is currently
    contained in the location" (Section 7) — delayed binding preserved.
    """

    holder: object
    field_name: str

    def __init__(self, holder: Any, field_name: str):
        self.holder = holder
        self.field_name = field_name

    def get(self) -> Any:
        try:
            return getattr(self.holder, self.field_name)
        except AttributeError:
            raise NoSuchMemberError(
                f"{type(self.holder).__name__} object has no field "
                f"{self.field_name!r}"
            ) from None

    def set(self, value: Any) -> None:
        setattr(self.holder, self.field_name, value)

    def __repr__(self) -> str:
        return (f"FieldLocation({type(self.holder).__name__}"
                f".{self.field_name})")


class ArrayElementLocation:
    """A link to one element *location* of an array (Python list)."""

    array: list
    index: int

    def __init__(self, array: list, index: int):
        self.array = array
        self.index = index

    def get(self) -> Any:
        return self.array[self.index]

    def set(self, value: Any) -> None:
        self.array[self.index] = value

    def __repr__(self) -> str:
        return f"ArrayElementLocation([{self.index}])"


#: Classes the link machinery stores inside hyper-programs; the link store
#: registers these with its object store's registry.
DESCRIPTOR_CLASSES = (ClassRef, ConstructorRef, MethodRef, FieldRef,
                      FieldLocation, ArrayElementLocation)


# ---------------------------------------------------------------------------
# HyperLinkHP
# ---------------------------------------------------------------------------

class HyperLinkHP:
    """One hyper-link in the storage form (paper Figure 6)."""

    hyper_link_object: object
    label: str
    string_pos: int
    is_special: bool
    is_primitive: bool
    kind_name: str

    def __init__(self, hyper_link_object: Any, label: str, string_pos: int,
                 is_special: bool, is_primitive: bool,
                 kind: LinkKind | None = None):
        if string_pos < 0:
            raise LinkKindError(f"negative link position {string_pos}")
        if is_special and is_primitive:
            raise LinkKindError("a link cannot be both special and primitive")
        self.hyper_link_object = hyper_link_object
        self.label = label
        self.string_pos = string_pos
        self.is_special = is_special
        self.is_primitive = is_primitive
        self.kind_name = (kind or self._infer_kind(
            hyper_link_object, is_special, is_primitive)).value

    @staticmethod
    def _infer_kind(obj: Any, is_special: bool,
                    is_primitive: bool) -> LinkKind:
        if is_primitive:
            return LinkKind.PRIMITIVE_VALUE
        if isinstance(obj, ConstructorRef):
            return LinkKind.CONSTRUCTOR
        if isinstance(obj, ClassRef):
            return LinkKind.CLASS
        if isinstance(obj, MethodRef):
            return LinkKind.STATIC_METHOD
        if isinstance(obj, FieldRef) or isinstance(obj, FieldLocation):
            return LinkKind.FIELD
        if isinstance(obj, ArrayElementLocation):
            return LinkKind.ARRAY_ELEMENT
        if isinstance(obj, list):
            return LinkKind.ARRAY
        if is_special:
            return LinkKind.CLASS
        return LinkKind.OBJECT

    # -- paper accessors (Figure 6) --------------------------------------

    def get_object(self) -> Any:
        """``getObject()`` — the linked entity (descriptor for special links)."""
        return self.hyper_link_object

    def get_label(self) -> str:
        return self.label

    def get_string_pos(self) -> int:
        return self.string_pos

    def get_is_special(self) -> bool:
        return self.is_special

    def get_is_primitive(self) -> bool:
        return self.is_primitive

    getObject = get_object
    getLabel = get_label
    getStringPos = get_string_pos
    getIsSpecial = get_is_special
    getIsPrimitive = get_is_primitive

    # -- reproduction extensions ------------------------------------------

    @property
    def kind(self) -> LinkKind:
        return LinkKind(self.kind_name)

    def is_location(self) -> bool:
        return isinstance(self.hyper_link_object,
                          (FieldLocation, ArrayElementLocation))

    def dereference(self) -> Any:
        """The run-time value the link stands for in an expression.

        For a location link this reads the location *now* (delayed
        binding); for a value link it is the linked object itself.
        """
        obj = self.hyper_link_object
        if isinstance(obj, (FieldLocation, ArrayElementLocation)):
            return obj.get()
        return obj

    def __repr__(self) -> str:
        return (f"HyperLinkHP({self.label!r}, pos={self.string_pos}, "
                f"kind={self.kind_name}, special={self.is_special}, "
                f"primitive={self.is_primitive})")

    # -- factories for each Table 1 row -----------------------------------

    @classmethod
    def to_object(cls, obj: Any, label: str, pos: int) -> "HyperLinkHP":
        if isinstance(obj, _INLINE_PRIMITIVES):
            raise LinkKindError(
                f"{type(obj).__name__} values are primitive; use to_primitive"
            )
        kind = LinkKind.ARRAY if isinstance(obj, list) else LinkKind.OBJECT
        return cls(obj, label, pos, False, False, kind)

    @classmethod
    def to_array(cls, array: list, label: str, pos: int) -> "HyperLinkHP":
        if not isinstance(array, list):
            raise LinkKindError("array links require a list")
        return cls(array, label, pos, False, False, LinkKind.ARRAY)

    @classmethod
    def to_primitive(cls, value: Any, label: str, pos: int) -> "HyperLinkHP":
        if not isinstance(value, _INLINE_PRIMITIVES):
            raise LinkKindError(
                f"{type(value).__name__} is not a primitive value"
            )
        return cls(value, label, pos, False, True, LinkKind.PRIMITIVE_VALUE)

    @classmethod
    def to_class(cls, klass: type, label: str, pos: int,
                 interface: bool = False) -> "HyperLinkHP":
        kind = LinkKind.INTERFACE if interface else LinkKind.CLASS
        return cls(ClassRef.of(klass), label, pos, True, False, kind)

    @classmethod
    def to_primitive_type(cls, type_name: str, label: str,
                          pos: int) -> "HyperLinkHP":
        return cls(ClassRef(type_name), label, pos, True, False,
                   LinkKind.PRIMITIVE_TYPE)

    @classmethod
    def to_array_type(cls, element_class: type, label: str,
                      pos: int) -> "HyperLinkHP":
        return cls(ClassRef.of(element_class), label, pos, True, False,
                   LinkKind.ARRAY_TYPE)

    @classmethod
    def to_static_method(cls, method: JMethod, label: str,
                         pos: int) -> "HyperLinkHP":
        return cls(MethodRef.of(method), label, pos, True, False,
                   LinkKind.STATIC_METHOD)

    @classmethod
    def to_constructor(cls, klass: type, label: str, pos: int) -> "HyperLinkHP":
        return cls(ConstructorRef.of(klass), label, pos, True, False,
                   LinkKind.CONSTRUCTOR)

    @classmethod
    def to_static_field(cls, field: JField, label: str,
                        pos: int) -> "HyperLinkHP":
        return cls(FieldRef.of(field), label, pos, True, False,
                   LinkKind.FIELD)

    @classmethod
    def to_field_location(cls, holder: Any, field_name: str, label: str,
                          pos: int) -> "HyperLinkHP":
        return cls(FieldLocation(holder, field_name), label, pos, False,
                   False, LinkKind.FIELD)

    @classmethod
    def to_array_element(cls, array: list, index: int, label: str,
                         pos: int) -> "HyperLinkHP":
        if not isinstance(array, list):
            raise LinkKindError("array element links require a list")
        if not 0 <= index < len(array):
            raise LinkKindError(
                f"index {index} out of range for array of {len(array)}"
            )
        return cls(ArrayElementLocation(array, index), label, pos, False,
                   False, LinkKind.ARRAY_ELEMENT)
