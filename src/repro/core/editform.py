"""The editing form (paper Figure 11).

"The hyper-program editing form is the data structure used in the basic
editor.  It is similar to the storage form but is optimised for editing
operations. ... The textual part of each line is kept in a separate string.
The position of each hyper-link is defined by a pair of values (line
number, offset)."  (Section 5.2)

The form is a vector of :class:`HyperLine` instances; each line owns its
text and the links anchored on it.  All editing operations (insertion and
deletion of text and links, line split/join) are local to the lines they
touch — which is exactly why this form beats the flat storage form for
editing (benchmarked as ablation F11).

A link is a zero-width anchor between two characters of its line; edits
shift anchors on the same line, and deletions remove the links whose
anchor falls strictly inside the deleted range.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional

from repro.core.linkkinds import LinkKind
from repro.errors import EditPositionError


class HyperLink:
    """An editing-form link: label, offset-in-line, flags, linked object.

    Mirrors the storage form's :class:`~repro.core.hyperlink.HyperLinkHP`
    but positioned with a line-local offset (Figure 11).
    """

    __slots__ = ("hyper_link_object", "label", "pos", "is_special",
                 "is_primitive", "kind_name")

    def __init__(self, hyper_link_object: Any, label: str, pos: int,
                 is_special: bool, is_primitive: bool,
                 kind: LinkKind | str = LinkKind.OBJECT):
        if pos < 0:
            raise EditPositionError(f"negative link offset {pos}")
        self.hyper_link_object = hyper_link_object
        self.label = label
        self.pos = pos
        self.is_special = is_special
        self.is_primitive = is_primitive
        self.kind_name = kind.value if isinstance(kind, LinkKind) else kind

    @property
    def kind(self) -> LinkKind:
        return LinkKind(self.kind_name)

    def clone(self) -> "HyperLink":
        return HyperLink(self.hyper_link_object, self.label, self.pos,
                         self.is_special, self.is_primitive, self.kind_name)

    def __repr__(self) -> str:
        return f"HyperLink({self.label!r}@{self.pos}, {self.kind_name})"


class HyperLine:
    """One line of the editing form: text plus the links anchored on it."""

    __slots__ = ("text", "links")

    def __init__(self, text: str = "",
                 links: Optional[Iterable[HyperLink]] = None):
        self.text = text
        self.links: list[HyperLink] = sorted(
            (links or []), key=lambda link: link.pos
        )
        for link in self.links:
            if link.pos > len(text):
                raise EditPositionError(
                    f"link {link.label!r} at offset {link.pos} beyond line "
                    f"of length {len(text)}"
                )

    def __repr__(self) -> str:
        return f"HyperLine({self.text!r}, links={len(self.links)})"


class EditForm:
    """The editing form: a vector of :class:`HyperLine`."""

    def __init__(self, lines: Optional[Iterable[HyperLine]] = None):
        self.lines: list[HyperLine] = list(lines or [HyperLine()])
        if not self.lines:
            self.lines = [HyperLine()]

    # -- queries -----------------------------------------------------------

    def line_count(self) -> int:
        return len(self.lines)

    def line(self, index: int) -> HyperLine:
        self._check_line(index)
        return self.lines[index]

    def text_of_line(self, index: int) -> str:
        return self.line(index).text

    def all_links(self) -> Iterator[tuple[int, HyperLink]]:
        """Yield (line_number, link) for every link, in document order."""
        for line_no, line in enumerate(self.lines):
            for link in sorted(line.links, key=lambda item: item.pos):
                yield line_no, link

    def link_count(self) -> int:
        return sum(len(line.links) for line in self.lines)

    def char_count(self) -> int:
        return sum(len(line.text) for line in self.lines) + \
            max(0, len(self.lines) - 1)

    def _check_line(self, index: int) -> None:
        if not 0 <= index < len(self.lines):
            raise EditPositionError(
                f"line {index} out of range (document has "
                f"{len(self.lines)} lines)"
            )

    def _check_pos(self, line: int, col: int) -> None:
        self._check_line(line)
        if not 0 <= col <= len(self.lines[line].text):
            raise EditPositionError(
                f"column {col} out of range on line {line} of length "
                f"{len(self.lines[line].text)}"
            )

    # -- text editing -----------------------------------------------------

    def insert_text(self, line: int, col: int, text: str) -> tuple[int, int]:
        """Insert ``text`` (may contain newlines) at (line, col); returns
        the position just after the inserted text."""
        self._check_pos(line, col)
        pieces = text.split("\n")
        target = self.lines[line]
        # Links have *left gravity*: an anchor exactly at the insertion
        # point stays put (text typed at the cursor goes after a link just
        # inserted there), anchors strictly beyond it shift right.
        if len(pieces) == 1:
            target.text = target.text[:col] + text + target.text[col:]
            for link in target.links:
                if link.pos > col:
                    link.pos += len(text)
            return line, col + len(text)
        # Multi-line insert: split the target line at col, distribute.
        head, tail = target.text[:col], target.text[col:]
        moved = [link for link in target.links if link.pos > col]
        target.links = [link for link in target.links if link.pos <= col]
        target.text = head + pieces[0]
        new_lines = [HyperLine(piece) for piece in pieces[1:]]
        last = new_lines[-1]
        end_col = len(last.text)
        last.text += tail
        for link in moved:
            link.pos = link.pos - col + end_col
            last.links.append(link)
        last.links.sort(key=lambda item: item.pos)
        self.lines[line + 1:line + 1] = new_lines
        return line + len(new_lines), end_col

    def delete_range(self, start: tuple[int, int],
                     end: tuple[int, int]) -> str:
        """Delete text between ``start`` and ``end`` (inclusive-exclusive
        character positions); returns the deleted text.  Links anchored
        strictly inside the range are removed; links at the boundaries
        survive."""
        (l1, c1), (l2, c2) = start, end
        self._check_pos(l1, c1)
        self._check_pos(l2, c2)
        if (l2, c2) < (l1, c1):
            raise EditPositionError("range end precedes range start")
        if l1 == l2:
            line = self.lines[l1]
            deleted = line.text[c1:c2]
            line.text = line.text[:c1] + line.text[c2:]
            kept = []
            for link in line.links:
                if c1 < link.pos < c2:
                    continue  # deleted with the range
                if link.pos >= c2:
                    link.pos -= (c2 - c1)
                kept.append(link)
            line.links = kept
            return deleted
        first, last = self.lines[l1], self.lines[l2]
        deleted_parts = [first.text[c1:]]
        deleted_parts.extend(line.text for line in self.lines[l1 + 1:l2])
        deleted_parts.append(last.text[:c2])
        deleted = "\n".join(deleted_parts)
        surviving_links = [link for link in first.links if link.pos <= c1]
        for link in last.links:
            if link.pos >= c2:
                link.pos = link.pos - c2 + c1
                surviving_links.append(link)
        first.text = first.text[:c1] + last.text[c2:]
        first.links = sorted(surviving_links, key=lambda item: item.pos)
        del self.lines[l1 + 1:l2 + 1]
        return deleted

    def split_line(self, line: int, col: int) -> None:
        """Break a line in two at (line, col) — the Enter key."""
        self.insert_text(line, col, "\n")

    def join_lines(self, line: int) -> None:
        """Join ``line`` with the following line — Delete at end of line."""
        self._check_line(line)
        if line + 1 >= len(self.lines):
            raise EditPositionError(f"no line after {line} to join")
        self.delete_range((line, len(self.lines[line].text)), (line + 1, 0))

    # -- link editing --------------------------------------------------------

    def insert_link(self, line: int, col: int, link: HyperLink) -> HyperLink:
        """Anchor ``link`` at (line, col); returns the (re-positioned) link."""
        self._check_pos(line, col)
        link.pos = col
        self.lines[line].links.append(link)
        self.lines[line].links.sort(key=lambda item: item.pos)
        return link

    def remove_link(self, line: int, link: HyperLink) -> None:
        self._check_line(line)
        try:
            self.lines[line].links.remove(link)
        except ValueError:
            raise EditPositionError(
                f"link {link.label!r} is not anchored on line {line}"
            ) from None

    def links_on_line(self, line: int) -> list[HyperLink]:
        return sorted(self.line(line).links, key=lambda item: item.pos)

    # -- rendering -------------------------------------------------------------

    def render(self, open_mark: str = "[", close_mark: str = "]") -> str:
        """Text with link labels spliced in as buttons, per line."""
        rendered = []
        for line in self.lines:
            parts: list[str] = []
            cursor = 0
            for link in sorted(line.links, key=lambda item: item.pos):
                parts.append(line.text[cursor:link.pos])
                parts.append(f"{open_mark}{link.label}{close_mark}")
                cursor = link.pos
            parts.append(line.text[cursor:])
            rendered.append("".join(parts))
        return "\n".join(rendered)

    def clone(self) -> "EditForm":
        copy = EditForm([])
        copy.lines = [
            HyperLine(line.text, [link.clone() for link in line.links])
            for line in self.lines
        ]
        return copy

    def __repr__(self) -> str:
        return (f"EditForm(lines={len(self.lines)}, "
                f"links={self.link_count()})")
