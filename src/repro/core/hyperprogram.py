"""``HyperProgram`` — the storage form (paper Figures 4 and 5).

"It contains a string and a vector of HyperLinkHP instances.  The string
contains the textual part of the hyper-program while the vector contains
references to the hyper-linked entities" (Section 3.1).

Link positions are absolute character offsets into the text (``stringPos``)
marking the point at which the link sits *between* characters; the textual
form splices each link's retrieval expression at that point.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.hyperlink import HyperLinkHP
from repro.errors import LinkPositionError


class HyperProgram:
    """The storage form of a hyper-program."""

    the_text: str
    the_links: list
    class_name: str

    def __init__(self, the_text: str = "",
                 the_links: Optional[Iterable[HyperLinkHP]] = None,
                 class_name: str = ""):
        self.the_text = the_text
        self.the_links = list(the_links) if the_links is not None else []
        self.class_name = class_name or self._infer_class_name(the_text)
        self._validate()

    @staticmethod
    def _infer_class_name(text: str) -> str:
        """The principal class "by default ... the first class defined in
        the hyper-program" (paper footnote 1)."""
        for line in text.splitlines():
            stripped = line.strip()
            if stripped.startswith("class ") or " class " in f" {stripped}":
                name = stripped.split("class", 1)[1].strip()
                for end, ch in enumerate(name):
                    if not (ch.isalnum() or ch == "_"):
                        return name[:end]
                return name
        return ""

    def _validate(self) -> None:
        for link in self.the_links:
            if link.string_pos > len(self.the_text):
                raise LinkPositionError(
                    f"link {link.label!r} at {link.string_pos} lies beyond "
                    f"text of length {len(self.the_text)}"
                )

    # -- paper accessors (Figure 4) ----------------------------------------

    def get_the_text(self) -> str:
        """Returns the textual part of the hyper-program."""
        return self.the_text

    def get_the_links(self) -> list[HyperLinkHP]:
        """Returns the vector containing HyperLinkHP instances."""
        return self.the_links

    def get_class_name(self) -> str:
        """``getClassName()`` as used by Figure 9's ``compileClasses``."""
        return self.class_name

    getTheText = get_the_text
    getTheLinks = get_the_links
    getClassName = get_class_name

    # -- construction helpers ------------------------------------------------

    def add_link(self, link: HyperLinkHP) -> int:
        """Append a link (keeping the vector ordered by position); returns
        the link's index within the hyper-program."""
        if link.string_pos > len(self.the_text):
            raise LinkPositionError(
                f"link position {link.string_pos} beyond text of length "
                f"{len(self.the_text)}"
            )
        self.the_links.append(link)
        self.the_links.sort(key=lambda item: item.string_pos)
        return self.the_links.index(link)

    def link_at(self, index: int) -> HyperLinkHP:
        return self.the_links[index]

    def link_count(self) -> int:
        return len(self.the_links)

    # -- display ----------------------------------------------------------

    def render(self, open_mark: str = "[", close_mark: str = "]") -> str:
        """The hyper-program as the editor shows it: text with each link's
        *label* spliced in as a button (paper Figure 2)."""
        parts: list[str] = []
        cursor = 0
        for link in sorted(self.the_links, key=lambda item: item.string_pos):
            parts.append(self.the_text[cursor:link.string_pos])
            parts.append(f"{open_mark}{link.label}{close_mark}")
            cursor = link.string_pos
        parts.append(self.the_text[cursor:])
        return "".join(parts)

    def __repr__(self) -> str:
        return (f"HyperProgram(class={self.class_name!r}, "
                f"text={len(self.the_text)} chars, "
                f"links={len(self.the_links)})")
