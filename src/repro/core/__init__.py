"""The hyper-programming core — the paper's primary contribution.

A *hyper-program* is source containing both text and links to persistent
objects.  This package provides the three representations of Section 3
(editing form, storage form, textual form), the translations between them,
the denotable-link specification of Table 1, the password-protected
persistent link registry of Figure 7, and the :class:`DynamicCompiler` of
Figure 9 that compiles hyper-programs with a standard compiler and links
the result into the running program.
"""

from repro.core.linkkinds import LinkKind, production_for_kind
from repro.core.hyperlink import (
    ArrayElementLocation,
    ClassRef,
    ConstructorRef,
    FieldLocation,
    FieldRef,
    HyperLinkHP,
    MethodRef,
)
from repro.core.hyperprogram import HyperProgram
from repro.core.editform import EditForm, HyperLine, HyperLink
from repro.core.convert import editing_to_storage, storage_to_editing
from repro.core.linkstore import LinkStore
from repro.core.compiler import DynamicCompiler
from repro.core.textual import generate_textual_form, TextualBaseline
from repro.core.legality import is_legal_insertion, legality_matrix

__all__ = [
    "LinkKind",
    "production_for_kind",
    "HyperLinkHP",
    "MethodRef",
    "ClassRef",
    "ConstructorRef",
    "FieldRef",
    "FieldLocation",
    "ArrayElementLocation",
    "HyperProgram",
    "EditForm",
    "HyperLine",
    "HyperLink",
    "editing_to_storage",
    "storage_to_editing",
    "LinkStore",
    "DynamicCompiler",
    "generate_textual_form",
    "TextualBaseline",
    "is_legal_insertion",
    "legality_matrix",
]
