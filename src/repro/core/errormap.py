"""Mapping textual-form errors back to the hyper-program.

Section 5.4.2: "If compilation fails, an error message is displayed.  In
the current version the error is described in terms of the translated
textual form, which may not be comprehensible to the programmer.  In a
future version, we plan to display error messages in terms of the original
hyper-program."

This module implements that future version.  Textual-form generation
produces a :class:`SourceMap` recording, for every span of generated text,
the hyper-program position it came from (verbatim text) or the link it
stands for (spliced retrieval expressions).  A compiler or run-time
diagnostic located in the textual form is translated back to a
hyper-program (line, column) — or to "inside link [label]" when it falls
within a link's generated expression.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Optional

from repro.core.hyperprogram import HyperProgram


@dataclass(frozen=True)
class Span:
    """One run of generated text.

    ``textual_start`` is the absolute offset in the generated source.  For
    verbatim spans, ``hyper_start`` is the matching offset in the
    hyper-program text; for link spans, ``link_index`` identifies the
    hyper-link whose denotation occupies the span.
    """

    textual_start: int
    length: int
    hyper_start: int = -1
    link_index: int = -1

    @property
    def is_link(self) -> bool:
        return self.link_index >= 0


@dataclass(frozen=True)
class HyperLocation:
    """A diagnostic location expressed in hyper-program terms."""

    line: int                     # 0-based line in the hyper-program
    column: int                   # 0-based column
    link_label: Optional[str]     # set when the location is inside a link

    def describe(self) -> str:
        if self.link_label is not None:
            return (f"inside the hyper-link [{self.link_label}] "
                    f"at line {self.line + 1}, column {self.column + 1}")
        return f"line {self.line + 1}, column {self.column + 1}"


class SourceMap:
    """Spans of one generated textual form, ordered by textual offset."""

    def __init__(self, program: HyperProgram, header_length: int):
        self._program = program
        self._header_length = header_length
        self._spans: list[Span] = []
        self._starts: list[int] = []

    @property
    def program(self) -> HyperProgram:
        return self._program

    def add_verbatim(self, textual_start: int, hyper_start: int,
                     length: int) -> None:
        if length > 0:
            self._push(Span(textual_start, length, hyper_start=hyper_start))

    def add_link(self, textual_start: int, length: int,
                 link_index: int) -> None:
        if length > 0:
            self._push(Span(textual_start, length, link_index=link_index))

    def _push(self, span: Span) -> None:
        self._spans.append(span)
        self._starts.append(span.textual_start)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def span_at(self, textual_offset: int) -> Optional[Span]:
        index = bisect.bisect_right(self._starts, textual_offset) - 1
        if index < 0:
            return None
        span = self._spans[index]
        if textual_offset < span.textual_start + span.length:
            return span
        return span  # offsets in gaps resolve to the preceding span

    def hyper_location(self, textual_line: int,
                       textual_column: int,
                       textual_source: str) -> HyperLocation:
        """Translate a 1-based (line, column) in the generated source into
        hyper-program terms."""
        lines = textual_source.splitlines(keepends=True)
        offset = sum(len(line) for line in lines[:textual_line - 1])
        offset += max(0, textual_column - 1)
        span = self.span_at(offset)
        if span is None or offset < self._header_length:
            return HyperLocation(0, 0, None)
        if span.is_link:
            label = self._program.the_links[span.link_index].label
            hyper_offset = self._program.the_links[span.link_index] \
                .string_pos
            line, column = self._line_col(hyper_offset)
            return HyperLocation(line, column, label)
        hyper_offset = span.hyper_start + (offset - span.textual_start)
        line, column = self._line_col(hyper_offset)
        return HyperLocation(line, column, None)

    def _line_col(self, hyper_offset: int) -> tuple[int, int]:
        text = self._program.the_text[:hyper_offset]
        line = text.count("\n")
        column = hyper_offset - (text.rfind("\n") + 1)
        return line, column


def describe_syntax_error(error: SyntaxError, source_map: SourceMap,
                          textual_source: str) -> str:
    """A compiler diagnostic re-expressed in hyper-program terms."""
    line = error.lineno or 1
    column = error.offset or 1
    location = source_map.hyper_location(line, column, textual_source)
    return f"{error.msg} at {location.describe()}"
