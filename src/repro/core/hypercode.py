"""The hyper-code abstraction (paper Section 6).

"The hyper-code abstraction allows a single program representation form,
the hyper-program, to be presented to the programmer at all stages of the
software development process. ... during debugging, when a run time error
occurs or when browsing existing programs, the programmer is presented
with, and only sees, the hyper-code representation."

:class:`HyperCodeSession` runs compiled hyper-programs and, when a
run-time error escapes, locates the failing line *in the original
hyper-program* through the generation source map — the programmer never
sees the textual form, the compiler output, or any other artefact of how
the program is stored and executed.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.core.compiler import DynamicCompiler
from repro.core.errormap import HyperLocation, SourceMap
from repro.core.hyperprogram import HyperProgram
from repro.errors import HyperProgramError


@dataclass
class HyperCodeError(HyperProgramError, Exception):
    """A run-time failure located in the hyper-program."""

    original: BaseException
    location: Optional[HyperLocation]
    program: HyperProgram

    def __str__(self) -> str:
        where = (self.location.describe() if self.location is not None
                 else "an unknown position")
        return (f"{type(self.original).__name__}: {self.original} — "
                f"at {where} of hyper-program "
                f"{self.program.class_name or '(anonymous)'}")

    def annotated_render(self, marker: str = "  <-- error here") -> str:
        """The hyper-program rendered with the failing line marked."""
        rendered = self.program.render().splitlines()
        if self.location is not None and \
                0 <= self.location.line < len(rendered):
            rendered[self.location.line] += marker
        return "\n".join(rendered)


class HyperCodeSession:
    """Compile-and-run with hyper-code-only error presentation."""

    def __init__(self) -> None:
        self._maps: dict[int, tuple[HyperProgram, SourceMap, str]] = {}

    def compile(self, program: HyperProgram) -> type:
        """Compile a hyper-program, retaining its source map for run-time
        error translation."""
        compiled = DynamicCompiler.compile_hyper_program(program)
        source_map = DynamicCompiler.last_source_map
        textual = DynamicCompiler.generate_textual_form(program)
        self._maps[id(compiled)] = (program, source_map, textual)
        return compiled

    def run(self, compiled: type,
            args: Sequence[str] | None = None) -> Any:
        """Run ``main``; a run-time error surfaces as
        :class:`HyperCodeError` located in the hyper-program."""
        try:
            return DynamicCompiler.run_main(compiled, args)
        except Exception as error:
            translated = self._translate(compiled, error)
            if translated is not None:
                raise translated from error
            raise

    def compile_and_run(self, program: HyperProgram,
                        args: Sequence[str] | None = None) -> Any:
        return self.run(self.compile(program), args)

    def _translate(self, compiled: type,
                   error: BaseException) -> Optional[HyperCodeError]:
        entry = self._maps.get(id(compiled))
        if entry is None:
            return None
        program, source_map, textual = entry
        location = None
        load_name = getattr(compiled, "__loaded_by__", None) or \
            compiled.__name__
        expected_file = f"<{load_name}>"
        for frame in reversed(traceback.extract_tb(error.__traceback__)):
            if frame.filename == expected_file and source_map is not None:
                location = source_map.hyper_location(frame.lineno or 1, 1,
                                                     textual)
                break
        return HyperCodeError(error, location, program)
