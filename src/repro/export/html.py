"""HTML export of hyper-programs — the paper's Section 6 future work.

"It is, however, possible to translate each hyper-program into HTML,
representing the hyper-links as URLs.  This was done to publish the
Napier88 compiler source, which is itself a hyper-program, and it is our
intention to do the same for Java."

Each hyper-program becomes one HTML page: the text verbatim (in ``pre``),
with every link rendered as an anchor.  Link URLs address a store-object
namespace — ``store://<oid>`` for persistent objects and
``entity://<description>`` for special links — so a published page keeps
a stable name for every linked entity.
"""

from __future__ import annotations

import html
from typing import TYPE_CHECKING

from repro.core.hyperlink import (
    ArrayElementLocation,
    ClassRef,
    ConstructorRef,
    FieldLocation,
    FieldRef,
    HyperLinkHP,
    MethodRef,
)
from repro.core.hyperprogram import HyperProgram

if TYPE_CHECKING:  # pragma: no cover
    from repro.store.objectstore import ObjectStore

_PAGE_TEMPLATE = """<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
pre {{ font-family: monospace; }}
a.hyperlink {{ background: #e8e8ff; text-decoration: none;
               border: 1px solid #88f; padding: 0 2px; }}
a.hyperlink.special {{ background: #e8ffe8; border-color: #4a4; }}
a.hyperlink.primitive {{ background: #ffe8ff; border-color: #a4a; }}
</style>
</head>
<body>
<h1>{title}</h1>
<pre>{body}</pre>
</body>
</html>
"""


def link_url(link: HyperLinkHP,
             store: "ObjectStore | None" = None) -> str:
    """The URL a hyper-link is published under."""
    obj = link.hyper_link_object
    if isinstance(obj, MethodRef):
        return f"entity://method/{obj.class_name}/{obj.method_name}"
    if isinstance(obj, FieldRef):
        return f"entity://field/{obj.class_name}/{obj.field_name}"
    if isinstance(obj, ConstructorRef):
        return f"entity://constructor/{obj.class_name}"
    if isinstance(obj, ClassRef):
        return f"entity://class/{obj.class_name}"
    if isinstance(obj, FieldLocation):
        holder = _object_url(obj.holder, store)
        return f"{holder}/{obj.field_name}"
    if isinstance(obj, ArrayElementLocation):
        holder = _object_url(obj.array, store)
        return f"{holder}/{obj.index}"
    if link.is_primitive:
        return f"entity://literal/{html.escape(repr(obj))}"
    return _object_url(obj, store)


def _object_url(obj: object, store: "ObjectStore | None") -> str:
    if store is not None:
        oid = store.oid_of(obj)
        if oid is not None:
            return f"store://{int(oid)}"
    return f"object://{type(obj).__name__}/{id(obj):x}"


def link_anchor(link: HyperLinkHP,
                store: "ObjectStore | None" = None) -> str:
    """The HTML anchor for one hyper-link."""
    classes = "hyperlink"
    if link.is_special:
        classes += " special"
    if link.is_primitive:
        classes += " primitive"
    url = link_url(link, store)
    label = html.escape(link.label)
    return f'<a class="{classes}" href="{url}">{label}</a>'


def export_html(program: HyperProgram,
                store: "ObjectStore | None" = None) -> str:
    """One hyper-program as a standalone HTML page."""
    parts: list[str] = []
    cursor = 0
    text = program.the_text
    for link in sorted(program.the_links, key=lambda item: item.string_pos):
        parts.append(html.escape(text[cursor:link.string_pos]))
        parts.append(link_anchor(link, store))
        cursor = link.string_pos
    parts.append(html.escape(text[cursor:]))
    title = html.escape(program.class_name or "hyper-program")
    return _PAGE_TEMPLATE.format(title=title, body="".join(parts))


def export_program_set(programs: dict[str, HyperProgram],
                       store: "ObjectStore | None" = None) -> dict[str, str]:
    """Publish a set of hyper-programs as pages, keyed by file name.

    An ``index.html`` linking every page is included — the shape of the
    Napier88 compiler-source publication the paper cites.
    """
    pages: dict[str, str] = {}
    index_items: list[str] = []
    for name, program in sorted(programs.items()):
        file_name = f"{name}.html"
        pages[file_name] = export_html(program, store)
        index_items.append(
            f'<li><a href="{file_name}">{html.escape(name)}</a> '
            f"({len(program.the_links)} links)</li>"
        )
    pages["index.html"] = _PAGE_TEMPLATE.format(
        title="Hyper-program index",
        body="<ul>\n" + "\n".join(index_items) + "\n</ul>",
    )
    return pages
