"""Publication of hyper-programs (paper Section 6)."""

from repro.export.html import export_html, export_program_set
from repro.export.printing import describe_link, print_form

__all__ = ["export_html", "export_program_set", "print_form",
           "describe_link"]
