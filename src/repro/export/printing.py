"""Printing hyper-programs (paper Section 6).

"The printing of hyper-programs and the transferring of hyper-programs
from one system to another is hindered by the presence of hyper-links."

HTML publication (:mod:`repro.export.html`) is the paper's answer for
transfer; for *printing*, this module renders a hyper-program as plain
text with each link shown as a numbered button and a footnote block
describing every linked entity — enough for a reader with no store access
to understand what the program is bound to.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.hyperlink import (
    ArrayElementLocation,
    ClassRef,
    ConstructorRef,
    FieldLocation,
    FieldRef,
    HyperLinkHP,
    MethodRef,
)
from repro.core.hyperprogram import HyperProgram

if TYPE_CHECKING:  # pragma: no cover
    from repro.store.objectstore import ObjectStore


def describe_link(link: HyperLinkHP,
                  store: "ObjectStore | None" = None) -> str:
    """A one-line, store-independent description of a linked entity."""
    obj = link.hyper_link_object
    if isinstance(obj, MethodRef):
        return f"static method {obj.class_name}.{obj.method_name}"
    if isinstance(obj, FieldRef):
        return f"static field {obj.class_name}.{obj.field_name}"
    if isinstance(obj, ConstructorRef):
        return f"constructor of {obj.class_name}"
    if isinstance(obj, ClassRef):
        return f"class {obj.class_name}"
    if isinstance(obj, FieldLocation):
        return (f"location {type(obj.holder).__name__}"
                f".{obj.field_name}{_oid_note(obj.holder, store)}")
    if isinstance(obj, ArrayElementLocation):
        return f"location [{obj.index}] of an array of {len(obj.array)}"
    if link.is_primitive:
        return f"literal {obj!r}"
    return f"{type(obj).__name__} instance{_oid_note(obj, store)}"


def _oid_note(obj: object, store: "ObjectStore | None") -> str:
    if store is not None:
        oid = store.oid_of(obj)
        if oid is not None:
            return f" (oid {int(oid)})"
    return ""


def print_form(program: HyperProgram,
               store: "ObjectStore | None" = None,
               width: int = 72) -> str:
    """The printable form: text with ``[n:label]`` buttons plus footnotes."""
    parts: list[str] = []
    cursor = 0
    footnotes: list[str] = []
    ordered = sorted(enumerate(program.the_links),
                     key=lambda item: item[1].string_pos)
    for number, (__, link) in enumerate(ordered, start=1):
        parts.append(program.the_text[cursor:link.string_pos])
        parts.append(f"[{number}:{link.label}]")
        footnotes.append(f"  [{number}] {describe_link(link, store)}")
        cursor = link.string_pos
    parts.append(program.the_text[cursor:])
    body = "".join(parts)
    header = f"=== {program.class_name or 'hyper-program'} ===".ljust(width)
    if not footnotes:
        return f"{header}\n{body}"
    rule = "-" * width
    return (f"{header}\n{body}\n{rule}\nlinked entities:\n"
            + "\n".join(footnotes) + "\n")
