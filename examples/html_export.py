"""Publishing hyper-programs as HTML (paper Section 6).

"It is, however, possible to translate each hyper-program into HTML,
representing the hyper-links as URLs.  This was done to publish the
Napier88 compiler source, which is itself a hyper-program."

Builds a small library of hyper-programs and publishes it as a linked set
of HTML pages, writing them to a temporary directory.

Run:  python examples/html_export.py
"""

import os
import shutil
import tempfile

from repro import (
    ClassRegistry,
    DynamicCompiler,
    HyperLinkHP,
    HyperProgram,
    LinkStore,
    ObjectStore,
    for_class,
    persistent,
)
from repro.export import export_program_set

registry = ClassRegistry()


@persistent(registry=registry)
class Person:
    name: str
    spouse: object

    def __init__(self, name):
        self.name = name
        self.spouse = None

    @staticmethod
    def marry(a, b):
        a.spouse = b
        b.spouse = a


def main():
    store_dir = tempfile.mkdtemp(prefix="hyper-export-store-")
    site_dir = tempfile.mkdtemp(prefix="hyper-export-site-")
    store = ObjectStore.open(store_dir, registry=registry)
    DynamicCompiler.install(LinkStore(store))

    vangelis, mary = Person("vangelis"), Person("mary")
    store.set_root("people", [vangelis, mary])

    marry_text = ("class MarryExample:\n"
                  "    @staticmethod\n"
                  "    def main(args):\n"
                  "        (, )\n")
    marry_program = HyperProgram(marry_text, class_name="MarryExample")
    call = marry_text.index("(, )")
    marry = for_class(Person).get_method("marry")
    marry_program.add_link(HyperLinkHP.to_static_method(
        marry, "Person.marry", call))
    marry_program.add_link(HyperLinkHP.to_object(vangelis, "vangelis",
                                                 call + 1))
    marry_program.add_link(HyperLinkHP.to_object(mary, "mary", call + 3))

    greet_text = ("class Greet:\n"
                  "    @staticmethod\n"
                  "    def main(args):\n"
                  "        return 'hello ' + .name\n")
    greet_program = HyperProgram(greet_text, class_name="Greet")
    greet_program.add_link(HyperLinkHP.to_object(
        mary, "mary", greet_text.index("+ .") + 2))

    store.set_root("programs", {"MarryExample": marry_program,
                                "Greet": greet_program})
    store.stabilize()  # objects get OIDs, so links publish as store:// URLs

    pages = export_program_set({"MarryExample": marry_program,
                                "Greet": greet_program}, store)
    for name, content in pages.items():
        with open(os.path.join(site_dir, name), "w",
                  encoding="utf-8") as fh:
            fh.write(content)
        print(f"wrote {name} ({len(content)} bytes)")

    marry_page = pages["MarryExample.html"]
    print("\nanchors in MarryExample.html:")
    for line in marry_page.splitlines():
        if 'class="hyperlink' in line:
            print(f"  {line.strip()[:100]}")

    print(f"\nsite written to {site_dir}")
    store.close()
    DynamicCompiler.uninstall()
    shutil.rmtree(store_dir)
    shutil.rmtree(site_dir)


if __name__ == "__main__":
    main()
