"""Quickstart: the paper's MarryExample, end to end.

Reproduces Figures 1-3 and 8 of "Hyper-Programming in Java": a
hyper-program whose source contains direct links to two persistent Person
objects and to the static method Person.marry, composed, translated to its
textual form, compiled with the standard compiler, executed, persisted,
and re-run from a fresh store session.

Run:  python examples/quickstart.py
"""

import shutil
import tempfile

from repro import (
    ClassRegistry,
    DynamicCompiler,
    HyperLinkHP,
    HyperProgram,
    LinkStore,
    for_class,
    open_store,
    persistent,
)

registry = ClassRegistry()


@persistent(registry=registry)
class Person:
    """The paper's Figure 3 class."""

    name: str
    spouse: object

    def __init__(self, name):
        self.name = name
        self.spouse = None

    @staticmethod
    def marry(a, b):
        a.spouse = b
        b.spouse = a


def compose_marry_example(vangelis, mary):
    """Figure 2: a hyper-program with one method link and two object
    links sitting in the otherwise-empty call parentheses."""
    text = ("class MarryExample:\n"
            "    @staticmethod\n"
            "    def main(args):\n"
            "        (, )\n")
    program = HyperProgram(text, class_name="MarryExample")
    call = text.index("(, )")
    marry = for_class(Person).get_method("marry")
    program.add_link(HyperLinkHP.to_static_method(marry, "Person.marry",
                                                  call))
    program.add_link(HyperLinkHP.to_object(vangelis, "vangelis", call + 1))
    program.add_link(HyperLinkHP.to_object(mary, "mary", call + 3))
    return program


def main():
    directory = tempfile.mkdtemp(prefix="hyper-quickstart-")
    # Backends are picked by URL: "file:<dir>" here, but "sqlite:<path>",
    # "memory:" or "sharded:4:sqlite:<dir>" open the same store API over
    # a different engine.
    store_url = f"file:{directory}"
    print(f"persistent store: {store_url}\n")

    # --- Session 1: compose, compile, run --------------------------------
    store = open_store(store_url, registry=registry)
    DynamicCompiler.install(LinkStore(store))

    vangelis, mary = Person("vangelis"), Person("mary")
    store.set_root("people", [vangelis, mary])

    program = compose_marry_example(vangelis, mary)
    print("hyper-program (links shown as [buttons], Figure 2):")
    print(program.render())

    print("\ntextual form (Figure 8):")
    print(DynamicCompiler.generate_textual_form(program))

    compiled = DynamicCompiler.compile_hyper_program(program)
    DynamicCompiler.run_main(compiled)
    print(f"\nafter Go: vangelis.spouse is mary -> "
          f"{vangelis.spouse is mary}")

    # The hyper-program is itself a persistent object (Figure 1).
    store.set_root("programs", {"marry": program})
    store.stabilize()
    store.close()

    # --- Session 2: reopen, the links still resolve ----------------------
    store = open_store(store_url, registry=registry)
    DynamicCompiler.install(LinkStore(store))
    program = store.get_root("programs")["marry"]
    vangelis, mary = store.get_root("people")
    vangelis.spouse = mary.spouse = None

    compiled = DynamicCompiler.compile_hyper_program(program)
    DynamicCompiler.run_main(compiled)
    print(f"after reopen + re-run: mary.spouse is vangelis -> "
          f"{mary.spouse is vangelis}")
    print(f"referential integrity: "
          f"{store.verify_referential_integrity() == []}")
    store.close()
    DynamicCompiler.uninstall()
    shutil.rmtree(directory)


if __name__ == "__main__":
    main()
