"""A banking system built with hyper-programming.

Demonstrates the paper's Section 7 argument that composition-time linking
does not sacrifice delayed binding: the interest-posting program links to
the *location* holding the current rate policy, so changing the policy
object in the store changes the behaviour of the already-compiled program
— "when the program is run the object that is currently contained in the
location will be the one that is used".

Also contrasts a value link (bound at composition) with the textual
baseline (bound by name at run time).

Run:  python examples/bank.py
"""

import shutil
import tempfile

from repro import (
    ClassRegistry,
    DynamicCompiler,
    HyperLinkHP,
    HyperProgram,
    LinkStore,
    ObjectStore,
    persistent,
)
from repro.core.textual import PersistentLookup, TextualBaseline

registry = ClassRegistry()


@persistent(registry=registry)
class Account:
    owner: str
    balance_cents: int

    def __init__(self, owner, balance_cents):
        self.owner = owner
        self.balance_cents = balance_cents


@persistent(registry=registry)
class RatePolicy:
    name: str
    basis_points: int

    def __init__(self, name, basis_points):
        self.name = name
        self.basis_points = basis_points


@persistent(registry=registry)
class Bank:
    accounts: list
    policy: object

    def __init__(self):
        self.accounts = []
        self.policy = RatePolicy("standard", 150)


def compose_interest_poster(bank):
    """A hyper-program linking to the bank (value) and to the *location*
    bank.policy (delayed binding)."""
    text = ("class PostInterest:\n"
            "    @staticmethod\n"
            "    def main(args):\n"
            "        bank = \n"
            "        policy = \n"
            "        for account in bank.accounts:\n"
            "            account.balance_cents += (\n"
            "                account.balance_cents * policy.basis_points\n"
            "                // 10000)\n"
            "        return policy.name\n")
    program = HyperProgram(text, class_name="PostInterest")
    bank_pos = text.index("bank = ") + len("bank = ")
    policy_pos = text.index("policy = ") + len("policy = ")
    program.add_link(HyperLinkHP.to_object(bank, "the bank", bank_pos))
    program.add_link(HyperLinkHP.to_field_location(
        bank, "policy", "bank.policy", policy_pos))
    return program


def main():
    directory = tempfile.mkdtemp(prefix="hyper-bank-")
    store = ObjectStore.open(directory, registry=registry)
    DynamicCompiler.install(LinkStore(store))
    PersistentLookup.install(store)

    bank = Bank()
    bank.accounts.append(Account("zoe", 100_000))
    bank.accounts.append(Account("sam", 250_000))
    store.set_root("bank", bank)
    store.stabilize()

    program = compose_interest_poster(bank)
    print("hyper-program:")
    print(program.render())
    poster = DynamicCompiler.compile_hyper_program(program)

    used = DynamicCompiler.run_main(poster)
    print(f"\nposted interest under policy {used!r}: "
          f"{[(a.owner, a.balance_cents) for a in bank.accounts]}")

    # Delayed binding: swap the policy *object in the location*; the
    # compiled program picks up the new one without recompilation.
    bank.policy = RatePolicy("promotional", 500)
    used = DynamicCompiler.run_main(poster)
    print(f"posted interest under policy {used!r}: "
          f"{[(a.owner, a.balance_cents) for a in bank.accounts]}")

    # The textual baseline does the same job with run-time name lookup —
    # longer, and any typo in the path fails only when executed.
    expression = TextualBaseline.expression("bank", "policy.basis_points")
    print(f"\ntextual baseline for the same access: {expression}")
    print(f"evaluates to: {eval(expression, TextualBaseline.bindings())}")

    store.stabilize()
    print(f"store objects: {store.statistics().object_count}, "
          f"integrity ok: {store.verify_referential_integrity() == []}")
    store.close()
    DynamicCompiler.uninstall()
    shutil.rmtree(directory)


if __name__ == "__main__":
    main()
