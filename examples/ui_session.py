"""A scripted Figure 12 session: editor + browser + gestures, rendered.

Walks the exact interaction sequence of Section 5.4: open an editor and a
browser, discover persistent objects with the browser, insert links with
the right mouse button (value and location halves), press a link button to
display its entity, then Display Class and Go.

Run:  python examples/ui_session.py
"""

import shutil
import tempfile

from repro import (
    ClassRegistry,
    DynamicCompiler,
    LinkStore,
    ObjectStore,
    persistent,
)
from repro.ui import ButtonPress, HyperProgrammingUI, LinkPress, RightClick

registry = ClassRegistry()


@persistent(registry=registry)
class Person:
    name: str
    spouse: object

    def __init__(self, name):
        self.name = name
        self.spouse = None

    @staticmethod
    def marry(a, b):
        a.spouse = b
        b.spouse = a


def main():
    directory = tempfile.mkdtemp(prefix="hyper-ui-")
    store = ObjectStore.open(directory, registry=registry)
    DynamicCompiler.install(LinkStore(store))

    vangelis, mary = Person("vangelis"), Person("mary")
    store.set_root("people", [vangelis, mary])

    ui = HyperProgrammingUI(store)
    browser_window = ui.open_browser()
    editor_window = ui.open_editor("MarryExample")
    editor = editor_window.editor

    # Type the program skeleton.
    editor.type_text("class MarryExample:\n"
                     "    @staticmethod\n"
                     "    def main(args):\n"
                     "        ")

    # Browse the Person class; right-click its marry method (Figure 12's
    # right panel) to insert a link into the front-most editor.
    class_panel = browser_window.browser.open_class(Person)
    ui.right_click(RightClick(browser_window.id, class_panel.id,
                              "Person.marry"))
    editor.type_text("(")

    # Browse each person (left panel) and link them as values.
    for person, suffix in ((vangelis, ", "), (mary, ")\n")):
        panel = browser_window.browser.open_object(person)
        ui.right_click(RightClick(browser_window.id, panel.id,
                                  panel.entities()[0].label))
        editor.type_text(suffix)

    print("=== screen (Figure 12) ===")
    print(ui.render())

    # Press the vangelis link button: the entity appears in the browser.
    ui.press_link(LinkPress(editor_window.id, 3, 1))
    print("\nafter pressing a link button, the browser shows:")
    print(browser_window.browser.front_panel.render())

    # Sharing/identity view of the people root.
    people_panel = browser_window.browser.open_root("people")
    print("\nsharing report:")
    for line in browser_window.browser.sharing(people_panel.id):
        print(f"  {line}")

    # Display Class, then Go.
    ui.press_button(ButtonPress(editor_window.id, "Display Class"))
    print("\nDisplay Class opened:",
          browser_window.browser.front_panel.title())
    ui.press_button(ButtonPress(editor_window.id, "Go"))
    print(f"Go pressed: vangelis.spouse is mary -> "
          f"{vangelis.spouse is mary}")

    store.stabilize()
    store.close()
    DynamicCompiler.uninstall()
    shutil.rmtree(directory)


if __name__ == "__main__":
    main()
