"""The paper's Figure 2, verbatim: a *Java* hyper-program, executed.

The hyper-program's text is the Java subset; links sit at positions inside
it exactly as in the storage form.  Compilation goes Java → hole-marked
Java → Python (repro.javagrammar.codegen) → the standard compiler, with
every hole replaced by the same persistent-store retrieval expression the
Python textual form uses.

Run:  python examples/java_marry.py
"""

import shutil
import tempfile

from repro import (
    ClassRegistry,
    DynamicCompiler,
    HyperLinkHP,
    HyperProgram,
    LinkStore,
    ObjectStore,
    for_class,
    persistent,
)
from repro.core.javaform import hole_marked_java, java_to_python_source

registry = ClassRegistry()


@persistent(registry=registry)
class Person:
    name: str
    spouse: object

    def __init__(self, name):
        self.name = name
        self.spouse = None

    @staticmethod
    def marry(a, b):
        a.spouse = b
        b.spouse = a


FIGURE2 = """public class MarryExample {
  public static void main(String[] args) {
    (, );
  }
}
"""


def main():
    directory = tempfile.mkdtemp(prefix="hyper-java-")
    store = ObjectStore.open(directory, registry=registry)
    link_store = LinkStore(store)
    DynamicCompiler.install(link_store)

    vangelis, mary = Person("vangelis"), Person("mary")
    store.set_root("people", [vangelis, mary])

    program = HyperProgram(FIGURE2, class_name="MarryExample")
    call = FIGURE2.index("(, )")
    marry = for_class(Person).get_method("marry")
    program.add_link(HyperLinkHP.to_static_method(marry, "Person.marry",
                                                  call))
    program.add_link(HyperLinkHP.to_object(vangelis, "vangelis", call + 1))
    program.add_link(HyperLinkHP.to_object(mary, "mary", call + 3))

    print("Java hyper-program (Figure 2):")
    print(program.render())
    print("hole-marked Java silhouette:")
    print(hole_marked_java(program))
    source, __ = java_to_python_source(program, 0, link_store.password,
                                       registry)
    print("transpiled Python:")
    print(source)

    compiled = DynamicCompiler.compile_java_hyper_program(program)
    DynamicCompiler.run_main(compiled, [])
    print(f"after Go: vangelis.spouse is mary -> {vangelis.spouse is mary}")

    store.stabilize()
    store.close()
    DynamicCompiler.uninstall()
    shutil.rmtree(directory)


if __name__ == "__main__":
    main()
