"""Table 1, executable: where may each hyper-link kind legally appear?

The paper's Section 2 defines the denotable hyper-links of Java and pairs
each with a grammar production (Table 1), noting the pairing is "necessary
but not sufficient".  This example regenerates the table from the
Java-subset grammar, then demonstrates the context-sensitive half on
hole-bearing Java programs — including the two rules the paper calls out
(constructors only after ``new``; packages never linkable).

Run:  python examples/java_table1.py
"""

from repro.javagrammar.productions import check_program, format_table1

EXAMPLES = {
    "MarryExample (Figure 2)": """
public class MarryExample {
  public static void main(String[] args) {
    ⟦(static) method⟧(⟦object⟧, ⟦object⟧);
  }
}
""",
    "every kind somewhere legal": """
class Everything {
  ⟦class⟧ a;
  ⟦interface⟧ b;
  ⟦primitive type⟧ c;
  ⟦array type⟧ d;
  void m(⟦class⟧ p) {
    ⟦primitive type⟧ x = ⟦primitive value⟧;
    Object o = new ⟦constructor⟧(⟦array⟧, ⟦array element⟧);
    ⟦(static) field⟧ = ⟦(static) method⟧(o);
  }
}
""",
    "constructor outside new (illegal)": """
class C { void m() { ⟦constructor⟧(1); } }
""",
    "package position (illegal)": """
package ⟦class⟧;
class C {}
""",
    "type hole in value position (illegal)": """
class C { void m() { int x = 1 + ⟦primitive type⟧; } }
""",
}


def main():
    print("Table 1, regenerated from the grammar:\n")
    print(format_table1())
    print("\nContext-sensitive checking of hole-bearing programs:\n")
    for title, source in EXAMPLES.items():
        diagnostics = check_program(source)
        verdict = "LEGAL" if not diagnostics else "ILLEGAL"
        print(f"  {title}: {verdict}")
        for diagnostic in diagnostics:
            print(f"      {diagnostic}")


if __name__ == "__main__":
    main()
