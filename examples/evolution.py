"""Live system evolution through linguistic reflection (paper Section 7).

"it is possible to write an evolution program that updates the source,
re-compiles it and reconstructs the persistent data using linguistic
reflection.  Indeed, in a transactional system it is possible to do this
in a separate transaction while the system is live."

This example stores a population of Employee objects whose class was
created inside the system (so its hyper-program source is archived), then
evolves the class twice — adding a field and changing a representation —
with instances reconstructed transactionally each time.

Run:  python examples/evolution.py
"""

import shutil
import tempfile

from repro import (
    ClassRegistry,
    DynamicCompiler,
    HyperProgram,
    LinkStore,
    ObjectStore,
)
from repro.evolve import EvolutionEngine, EvolutionStep

EMPLOYEE_V1 = (
    "class Employee:\n"
    "    name: str\n"
    "    salary: int\n"
    "    def __init__(self, name, salary):\n"
    "        self.name = name\n"
    "        self.salary = salary\n"
)


def main():
    directory = tempfile.mkdtemp(prefix="hyper-evolve-")
    registry = ClassRegistry()
    store = ObjectStore.open(directory, registry=registry)
    DynamicCompiler.install(LinkStore(store))

    # Create the class *inside the system* so its source is archived.
    program = HyperProgram(EMPLOYEE_V1, [], "Employee")
    employee_cls = DynamicCompiler.compile_hyper_program(program)
    employee_cls.__module__ = "hr"
    employee_cls.__qualname__ = "Employee"
    registry.register(employee_cls)

    engine = EvolutionEngine(store)
    engine.archive_source("hr.Employee", program)

    staff = [employee_cls("ada", 90_000), employee_cls("grace", 95_000),
             employee_cls("edsger", 88_000)]
    store.set_root("staff", staff)
    store.stabilize()
    print(f"v1 staff: {[(e.name, e.salary) for e in staff]}")

    # --- Evolution 1: add a grade field -----------------------------------
    add_grade = EvolutionStep(
        class_name="hr.Employee",
        rewrite=lambda src: src
            .replace("salary: int", "salary: int\n    grade: str")
            .replace("self.salary = salary",
                     "self.salary = salary\n        self.grade = 'L1'"),
        convert=lambda old: {**old, "grade": "L1"},
    )
    engine.run(add_grade)
    staff = store.get_root("staff")
    print(f"v2 staff (+grade, {engine.last_reconstructed} reconstructed): "
          f"{[(e.name, e.salary, e.grade) for e in staff]}")

    # --- Evolution 2: salaries become cents --------------------------------
    to_cents = EvolutionStep(
        class_name="hr.Employee",
        rewrite=lambda src: src
            .replace("salary: int", "salary_cents: int")
            .replace("self.salary = salary",
                     "self.salary_cents = salary * 100"),
        convert=lambda old: {"name": old["name"],
                             "salary_cents": old["salary"] * 100,
                             "grade": old["grade"]},
    )
    engine.run(to_cents)
    staff = store.get_root("staff")
    print(f"v3 staff (cents): "
          f"{[(e.name, e.salary_cents, e.grade) for e in staff]}")

    # --- A failed evolution rolls back --------------------------------------
    broken = EvolutionStep(
        class_name="hr.Employee",
        rewrite=lambda src: "class Employee(:  # broken\n",
        convert=lambda old: old,
    )
    try:
        engine.run(broken)
    except Exception as error:
        print(f"\nbroken evolution rejected: {type(error).__name__}")
    staff = store.get_root("staff")
    print(f"state preserved after rollback: "
          f"{[(e.name, e.salary_cents) for e in staff]}")

    store.stabilize()
    store.close()
    DynamicCompiler.uninstall()
    shutil.rmtree(directory)


if __name__ == "__main__":
    main()
