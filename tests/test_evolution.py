"""Schema evolution through linguistic reflection (Section 7)."""

import pytest

from repro.core.compiler import DynamicCompiler
from repro.core.hyperprogram import HyperProgram
from repro.errors import EvolutionError
from repro.evolve.evolution import (
    EvolutionEngine,
    EvolutionStep,
    SOURCE_ARCHIVE_ROOT,
)

ACCOUNT_SOURCE = (
    "class Account:\n"
    "    owner: str\n"
    "    balance: int\n"
    "    def __init__(self, owner, balance):\n"
    "        self.owner = owner\n"
    "        self.balance = balance\n"
)


@pytest.fixture
def banked(store, link_store):
    """A store holding Account instances created from archived source."""
    program = HyperProgram(ACCOUNT_SOURCE, [], "Account")
    account_cls = DynamicCompiler.compile_hyper_program(program)
    account_cls.__module__ = "bank"
    account_cls.__qualname__ = "Account"
    store.registry.register(account_cls)
    engine = EvolutionEngine(store)
    engine.archive_source("bank.Account", program)
    accounts = [account_cls("zoe", 100), account_cls("sam", 250)]
    store.set_root("accounts", accounts)
    store.stabilize()
    return engine, account_cls


def cents_step():
    return EvolutionStep(
        class_name="bank.Account",
        rewrite=lambda src: src
            .replace("balance: int", "balance_cents: int")
            .replace("self.balance = balance",
                     "self.balance_cents = balance * 100"),
        convert=lambda old: {"owner": old["owner"],
                             "balance_cents": old["balance"] * 100},
    )


class TestSourceArchive:
    def test_archive_and_fetch(self, store, link_store):
        engine = EvolutionEngine(store)
        program = HyperProgram("class X:\n    pass\n", [], "X")
        engine.archive_source("m.X", program)
        assert engine.source_of("m.X") is program
        assert "m.X" in engine.archived_classes()

    def test_unarchived_class_cannot_evolve(self, store, link_store):
        engine = EvolutionEngine(store)
        with pytest.raises(EvolutionError) as excinfo:
            engine.source_of("outside.Class")
        assert "footnote 2" in str(excinfo.value)

    def test_archive_root_created(self, store, link_store):
        EvolutionEngine(store)
        assert store.has_root(SOURCE_ARCHIVE_ROOT)


class TestEvolutionRun:
    def test_instances_reconstructed(self, store, banked):
        engine, __ = banked
        evolved = engine.run(cents_step())
        accounts = store.get_root("accounts")
        assert all(type(account) is evolved for account in accounts)
        assert [account.balance_cents for account in accounts] == \
            [10_000, 25_000]
        assert engine.last_reconstructed == 2

    def test_old_field_gone_after_evolution(self, store, banked):
        engine, __ = banked
        engine.run(cents_step())
        account = store.get_root("accounts")[0]
        assert not hasattr(account, "balance")

    def test_evolved_state_is_durable(self, store, banked, registry,
                                      tmp_path):
        engine, __ = banked
        engine.run(cents_step())
        store.stabilize()
        store.evict_all()
        assert store.get_root("accounts")[0].balance_cents == 10_000

    def test_new_instances_use_new_schema(self, store, banked):
        engine, __ = banked
        evolved = engine.run(cents_step())
        fresh = evolved("new", 5)
        assert fresh.balance_cents == 500

    def test_archived_source_updated(self, store, banked):
        engine, __ = banked
        engine.run(cents_step())
        assert "balance_cents" in engine.source_of("bank.Account").the_text

    def test_registry_binding_superseded(self, store, banked):
        engine, old_cls = banked
        evolved = engine.run(cents_step())
        assert store.registry.entry_for_name("bank.Account").cls is evolved
        assert not store.registry.is_registered(old_cls)


class TestEvolutionFailure:
    def test_broken_rewrite_rolls_back(self, store, banked):
        engine, __ = banked
        bad_step = EvolutionStep(
            class_name="bank.Account",
            rewrite=lambda src: "class Account(:\n    broken\n",
            convert=lambda old: old,
        )
        with pytest.raises(EvolutionError):
            engine.run(bad_step)
        # The store still serves the old state.
        accounts = store.get_root("accounts")
        assert accounts[0].balance == 100

    def test_broken_converter_rolls_back(self, store, banked):
        engine, __ = banked
        bad_step = EvolutionStep(
            class_name="bank.Account",
            rewrite=cents_step().rewrite,
            convert=lambda old: (_ for _ in ()).throw(KeyError("nope")),
        )
        with pytest.raises(EvolutionError):
            engine.run(bad_step)

    def test_sequential_evolutions(self, store, banked):
        """Two evolution steps in a row, each converting the previous
        schema."""
        engine, __ = banked
        engine.run(cents_step())
        rename_step = EvolutionStep(
            class_name="bank.Account",
            rewrite=lambda src: src.replace("owner: str", "holder: str")
                                    .replace("self.owner = owner",
                                             "self.holder = owner"),
            convert=lambda old: {"holder": old["owner"],
                                 "balance_cents": old["balance_cents"]},
        )
        engine.run(rename_step)
        account = store.get_root("accounts")[0]
        assert account.holder == "zoe"
        assert account.balance_cents == 10_000
