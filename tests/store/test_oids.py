"""OID allocation: monotonic, never reused, recovery-safe."""

import pytest

from repro.store.oids import FIRST_OID, NULL_OID, OidAllocator


class TestAllocation:
    def test_first_oid_is_one(self):
        assert OidAllocator().allocate() == FIRST_OID == 1

    def test_null_oid_is_zero_and_never_allocated(self):
        allocator = OidAllocator()
        issued = {allocator.allocate() for _ in range(100)}
        assert NULL_OID == 0
        assert NULL_OID not in issued

    def test_allocation_is_strictly_monotonic(self):
        allocator = OidAllocator()
        issued = [allocator.allocate() for _ in range(50)]
        assert issued == sorted(issued)
        assert len(set(issued)) == 50

    def test_next_oid_previews_without_consuming(self):
        allocator = OidAllocator()
        preview = allocator.next_oid
        assert allocator.allocate() == preview

    def test_can_start_from_recovered_cursor(self):
        allocator = OidAllocator(next_oid=42)
        assert allocator.allocate() == 42

    def test_rejects_cursor_below_first(self):
        with pytest.raises(ValueError):
            OidAllocator(next_oid=0)


class TestAdvanceTo:
    def test_advance_moves_forward(self):
        allocator = OidAllocator()
        allocator.advance_to(100)
        assert allocator.allocate() == 100

    def test_advance_never_moves_backwards(self):
        allocator = OidAllocator(next_oid=100)
        allocator.advance_to(10)
        assert allocator.allocate() == 100

    def test_advance_to_current_is_noop(self):
        allocator = OidAllocator(next_oid=7)
        allocator.advance_to(7)
        assert allocator.allocate() == 7
