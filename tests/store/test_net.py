"""The network serving subsystem: wire protocol units, server/client
integration, protocol-robustness injection (truncated frames, oversized
lengths, unknown opcodes, mid-request disconnects, server restarts) and
the ``routed:`` front-end's cross-server two-phase commit.

Most tests run an in-process :class:`StoreServer` (real sockets, no
subprocess cost); the restart tests re-bind a Unix socket path so the
client's bounded reconnect-retry is exercised against a genuinely new
server instance.  The store suite as a whole additionally runs against
a store-server *subprocess* through the ``remote`` backend param in
``tests/store/conftest.py``.
"""

from __future__ import annotations

import socket
import struct
import threading
import zlib

import pytest

from repro.errors import (
    RemoteDisconnectedError,
    UnknownOidError,
    WireProtocolError,
)
from repro.store.engine.base import WriteBatch
from repro.store.engine.factory import engine_from_url
from repro.store.net import RemoteEngine, RouterEngine, StoreServer
from repro.store.net import protocol as wire
from repro.store.objectstore import ObjectStore
from repro.store.oids import Oid

from tests.conftest import Person


@pytest.fixture
def server():
    with StoreServer("memory:") as srv:
        yield srv.start()


@pytest.fixture
def client(server):
    engine = RemoteEngine(server.endpoint, op_timeout=30)
    yield engine
    engine.close()


def raw_connection(server) -> socket.socket:
    host, _, port = server.endpoint.rpartition(":")
    sock = socket.create_connection((host, int(port)), timeout=10)
    return sock


# ---------------------------------------------------------------------------
# Wire format units
# ---------------------------------------------------------------------------

class TestFraming:
    def _pair(self, max_frame=wire.MAX_FRAME_BYTES):
        left, right = socket.socketpair()
        return (wire.FrameStream(left, max_frame),
                wire.FrameStream(right, max_frame))

    def test_roundtrip(self):
        a, b = self._pair()
        a.send_message(b"\x01hello")
        assert b.recv_message() == b"\x01hello"
        b.send_message(b"\x02" + bytes(100000))
        assert a.recv_message() == b"\x02" + bytes(100000)
        a.close(), b.close()

    def test_several_frames_in_one_buffer(self):
        a, b = self._pair()
        a.send_raw(wire.frame_message(b"\x01one") +
                   wire.frame_message(b"\x02two"))
        assert b.recv_message() == b"\x01one"
        assert b.recv_message() == b"\x02two"
        a.close(), b.close()

    def test_truncated_frame_reports_disconnect(self):
        a, b = self._pair()
        frame = wire.frame_message(b"\x01payload")
        a.send_raw(frame[:len(frame) - 3])
        a.close()
        with pytest.raises(RemoteDisconnectedError):
            b.recv_message()
        b.close()

    def test_oversized_length_rejected_before_allocation(self):
        a, b = self._pair(max_frame=1024)
        a.send_raw(wire.frame_message(bytes(2048)))
        with pytest.raises(WireProtocolError, match="exceeds"):
            b.recv_message()
        a.close(), b.close()

    def test_crc_corruption_detected(self):
        a, b = self._pair()
        frame = bytearray(wire.frame_message(b"\x01payload"))
        frame[-1] ^= 0xFF
        a.send_raw(bytes(frame))
        with pytest.raises(WireProtocolError, match="CRC"):
            b.recv_message()
        a.close(), b.close()

    def test_unterminated_length_prefix_rejected(self):
        a, b = self._pair()
        a.send_raw(b"\xff" * 12)
        with pytest.raises(WireProtocolError, match="length prefix"):
            b.recv_message()
        a.close(), b.close()

    def test_empty_payload_rejected(self):
        a, b = self._pair()
        a.send_raw(b"\x00" + struct.pack("<I", zlib.crc32(b"")))
        with pytest.raises(WireProtocolError, match="empty"):
            b.recv_message()
        a.close(), b.close()

    def test_clean_eof_between_frames(self):
        a, b = self._pair()
        a.close()
        assert b.recv_message(eof_ok=True) is None
        b.close()


class TestBodyEncodings:
    def test_oids_roundtrip(self):
        oids = [Oid(0), Oid(1), Oid(300), Oid(2**40)]
        assert wire.unpack_oids(wire.pack_oids(oids))[0] == oids

    def test_records_roundtrip(self):
        records = {Oid(1): b"", Oid(2): b"x" * 5000, Oid(900): b"\x00\xff"}
        assert wire.unpack_records(wire.pack_records(records))[0] == records

    def test_records_overrun_rejected(self):
        body = bytearray(wire.pack_records({Oid(1): b"abcdef"}))
        with pytest.raises(WireProtocolError, match="overruns"):
            wire.unpack_records(bytes(body[:-3]))

    def test_roots_roundtrip(self):
        roots = {"people": Oid(4), "naïve-name": Oid(7), "": Oid(0)}
        assert wire.unpack_roots(wire.pack_roots(roots))[0] == roots

    def test_error_roundtrip(self):
        kind, message = wire.unpack_error(
            wire.pack_error(ValueError("bad thing: détails")))
        assert kind == "ValueError"
        assert message == "bad thing: détails"

    def test_stats_roundtrip(self):
        stats = {"requests": 3, "engine": "memory"}
        assert wire.unpack_stats(wire.pack_stats(stats)) == stats

    def test_malformed_stats_rejected(self):
        with pytest.raises(WireProtocolError):
            wire.unpack_stats(b"\xff{not json")


# ---------------------------------------------------------------------------
# Server/client integration
# ---------------------------------------------------------------------------

class TestServerOps:
    def test_not_found_maps_to_unknown_oid(self, client):
        with pytest.raises(UnknownOidError):
            client.read(Oid(404))
        assert not client.contains(Oid(404))

    def test_server_value_error_reraises_locally(self, client):
        with pytest.raises(ValueError, match="reserve count"):
            client.reserve_oids(0)

    def test_root_get_set_ops(self, client):
        assert client.roots() == {}
        client.set_roots({"a": Oid(1), "b": Oid(2)})
        assert client.roots() == {"a": Oid(1), "b": Oid(2)}
        client.set_roots({"a": Oid(1)})
        assert client.roots() == {"a": Oid(1)}

    def test_allocator_reserve_is_contiguous_and_exclusive(self, server):
        one = RemoteEngine(server.endpoint)
        two = RemoteEngine(server.endpoint)
        try:
            first = one.reserve_oids(100)
            second = two.reserve_oids(100)
            assert second == first + 100
            assert one.next_oid == first + 200
        finally:
            one.close()
            two.close()

    def test_apply_many_applies_in_order(self, client):
        client.apply_many([
            WriteBatch().write(Oid(1), b"old"),
            WriteBatch().write(Oid(1), b"new").write(Oid(2), b"b"),
            WriteBatch().delete(Oid(2)),
        ])
        assert client.read(Oid(1)) == b"new"
        assert not client.contains(Oid(2))
        assert client.batches_applied == 3

    def test_stats_surface(self, client):
        client.apply(WriteBatch().write(Oid(1), b"x"))
        stats = client.stats()
        assert stats["engine"] == "memory"
        assert stats["object_count"] == 1
        assert stats["requests"] >= 1
        assert stats["connections"] >= 1
        assert stats["pid"] > 0

    def test_fetch_many_pipelines_across_chunks(self, server):
        client = RemoteEngine(server.endpoint, fetch_chunk=16)
        try:
            batch = WriteBatch()
            expected = {}
            for index in range(1, 101):
                raw = f"record-{index}".encode()
                batch.write(Oid(index), raw)
                expected[Oid(index)] = raw
            client.apply(batch)
            # 100 oids over chunk=16 -> 7 pipelined request frames.
            assert client.fetch_many(list(expected)) == expected
        finally:
            client.close()

    def test_concurrent_clients(self, server, client):
        client.apply(WriteBatch().write(Oid(1), b"shared"))
        errors: list[BaseException] = []

        def reader() -> None:
            engine = RemoteEngine(server.endpoint)
            try:
                for _ in range(20):
                    assert engine.read(Oid(1)) == b"shared"
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)
            finally:
                engine.close()

        threads = [threading.Thread(target=reader) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

    def test_unix_socket_transport(self, tmp_path):
        path = tmp_path / "store.sock"
        with StoreServer("memory:", bind=f"unix:{path}") as srv:
            srv.start()
            engine = RemoteEngine(srv.endpoint)
            try:
                engine.apply(WriteBatch().write(Oid(5), b"via-unix"))
                assert engine.read(Oid(5)) == b"via-unix"
            finally:
                engine.close()
        assert not path.exists()  # socket file cleaned up on stop

    def test_store_stack_over_remote(self, server, registry):
        with ObjectStore.from_url(f"remote:{server.endpoint}",
                                  registry=registry) as store:
            alice, bob = Person("alice"), Person("bob")
            Person.marry(alice, bob)
            store.set_root("people", [alice, bob])
            store.stabilize()
        with ObjectStore.from_url(f"remote:{server.endpoint}",
                                  registry=registry) as store:
            people = store.get_root("people")
            assert people[0].spouse is people[1]
            assert store.verify_referential_integrity() == []


class TestProtocolRobustness:
    """The satellite injection matrix: every abuse leaves the server
    serving other (and future) connections."""

    def _assert_still_serving(self, server):
        probe = RemoteEngine(server.endpoint)
        try:
            probe.apply(WriteBatch().write(Oid(77), b"alive"))
            assert probe.read(Oid(77)) == b"alive"
        finally:
            probe.close()

    def test_unknown_opcode_gets_error_then_drop(self, server):
        sock = raw_connection(server)
        stream = wire.FrameStream(sock)
        stream.send_message(bytes([0x7F]) + b"junk")
        payload = stream.recv_message()
        assert payload[0] == wire.ST_ERROR
        kind, message = wire.unpack_error(payload[1:])
        assert kind == "WireProtocolError"
        assert "0x7F" in message
        # The connection is dropped after a protocol violation...
        with pytest.raises(RemoteDisconnectedError):
            stream.recv_message()
        stream.close()
        # ...but the server keeps serving everyone else.
        self._assert_still_serving(server)

    def test_truncated_frame_then_disconnect(self, server):
        sock = raw_connection(server)
        frame = wire.frame_message(bytes([wire.OP_STATS]))
        sock.sendall(frame[:2])  # length + part of the CRC, then vanish
        sock.close()
        self._assert_still_serving(server)

    def test_oversized_length_is_refused(self, tmp_path):
        with StoreServer("memory:", max_frame=4096) as srv:
            srv.start()
            sock = raw_connection(srv)
            stream = wire.FrameStream(sock)
            stream.send_message(bytes([wire.OP_APPLY]) + bytes(100_000))
            payload = stream.recv_message()
            assert payload[0] == wire.ST_ERROR
            assert "bound" in wire.unpack_error(payload[1:])[1]
            stream.close()
            self._assert_still_serving(srv)

    def test_corrupt_crc_is_refused(self, server):
        sock = raw_connection(server)
        frame = bytearray(wire.frame_message(bytes([wire.OP_STATS])))
        frame[-1] ^= 0xFF
        sock.sendall(bytes(frame))
        stream = wire.FrameStream(sock)
        payload = stream.recv_message()
        assert payload[0] == wire.ST_ERROR
        stream.close()
        self._assert_still_serving(server)

    def test_malformed_batch_body_reported(self, client, server):
        sock = raw_connection(server)
        stream = wire.FrameStream(sock)
        stream.send_message(bytes([wire.OP_APPLY]) + b"\xff\xff\xff")
        payload = stream.recv_message()
        assert payload[0] == wire.ST_ERROR
        assert wire.unpack_error(payload[1:])[0] == "WireProtocolError"
        stream.close()
        self._assert_still_serving(server)

    def test_hello_version_mismatch_refused(self, server):
        sock = raw_connection(server)
        stream = wire.FrameStream(sock)
        hello = bytearray([wire.OP_HELLO])
        hello.append(99)  # uvarint 99: an incompatible protocol version
        stream.send_message(bytes(hello))
        payload = stream.recv_message()
        assert payload[0] == wire.ST_ERROR
        assert "protocol" in wire.unpack_error(payload[1:])[1]
        stream.close()


class TestReconnectRetry:
    """Server restart and loss, against the bounded-retry contract."""

    def _serve(self, path, url) -> StoreServer:
        return StoreServer(url, bind=f"unix:{path}").start()

    def test_read_survives_server_restart(self, tmp_path):
        path = tmp_path / "srv.sock"
        url = f"file:{tmp_path / 'store'}"
        first = self._serve(path, url)
        engine = RemoteEngine(f"unix:{path}", read_retries=2)
        try:
            engine.apply(WriteBatch().write(Oid(1), b"durable"))
            assert engine.read(Oid(1)) == b"durable"
            first.stop()
            second = self._serve(path, url)  # same path, new process-alike
            try:
                # The held connection is dead; the idempotent read
                # reconnects transparently and sees the durable record.
                assert engine.read(Oid(1)) == b"durable"
                assert engine.fetch_many([Oid(1)]) == {Oid(1): b"durable"}
            finally:
                second.stop()
        finally:
            engine.close()

    def test_write_after_restart_is_not_retried(self, tmp_path):
        path = tmp_path / "srv.sock"
        url = f"file:{tmp_path / 'store'}"
        first = self._serve(path, url)
        engine = RemoteEngine(f"unix:{path}", read_retries=2)
        try:
            engine.apply(WriteBatch().write(Oid(1), b"one"))
            first.stop()
            second = self._serve(path, url)
            try:
                # The client cannot know whether a lost apply landed, so
                # it must surface the disconnect rather than retry.
                with pytest.raises(RemoteDisconnectedError):
                    engine.apply(WriteBatch().write(Oid(2), b"two"))
                # The next operation reconnects and proceeds normally.
                engine.apply(WriteBatch().write(Oid(3), b"three"))
                assert engine.read(Oid(3)) == b"three"
            finally:
                second.stop()
        finally:
            engine.close()

    def test_zero_retries_surface_disconnect(self, tmp_path):
        path = tmp_path / "srv.sock"
        first = self._serve(path, "memory:")
        engine = RemoteEngine(f"unix:{path}", read_retries=0)
        try:
            engine.apply(WriteBatch().write(Oid(1), b"x"))
            first.stop()
            second = self._serve(path, "memory:")
            try:
                with pytest.raises(RemoteDisconnectedError):
                    engine.contains(Oid(1))
            finally:
                second.stop()
        finally:
            engine.close()

    def test_server_gone_entirely(self, tmp_path):
        path = tmp_path / "srv.sock"
        server = self._serve(path, "memory:")
        engine = RemoteEngine(f"unix:{path}", read_retries=1)
        try:
            assert engine.roots() == {}
            server.stop()
            with pytest.raises(RemoteDisconnectedError):
                engine.roots()
        finally:
            engine.close()

    def test_connect_refused_raises_disconnect_error(self):
        engine = RemoteEngine("127.0.0.1:1", connect_timeout=0.5,
                              read_retries=0)
        try:
            with pytest.raises(RemoteDisconnectedError, match="connect"):
                engine.roots()
        finally:
            engine.close()


# ---------------------------------------------------------------------------
# The routed: front-end
# ---------------------------------------------------------------------------

class TestRouterEngine:
    @pytest.fixture
    def backends(self):
        with StoreServer("memory:") as one, StoreServer("memory:") as two:
            yield (one.start(), two.start())

    def test_routes_oids_across_backends(self, backends):
        one, two = backends
        router = RouterEngine([one.endpoint, two.endpoint])
        try:
            batch = WriteBatch()
            for index in range(1, 41):
                batch.write(Oid(index), f"rec{index}".encode())
            batch.set_roots({"root": Oid(1)})
            router.apply(batch)
            assert router.object_count == 40
            assert router.roots() == {"root": Oid(1)}
            # Each backend holds exactly its oid % 2 slice.
            probe_one = RemoteEngine(one.endpoint)
            probe_two = RemoteEngine(two.endpoint)
            try:
                assert all(int(oid) % 2 == 0 for oid in probe_one.oids()
                           if int(oid) < 2**62)
                assert all(int(oid) % 2 == 1 for oid in probe_two.oids())
            finally:
                probe_one.close()
                probe_two.close()
            got = router.fetch_many([Oid(index) for index in range(1, 41)])
            assert len(got) == 40
        finally:
            router.close()

    def test_routed_url_through_open_store(self, backends, registry):
        one, two = backends
        url = f"routed:{one.endpoint},{two.endpoint}"
        with ObjectStore.from_url(url, registry=registry) as store:
            people = [Person(f"p{i}") for i in range(10)]
            store.set_root("people", people)
            store.stabilize()
        with ObjectStore.from_url(url, registry=registry) as store:
            assert [p.name for p in store.get_root("people")] == \
                [f"p{i}" for i in range(10)]
            assert store.verify_referential_integrity() == []

    def test_topology_pinned_across_clients(self, backends):
        one, two = backends
        router = RouterEngine([one.endpoint, two.endpoint])
        router.apply(WriteBatch().write(Oid(1), b"x"))
        router.close()
        with pytest.raises(ValueError, match="2 shards"):
            RouterEngine([one.endpoint])

    def test_two_phase_recovery_across_servers(self, backends):
        """A front-end that dies between the commit marker and phase 3
        leaves its staging *on the servers*; the next front-end to open
        redoes the committed batch."""
        one, two = backends
        router = RouterEngine([one.endpoint, two.endpoint])
        batch = (WriteBatch().write(Oid(10), b"ten")
                 .write(Oid(11), b"eleven").set_roots({"r": Oid(10)}))
        subs = router.partition(batch)
        token = router.prepare(subs)
        router.write_commit_marker(token)
        # "Crash": drop the front-end without running phase 3.  Close
        # the sockets directly so no protocol action runs.
        for child in router.children:
            child.close()
        router._pool.shutdown(wait=True)
        # A new front-end recovers the committed batch from the marker.
        recovered = RouterEngine([one.endpoint, two.endpoint])
        try:
            assert recovered.read(Oid(10)) == b"ten"
            assert recovered.read(Oid(11)) == b"eleven"
            assert recovered.roots() == {"r": Oid(10)}
        finally:
            recovered.close()

    def test_prepared_but_unmarked_batch_discarded(self, backends):
        one, two = backends
        router = RouterEngine([one.endpoint, two.endpoint])
        batch = WriteBatch().write(Oid(20), b"x").write(Oid(21), b"y")
        router.prepare(router.partition(batch))
        for child in router.children:
            child.close()
        router._pool.shutdown(wait=True)
        recovered = RouterEngine([one.endpoint, two.endpoint])
        try:
            assert not recovered.contains(Oid(20))
            assert not recovered.contains(Oid(21))
        finally:
            recovered.close()


# ---------------------------------------------------------------------------
# Admin ops and thread attribution
# ---------------------------------------------------------------------------

class TestAdminOps:
    def test_reset_wipes_ephemeral_engine(self, client):
        client.apply(WriteBatch().write(Oid(1), b"x")
                     .set_roots({"r": Oid(1)}))
        client.reset()
        assert client.object_count == 0
        assert client.roots() == {}

    def test_shutdown_stops_server(self, tmp_path):
        server = StoreServer("memory:").start()
        engine = RemoteEngine(server.endpoint, read_retries=0)
        try:
            engine.shutdown_server()
            assert server._stopped.wait(timeout=10)
        finally:
            engine.close()

    def test_server_engine_url_errors_do_not_leak(self, tmp_path):
        with pytest.raises(ValueError):
            StoreServer("sharded:bogus")
        with pytest.raises(ValueError):
            StoreServer("memory:", bind="not-an-address")


class TestThreadAttribution:
    """Every pool/service thread carries the ``repro-`` prefix so stack
    dumps and py-spy traces are attributable to the subsystem."""

    def _repro_threads(self) -> set[str]:
        return {thread.name for thread in threading.enumerate()
                if thread.name.startswith("repro-")}

    def test_server_threads_named(self, server, client):
        client.stats()  # force an accept + a connection thread
        names = self._repro_threads()
        assert any(name == "repro-net-accept" for name in names)
        assert any(name.startswith("repro-net-conn-") for name in names)

    def test_shard_pool_threads_named(self, tmp_path):
        engine = engine_from_url("sharded:3:memory:")
        try:
            engine.oids()  # force the fan-out pool to spin up
            assert any(name.startswith("repro-shard")
                       for name in self._repro_threads())
        finally:
            engine.close()

    def test_commit_pipeline_thread_named(self, tmp_path):
        engine = engine_from_url(f"file:{tmp_path / 's'}?durability=group")
        try:
            assert "repro-commit-pipeline" in self._repro_threads()
        finally:
            engine.close()

    def test_encoder_pool_threads_named(self, tmp_path, registry):
        with ObjectStore.from_url(f"memory:?encode_workers=2",
                                  registry=registry) as store:
            store.set_root("people", [Person(f"p{i}") for i in range(80)])
            store.stabilize()  # > inline threshold: workers spin up
            assert any(name.startswith("repro-stabilize-encode")
                       for name in self._repro_threads())
