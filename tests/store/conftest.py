"""Store-suite fixtures: the ``store`` fixture is parametrized over every
storage backend here, so each store contract test runs against
``FileEngine``, ``MemoryEngine``, ``SqliteEngine``, ``ShardedEngine``
(over both file and sqlite children) and a ``RemoteEngine`` talking to
a real store-server subprocess alike.

Tests that exercise reopen/recovery construct file stores explicitly from
``tmp_path`` — those stay file-specific by nature.  Engine-only behaviour
(crash replay, no-persistence-across-close, the sharded two-phase
protocol) lives in ``test_engines.py`` and ``test_failure_injection.py``.
"""

from __future__ import annotations

import atexit
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.store.engine import (
    FileEngine,
    MemoryEngine,
    SqliteEngine,
    engine_from_url,
)
from repro.store.objectstore import ObjectStore

ENGINE_PARAMS = ("file", "memory", "sqlite", "sharded-file",
                 "sharded-sqlite", "file-group", "sharded-async",
                 "remote")

#: The one store-server subprocess behind every ``remote`` param: spawned
#: lazily on first use, shared for the whole test session (each
#: ``make_engine("remote", ...)`` resets its state through the admin op),
#: terminated at interpreter exit.
_REMOTE_SERVER: dict = {}


def _remote_endpoint() -> str:
    proc = _REMOTE_SERVER.get("proc")
    if proc is not None and proc.poll() is None:
        return _REMOTE_SERVER["endpoint"]
    root = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(root / "src") + os.pathsep +
                         env.get("PYTHONPATH", ""))
    proc = subprocess.Popen(
        [sys.executable, str(root / "scripts" / "store_server.py"),
         "memory:", "--listen", "127.0.0.1:0"],
        stdout=subprocess.PIPE, text=True, env=env)
    line = proc.stdout.readline()
    if not line.startswith("LISTENING "):
        proc.kill()
        raise RuntimeError(f"store server failed to start: {line!r}")
    _REMOTE_SERVER.update(proc=proc, endpoint=line.split()[-1])
    atexit.register(_shutdown_remote_server)
    return _REMOTE_SERVER["endpoint"]


def _shutdown_remote_server() -> None:
    proc = _REMOTE_SERVER.get("proc")
    if proc is None or proc.poll() is not None:
        return
    proc.terminate()
    try:
        proc.wait(timeout=5)
    except subprocess.TimeoutExpired:  # pragma: no cover - last resort
        proc.kill()


def make_engine(kind: str, tmp_path):
    if kind == "file":
        return FileEngine(str(tmp_path / "store"))
    if kind == "memory":
        return MemoryEngine()
    if kind == "sqlite":
        return SqliteEngine(str(tmp_path / "store.sqlite"))
    if kind == "sharded-file":
        return engine_from_url(f"sharded:3:file:{tmp_path / 'shards'}")
    if kind == "sharded-sqlite":
        return engine_from_url(f"sharded:3:sqlite:{tmp_path / 'shards'}")
    if kind == "file-group":
        # The commit pipeline at its strongest guarantee: every apply
        # returns durable, but concurrent appliers share group commits.
        return engine_from_url(f"file:{tmp_path / 'store'}"
                               "?durability=group")
    if kind == "sharded-async":
        # Two-phase protocol over per-shard async pipelines: phase-3
        # applies and the marker clear ride the pipelines off the
        # critical path; barriers still order prepare/marker durability.
        return engine_from_url(f"sharded:3:file:{tmp_path / 'shards'}"
                               "?shard_durability=async")
    if kind == "remote":
        # The whole store suite over a real socket: a memory-engine
        # store server in a separate process (one per test session),
        # reset to empty for each test through the admin op.
        from repro.store.net.client import RemoteEngine

        engine = RemoteEngine(_remote_endpoint(), op_timeout=60)
        engine.reset()
        return engine
    raise ValueError(f"unknown engine kind {kind!r}")


@pytest.fixture(params=ENGINE_PARAMS)
def store_engine(request, tmp_path):
    return make_engine(request.param, tmp_path)


@pytest.fixture
def store(store_engine, registry) -> ObjectStore:
    with ObjectStore(registry=registry, engine=store_engine) as st:
        yield st
