"""Store-suite fixtures: the ``store`` fixture is parametrized over both
storage engines here, so every store contract test runs against
``FileEngine`` and ``MemoryEngine`` alike.

Tests that exercise reopen/recovery construct file stores explicitly from
``tmp_path`` — those stay file-specific by nature.  Engine-only behaviour
(crash replay, no-persistence-across-close) lives in ``test_engines.py``.
"""

from __future__ import annotations

import pytest

from repro.store.engine import FileEngine, MemoryEngine
from repro.store.objectstore import ObjectStore

ENGINE_PARAMS = ("file", "memory")


def make_engine(kind: str, tmp_path):
    if kind == "file":
        return FileEngine(str(tmp_path / "store"))
    if kind == "memory":
        return MemoryEngine()
    raise ValueError(f"unknown engine kind {kind!r}")


@pytest.fixture(params=ENGINE_PARAMS)
def store_engine(request, tmp_path):
    return make_engine(request.param, tmp_path)


@pytest.fixture
def store(store_engine, registry) -> ObjectStore:
    with ObjectStore(registry=registry, engine=store_engine) as st:
        yield st
