"""Store-suite fixtures: the ``store`` fixture is parametrized over every
storage backend here, so each store contract test runs against
``FileEngine``, ``MemoryEngine``, ``SqliteEngine`` and ``ShardedEngine``
(over both file and sqlite children) alike.

Tests that exercise reopen/recovery construct file stores explicitly from
``tmp_path`` — those stay file-specific by nature.  Engine-only behaviour
(crash replay, no-persistence-across-close, the sharded two-phase
protocol) lives in ``test_engines.py`` and ``test_failure_injection.py``.
"""

from __future__ import annotations

import pytest

from repro.store.engine import (
    FileEngine,
    MemoryEngine,
    SqliteEngine,
    engine_from_url,
)
from repro.store.objectstore import ObjectStore

ENGINE_PARAMS = ("file", "memory", "sqlite", "sharded-file",
                 "sharded-sqlite", "file-group", "sharded-async")


def make_engine(kind: str, tmp_path):
    if kind == "file":
        return FileEngine(str(tmp_path / "store"))
    if kind == "memory":
        return MemoryEngine()
    if kind == "sqlite":
        return SqliteEngine(str(tmp_path / "store.sqlite"))
    if kind == "sharded-file":
        return engine_from_url(f"sharded:3:file:{tmp_path / 'shards'}")
    if kind == "sharded-sqlite":
        return engine_from_url(f"sharded:3:sqlite:{tmp_path / 'shards'}")
    if kind == "file-group":
        # The commit pipeline at its strongest guarantee: every apply
        # returns durable, but concurrent appliers share group commits.
        return engine_from_url(f"file:{tmp_path / 'store'}"
                               "?durability=group")
    if kind == "sharded-async":
        # Two-phase protocol over per-shard async pipelines: phase-3
        # applies and the marker clear ride the pipelines off the
        # critical path; barriers still order prepare/marker durability.
        return engine_from_url(f"sharded:3:file:{tmp_path / 'shards'}"
                               "?shard_durability=async")
    raise ValueError(f"unknown engine kind {kind!r}")


@pytest.fixture(params=ENGINE_PARAMS)
def store_engine(request, tmp_path):
    return make_engine(request.param, tmp_path)


@pytest.fixture
def store(store_engine, registry) -> ObjectStore:
    with ObjectStore(registry=registry, engine=store_engine) as st:
        yield st
