"""The observability subsystem: metrics core, engine instrumentation,
store counter exactness, and the STATS_FULL/TRACE wire round trip.

Covers the guarantees the telemetry layer actually promises:

* histogram bucket boundaries (power-of-two upper bounds, clamping);
* counter *exactness* for increments made under the commit lock — N
  racing stabilises count exactly N;
* zero-overhead when disabled — a disabled registry hands out one
  shared null instrument and the store leaves its engine unwrapped;
* the factory's ``?metrics=1``/``?slow_op_ms=`` wrapping (and that bare
  URLs stay bare, which ``test_factory.py`` asserts type-by-type);
* ``STATS_FULL`` against a live store-server subprocess, including the
  ``TRACE`` envelope carrying a client trace id into server spans.
"""

from __future__ import annotations

import logging
import threading

import pytest

from repro.store.engine import MemoryEngine
from repro.store.engine.factory import engine_from_url, split_store_url
from repro.store.obs import (
    MetricsRegistry,
    TimedEngine,
    merge_snapshots,
    new_trace_id,
    render_prometheus,
)
from repro.store.obs.metrics import _NULL, _NUM_BUCKETS, Histogram
from repro.store.objectstore import ObjectStore

from tests.conftest import Person
from tests.store.conftest import _remote_endpoint


# ---------------------------------------------------------------------------
# metrics core
# ---------------------------------------------------------------------------


class TestHistogram:
    def test_bucket_boundaries_are_powers_of_two(self):
        hist = Histogram()
        # v lands in the bucket whose upper bound is the smallest
        # 2**i >= v; 0 and 1 share bucket "1".
        for value in (0, 1, 2, 3, 4, 5, 1023, 1024, 1025):
            hist.observe(value)
        snapshot_buckets = {
            1 << i: c for i, c in enumerate(hist.buckets) if c}
        assert snapshot_buckets == {
            1: 2,      # 0, 1
            2: 1,      # 2
            4: 2,      # 3, 4
            8: 1,      # 5
            1024: 2,   # 1023, 1024
            2048: 1,   # 1025
        }
        assert hist.count == 9
        assert hist.sum == 0 + 1 + 2 + 3 + 4 + 5 + 1023 + 1024 + 1025

    def test_huge_observation_clamps_to_last_bucket(self):
        hist = Histogram()
        hist.observe(1 << 60)
        assert hist.buckets[_NUM_BUCKETS - 1] == 1

    def test_quantile_returns_bucket_upper_bound(self):
        hist = Histogram()
        for _ in range(99):
            hist.observe(100)     # bucket 128
        hist.observe(1 << 20)     # one slow outlier
        assert hist.quantile(0.50) == 128
        assert hist.quantile(0.99) == 128
        assert hist.quantile(1.0) == 1 << 20
        assert Histogram().quantile(0.5) == 0


class TestRegistry:
    def test_labels_flatten_sorted_and_instruments_are_shared(self):
        reg = MetricsRegistry()
        a = reg.counter("ops", op="read", engine="memory")
        b = reg.counter("ops", engine="memory", op="read")
        assert a is b
        a.inc(3)
        snap = reg.snapshot()
        assert snap["counters"] == {"ops{engine=memory,op=read}": 3}

    def test_disabled_registry_hands_out_the_shared_null(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("c") is _NULL
        assert reg.gauge("g") is _NULL
        assert reg.gauge_fn("g", lambda: 7) is _NULL
        assert reg.histogram("h") is _NULL
        _NULL.inc()
        _NULL.observe(5)
        assert _NULL.value == 0 and _NULL.quantile(0.9) == 0
        assert reg.snapshot() == {"counters": {}, "gauges": {},
                                  "histograms": {}}

    def test_pull_gauge_evaluates_at_snapshot_and_rebinding_replaces(self):
        reg = MetricsRegistry()
        box = {"v": 1}
        reg.gauge_fn("depth", lambda: box["v"])
        box["v"] = 42
        assert reg.snapshot()["gauges"]["depth"] == 42
        reg.gauge_fn("depth", lambda: -1)      # engine-reset rebind
        assert reg.snapshot()["gauges"]["depth"] == -1
        reg.gauge_fn("boom", lambda: 1 / 0)    # failing callback reads 0
        assert reg.snapshot()["gauges"]["boom"] == 0

    def test_merge_snapshots_sums_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(5)
        reg.histogram("h").observe(3)
        snap = reg.snapshot()
        merged = merge_snapshots([snap, snap])
        assert merged["counters"]["c"] == 4
        assert merged["gauges"]["g"] == 10
        assert merged["histograms"]["h"]["count"] == 2
        assert merged["histograms"]["h"]["buckets"]["4"] == 2

    def test_merge_keeps_conflicting_label_sets_apart(self):
        # Two servers exposing the same metric *name* under different
        # label sets must not sum into one series: snapshot keys carry
        # the flattened labels, so each labelled series merges only
        # with its exact twin.
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("ops", engine="file").inc(2)
        a.counter("ops", engine="file", shard="0").inc(3)
        b.counter("ops", engine="memory").inc(5)
        b.counter("ops", engine="file").inc(7)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"] == {
            "ops{engine=file}": 9,
            "ops{engine=file,shard=0}": 3,
            "ops{engine=memory}": 5,
        }

    def test_merge_histograms_with_mismatched_bucket_sets(self):
        # One server saw only fast ops, the other only slow ones: the
        # merged histogram is the union of their populated buckets,
        # with count/sum summed — no bucket is dropped or misaligned.
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("ns").observe(3)          # bucket "4"
        b.histogram("ns").observe(1000)       # bucket "1024"
        b.histogram("ns").observe(1001)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        hist = merged["histograms"]["ns"]
        assert hist["count"] == 3
        assert hist["sum"] == 2004
        assert hist["buckets"] == {"4": 1, "1024": 2}

    def test_merge_with_empty_and_disabled_snapshots(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        disabled = MetricsRegistry(enabled=False)
        merged = merge_snapshots([reg.snapshot(), disabled.snapshot(),
                                  {}])
        assert merged["counters"] == {"c": 2}
        assert merged["gauges"] == {} and merged["histograms"] == {}
        # All-empty input still yields the canonical empty shape.
        assert merge_snapshots([]) == {"counters": {}, "gauges": {},
                                       "histograms": {}}

    def test_prometheus_render_shape(self):
        reg = MetricsRegistry()
        reg.counter("reads_total", engine="memory").inc(7)
        reg.histogram("op_ns", op="read").observe(3)
        reg.histogram("op_ns", op="read").observe(100)
        text = render_prometheus(reg.snapshot())
        assert "# TYPE reads_total counter" in text
        assert "reads_total{engine=memory} 7" in text
        assert "# TYPE op_ns histogram" in text
        # Cumulative buckets: le=4 holds 1, le=128 holds both.
        assert "op_ns_bucket{op=read,le=4} 1" in text
        assert "op_ns_bucket{op=read,le=128} 2" in text
        assert "op_ns_bucket{op=read,le=+Inf} 2" in text
        assert "op_ns_count{op=read} 2" in text


# ---------------------------------------------------------------------------
# engine instrumentation
# ---------------------------------------------------------------------------


class TestTimedEngine:
    def test_ops_land_in_per_op_histograms(self, registry):
        reg = MetricsRegistry()
        engine = TimedEngine(MemoryEngine(), reg)
        store = ObjectStore(engine=engine, registry=registry, metrics=reg)
        store.set_root("p", Person("Ada"))
        store.stabilize()
        assert store.get_root("p").name == "Ada"
        hists = reg.snapshot()["histograms"]
        applies = sum(
            hists[f"engine_op_ns{{engine=memory,op={op}}}"]["count"]
            for op in ("apply", "apply_many", "apply_async"))
        assert applies >= 1
        assert hists["engine_op_ns{engine=memory,op=roots}"]["count"] >= 1
        store.close()

    def test_slow_op_log_fires_above_threshold(self, caplog):
        # A nanosecond-scale threshold: every op is "slow".
        engine = TimedEngine(MemoryEngine(), MetricsRegistry(),
                             slow_op_ms=0.000001)
        with caplog.at_level(logging.WARNING, logger="repro.store.slowop"):
            engine.contains(1)
        assert any("slow op contains" in r.getMessage()
                   for r in caplog.records)
        engine.close()

    def test_slow_op_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            TimedEngine(MemoryEngine(), slow_op_ms=0)

    def test_wrapper_forwards_engine_specific_surface(self):
        engine = engine_from_url("sharded:2:memory:?metrics=1")
        assert isinstance(engine, TimedEngine)
        assert engine.name == "sharded"
        assert len(engine.children) == 2        # via __getattr__
        assert engine.wrapped is not engine
        engine.close()


# ---------------------------------------------------------------------------
# factory wiring
# ---------------------------------------------------------------------------


class TestFactoryWiring:
    def test_bare_url_stays_unwrapped(self):
        with engine_from_url("memory:") as engine:
            assert isinstance(engine, MemoryEngine)

    def test_metrics_param_wraps(self):
        with engine_from_url("memory:?metrics=1") as engine:
            assert isinstance(engine, TimedEngine)

    def test_slow_op_param_wraps(self):
        with engine_from_url("memory:?slow_op_ms=5") as engine:
            assert isinstance(engine, TimedEngine)

    def test_split_store_url_peels_obs_keys(self):
        url, options = split_store_url("memory:?metrics=0&cache_objects=8")
        assert options["metrics"] is False
        assert options["cache_objects"] == 8
        assert "metrics" not in url

    def test_store_adopts_factory_registry(self, registry):
        # open_store over an instrumented engine: one shared registry,
        # store counters and engine histograms in one snapshot.
        store = ObjectStore.from_url("memory:?metrics=1", registry)
        try:
            store.set_root("p", Person("Ada"))
            store.stabilize()
            snap = store.metrics()
            assert snap["counters"]["store_stabilize_total"] == 1
            assert any(k.startswith("engine_op_ns")
                       for k in snap["histograms"])
        finally:
            store.close()


# ---------------------------------------------------------------------------
# store counters
# ---------------------------------------------------------------------------


class TestStoreCounters:
    def test_racing_stabilizes_count_exactly(self, registry):
        store = ObjectStore(engine=MemoryEngine(), registry=registry)
        threads, per_thread = 8, 25
        store.set_root("people",
                       [Person(f"p{i}") for i in range(16)])
        barrier = threading.Barrier(threads)

        def worker():
            barrier.wait()
            people = store.get_root("people")
            for n in range(per_thread):
                person = people[n % len(people)]
                person.name = f"{person.name}+"
                store.stabilize()

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        # Incremented under the commit lock: exact, not approximately
        # GIL-atomic.  One extra from the seeding stabilize? No — the
        # add_root above was never stabilised before the workers ran.
        assert store.stats()["stabilize_count"] == threads * per_thread
        assert (store.metrics()["counters"]["store_stabilize_total"]
                == threads * per_thread)
        store.close()

    def test_metrics_disabled_is_inert(self, registry):
        store = ObjectStore(engine=MemoryEngine(), registry=registry,
                            metrics=False)
        assert not isinstance(store.engine, TimedEngine)
        assert store._phase_counters["stabilize_count"] is _NULL
        store.set_root("p", Person("Ada"))
        store.stabilize()
        stats = store.stats()
        assert stats["stabilize_count"] == 0        # null instrument
        assert store.encode_count == 1              # plain attr still counts
        snap = store.metrics()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}
        store.close()

    def test_stats_compat_view_matches_registry(self, registry):
        store = ObjectStore(engine=MemoryEngine(), registry=registry)
        store.set_root("p", Person("Ada"))
        store.stabilize()
        stats = store.stats()
        counters = store.metrics()["counters"]
        assert stats["stabilize_count"] == counters["store_stabilize_total"]
        assert stats["walk_ns"] == counters["store_walk_ns_total"]
        assert stats["walk_ns"] > 0 and stats["commit_ns"] > 0
        store.close()


# ---------------------------------------------------------------------------
# the wire: STATS_FULL + TRACE against a live server subprocess
# ---------------------------------------------------------------------------


class TestStatsFullOverTheWire:
    def test_stats_full_round_trip_with_trace_id(self):
        from repro.store.net.client import RemoteEngine

        engine = RemoteEngine(_remote_endpoint(), op_timeout=60)
        try:
            engine.reset()
            trace = new_trace_id()
            engine.trace_id = trace
            engine.contains(1)
            engine.fetch_many([1, 2, 3])
            engine.trace_id = 0
            body = engine.stats_full()
            assert set(body) >= {"server", "metrics", "spans"}
            assert body["server"]["engine"] == "memory"
            hists = body["metrics"]["histograms"]
            contains_hist = hists["server_op_ns{op=contains}"]
            assert contains_hist["count"] >= 1
            # The TRACE envelope carried the client's id into spans.
            traced_ops = {span["op"] for span in body["spans"]
                          if span.get("trace_id") == trace}
            assert "contains" in traced_ops
            assert "fetch_many" in traced_ops
        finally:
            engine.close()

    def test_router_merges_child_snapshots(self):
        # One live server is enough to exercise the aggregation shape;
        # the two-server fleet is benchmarked in [B9].
        from repro.store.net.router import RouterEngine

        router = RouterEngine([_remote_endpoint()], op_timeout=60)
        try:
            router.contains(1)
            body = router.stats_full()
            assert list(body["per_server"]) == [_remote_endpoint()]
            merged = body["merged"]
            assert any(k.startswith("server_op_ns")
                       for k in merged["histograms"])
            table = router.load_table()
            assert len(table) == 1
            assert table[0]["endpoint"] == _remote_endpoint()
            assert table[0]["requests"] >= 1
        finally:
            router.close()
