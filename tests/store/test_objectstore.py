"""The object store: roots, reachability, identity, fidelity, recovery,
referential integrity."""

import pytest

from repro.errors import (
    StoreClosedError,
    UnknownOidError,
    UnknownRootError,
)
from repro.store.objectstore import ObjectStore

from tests.conftest import Employee, Person


class TestRoots:
    def test_set_and_get_root(self, store):
        person = Person("ada")
        store.set_root("ada", person)
        assert store.get_root("ada") is person

    def test_unknown_root_raises(self, store):
        with pytest.raises(UnknownRootError):
            store.get_root("nope")

    def test_delete_root(self, store):
        store.set_root("r", [1])
        store.delete_root("r")
        assert not store.has_root("r")
        with pytest.raises(UnknownRootError):
            store.delete_root("r")

    def test_root_names_sorted(self, store):
        store.set_root("zebra", [1])
        store.set_root("apple", [2])
        assert store.root_names() == ("apple", "zebra")

    def test_rebinding_root_replaces(self, store):
        store.set_root("r", [1])
        replacement = [2]
        store.set_root("r", replacement)
        assert store.get_root("r") is replacement


class TestPersistenceByReachability:
    def test_interior_objects_stored_without_explicit_calls(self, store):
        a, b = Person("a"), Person("b")
        a.spouse = b
        store.set_root("a", a)
        store.stabilize()
        assert store.is_stored(store.oid_of(b))

    def test_unreachable_objects_not_stored(self, store):
        reachable, orphan = Person("in"), Person("out")
        store.set_root("r", reachable)
        orphan_oid = store._ensure_oid(orphan)
        store.stabilize()
        assert not store.is_stored(orphan_oid)

    def test_stabilize_counts_only_changes(self, store, people):
        first = store.stabilize()
        assert first >= 3  # two persons + list (+ registry structures)
        assert store.stabilize() == 0  # no changes -> nothing rewritten
        people[0].name = "renamed"
        assert store.stabilize() == 1  # only the mutated record

    def test_deep_graph_stored(self, store):
        head = tail = Person("p0")
        for index in range(1, 200):
            nxt = Person(f"p{index}")
            tail.spouse = nxt
            tail = nxt
        store.set_root("chain", head)
        store.stabilize()
        assert store.statistics().object_count >= 200


class TestPartialFetchStabilize:
    def test_mutation_behind_unfetched_root_is_checkpointed(self, tmp_path,
                                                            registry):
        """A live, mutated object reachable only through a never-fetched
        root must still be re-encoded by stabilize (regression test)."""
        directory = str(tmp_path / "s")
        with ObjectStore.open(directory, registry=registry) as store:
            person = Person("original")
            store.set_root("holder", [person])
            store.stabilize()
        with ObjectStore.open(directory, registry=registry) as store:
            # Fetch the person via its OID without fetching the holder list.
            holder = store.get_root("holder")
            person = holder[0]
            store._identity.evict(store.oid_of(holder))
            del holder
            person.name = "mutated"
            store.stabilize()
            store.evict_all()
            assert store.get_root("holder")[0].name == "mutated"


class TestIdentityAndSharing:
    def test_fetch_preserves_sharing(self, tmp_path, registry):
        directory = str(tmp_path / "s")
        with ObjectStore.open(directory, registry=registry) as store:
            shared = Person("shared")
            store.set_root("pair", [shared, shared])
            store.stabilize()
        with ObjectStore.open(directory, registry=registry) as store:
            pair = store.get_root("pair")
            assert pair[0] is pair[1]

    def test_fetch_preserves_cycles(self, tmp_path, registry):
        directory = str(tmp_path / "s")
        with ObjectStore.open(directory, registry=registry) as store:
            a, b = Person("a"), Person("b")
            Person.marry(a, b)
            store.set_root("a", a)
            store.stabilize()
        with ObjectStore.open(directory, registry=registry) as store:
            a = store.get_root("a")
            assert a.spouse.spouse is a

    def test_two_roots_to_same_object_fetch_identically(self, tmp_path,
                                                        registry):
        directory = str(tmp_path / "s")
        with ObjectStore.open(directory, registry=registry) as store:
            person = Person("both")
            store.set_root("r1", person)
            store.set_root("r2", person)
            store.stabilize()
        with ObjectStore.open(directory, registry=registry) as store:
            assert store.get_root("r1") is store.get_root("r2")

    def test_oid_stable_across_stabilizes(self, store):
        person = Person("stable")
        store.set_root("p", person)
        store.stabilize()
        oid = store.oid_of(person)
        person.name = "still stable"
        store.stabilize()
        assert store.oid_of(person) == oid


class TestTypedFidelity:
    def test_fetched_object_has_registered_class(self, tmp_path, registry):
        directory = str(tmp_path / "s")
        with ObjectStore.open(directory, registry=registry) as store:
            store.set_root("e", Employee("zoe", 40_000))
            store.stabilize()
        with ObjectStore.open(directory, registry=registry) as store:
            employee = store.get_root("e")
            assert type(employee) is Employee
            assert employee.salary == 40_000
            assert employee.greet() == "hello, zoe"  # inherited behaviour

    def test_container_types_roundtrip_exactly(self, tmp_path, registry):
        directory = str(tmp_path / "s")
        payload = {"list": [1, 2], "set": {3}, "tuple": (4, (5,)),
                   "bytes": b"\x00", "bytearray": bytearray(b"ba")}
        with ObjectStore.open(directory, registry=registry) as store:
            store.set_root("d", payload)
            store.stabilize()
        with ObjectStore.open(directory, registry=registry) as store:
            back = store.get_root("d")
            for key, value in payload.items():
                assert type(back[key]) is type(value)
                assert back[key] == value


class TestRecovery:
    def test_state_survives_reopen(self, tmp_path, registry):
        directory = str(tmp_path / "s")
        with ObjectStore.open(directory, registry=registry) as store:
            store.set_root("people", [Person("a"), Person("b")])
            store.stabilize()
            stats = store.statistics()
        with ObjectStore.open(directory, registry=registry) as store:
            assert store.statistics().object_count == stats.object_count
            assert [p.name for p in store.get_root("people")] == ["a", "b"]

    def test_unstabilized_changes_lost_on_reopen(self, tmp_path, registry):
        directory = str(tmp_path / "s")
        with ObjectStore.open(directory, registry=registry) as store:
            person = Person("committed")
            store.set_root("p", person)
            store.stabilize()
            person.name = "uncommitted"
            # no stabilize; close flushes pages but records were not written
        with ObjectStore.open(directory, registry=registry) as store:
            assert store.get_root("p").name == "committed"

    def test_wal_replay_after_simulated_crash(self, tmp_path, registry):
        directory = str(tmp_path / "s")
        store = ObjectStore.open(directory, registry=registry)
        store.set_root("p", Person("durable"))
        # Simulate a crash after WAL commit but before checkpoint: run the
        # WAL half of stabilize only (the engine's log_batch), then drop
        # the file handles without checkpointing.
        from repro.store.engine import WriteBatch
        __, records, __ = store._flatten_from_roots()
        batch = WriteBatch()
        for oid, record in records.items():
            batch.write(oid, record.to_bytes())
        batch.set_roots(store.root_bindings())
        batch.advance_next_oid(int(store._allocator.next_oid))
        engine = store.engine
        engine.log_batch(batch)
        engine.wal.close()
        engine.heap.close()  # crash: metadata never written
        with ObjectStore.open(directory, registry=registry) as recovered:
            assert recovered.get_root("p").name == "durable"

    def test_oids_not_reused_after_recovery(self, tmp_path, registry):
        directory = str(tmp_path / "s")
        with ObjectStore.open(directory, registry=registry) as store:
            store.set_root("p", Person("x"))
            store.stabilize()
            high_water = store.statistics().next_oid
        with ObjectStore.open(directory, registry=registry) as store:
            fresh_oid = store._ensure_oid(Person("new"))
            assert int(fresh_oid) >= high_water


class TestReferentialIntegrity:
    def test_clean_store_verifies(self, store, people):
        store.stabilize()
        assert store.verify_referential_integrity() == []

    def test_unknown_oid_raises(self, store):
        from repro.store.oids import Oid
        with pytest.raises(UnknownOidError):
            store.object_for(Oid(424242))

    def test_refresh_reloads_from_disk(self, store):
        person = Person("disk")
        store.set_root("p", person)
        store.stabilize()
        person.name = "memory"
        fresh = store.refresh(person)
        assert fresh.name == "disk"
        assert fresh is not person


class TestLifecycle:
    def test_closed_store_rejects_operations(self, tmp_path, registry):
        store = ObjectStore.open(str(tmp_path / "s"), registry=registry)
        store.close()
        with pytest.raises(StoreClosedError):
            store.set_root("r", [1])
        with pytest.raises(StoreClosedError):
            store.stabilize()

    def test_close_is_idempotent(self, tmp_path, registry):
        store = ObjectStore.open(str(tmp_path / "s"), registry=registry)
        store.close()
        store.close()
        assert store.is_closed

    def test_statistics_shape(self, store, people):
        store.stabilize()
        stats = store.statistics()
        assert stats.object_count >= 3
        assert stats.root_count == 1
        assert stats.heap_pages >= 1
