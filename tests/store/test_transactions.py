"""Transactions: commit stabilises, abort reverts to the last stabilised
state (paper Section 7's transactional evolution substrate)."""

import pytest

from repro.errors import NoTransactionError, TransactionError

from tests.conftest import Person


class TestCommit:
    def test_context_manager_commits_on_success(self, store):
        with store.transaction():
            store.set_root("p", Person("committed"))
        # The root is durable: visible after an identity-map flush.
        store.evict_all()
        assert store.get_root("p").name == "committed"

    def test_explicit_commit_returns_record_count(self, store):
        txn = store.transaction().begin()
        store.set_root("p", Person("x"))
        written = txn.commit()
        assert written >= 1

    def test_commit_makes_mutations_durable(self, store, people):
        store.stabilize()
        with store.transaction():
            people[0].name = "renamed"
        store.evict_all()
        assert store.get_root("people")[0].name == "renamed"


class TestAbort:
    def test_exception_aborts(self, store):
        store.set_root("p", Person("before"))
        store.stabilize()
        with pytest.raises(RuntimeError):
            with store.transaction():
                store.get_root("p").name = "after"
                raise RuntimeError("boom")
        assert store.get_root("p").name == "before"

    def test_abort_reverts_new_roots(self, store):
        store.stabilize()
        with pytest.raises(ValueError):
            with store.transaction():
                store.set_root("new", [1])
                raise ValueError
        assert not store.has_root("new")

    def test_abort_reverts_root_deletion(self, store, people):
        store.stabilize()
        with pytest.raises(ValueError):
            with store.transaction():
                store.delete_root("people")
                raise ValueError
        assert store.has_root("people")

    def test_explicit_abort(self, store):
        store.set_root("p", Person("before"))
        store.stabilize()
        txn = store.transaction().begin()
        store.get_root("p").name = "after"
        txn.abort()
        assert store.get_root("p").name == "before"


class TestDiscipline:
    def test_no_nested_transactions(self, store):
        with store.transaction():
            with pytest.raises(TransactionError):
                store.transaction().begin()

    def test_commit_without_begin_raises(self, store):
        with pytest.raises(NoTransactionError):
            store.transaction().commit()

    def test_abort_without_begin_raises(self, store):
        with pytest.raises(NoTransactionError):
            store.transaction().abort()

    def test_transaction_objects_single_use(self, store):
        txn = store.transaction().begin()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.begin()

    def test_explicit_commit_inside_context_is_respected(self, store):
        with store.transaction() as txn:
            store.set_root("r", [1])
            txn.commit()
        # Exiting after an explicit commit must not double-commit or abort.
        assert store.has_root("r")

    def test_sequential_transactions_allowed(self, store):
        with store.transaction():
            store.set_root("a", [1])
        with store.transaction():
            store.set_root("b", [2])
        assert store.has_root("a") and store.has_root("b")
