"""The commit pipeline: policies, group coalescing, the read overlay,
deterministic failure, and store-level concurrent stabilisation."""

import threading
import time

import pytest

from repro.errors import (
    CommitPipelineError,
    StoreClosedError,
    UnknownOidError,
)
from repro.store import open_store
from repro.store.commit import (
    AsyncPolicy,
    CommitTicket,
    GroupPolicy,
    PipelinedEngine,
    SyncPolicy,
)
from repro.store.commit.policy import make_policy
from repro.store.engine import FileEngine, MemoryEngine, WriteBatch
from repro.store.objectstore import ObjectStore
from repro.store.oids import Oid

from tests.conftest import Person


class GateEngine(MemoryEngine):
    """A child whose group commits can be held at a gate, making the
    pipeline's batching deterministic to test."""

    def __init__(self):
        super().__init__()
        self.groups: list[int] = []
        self.gate = threading.Event()
        self.gate.set()
        self.entered = threading.Event()

    def apply_many(self, batches) -> None:
        batches = list(batches)
        self.entered.set()
        assert self.gate.wait(10.0), "gate never released"
        self.groups.append(len(batches))
        super().apply_many(batches)


class FailingEngine(MemoryEngine):
    """A child that fails every commit after the first."""

    def __init__(self):
        super().__init__()
        self.calls = 0

    def apply_many(self, batches) -> None:
        self.calls += 1
        if self.calls > 1:
            raise IOError("disk on fire")
        super().apply_many(batches)


def record_batch(oid: int, payload: bytes = b"x") -> WriteBatch:
    return WriteBatch().write(Oid(oid), payload)


class TestPolicies:
    def test_make_policy_kinds(self):
        assert isinstance(make_policy("sync"), SyncPolicy)
        group = make_policy("group", window_ms=2.5, max_batches=8)
        assert isinstance(group, GroupPolicy)
        assert group.window_s == pytest.approx(0.0025)
        assert group.max_batches == 8
        assert group.waits and group.threaded
        async_policy = make_policy("async", max_pending=3)
        assert isinstance(async_policy, AsyncPolicy)
        assert not async_policy.waits
        assert async_policy.max_pending == 3

    def test_bad_policy_values_rejected(self):
        with pytest.raises(ValueError, match="unknown durability policy"):
            make_policy("never")
        with pytest.raises(ValueError, match="group_window_ms"):
            make_policy("group", window_ms=-1)
        with pytest.raises(ValueError, match="group_max_batches"):
            make_policy("group", max_batches=0)
        with pytest.raises(ValueError, match="async_max_pending"):
            make_policy("async", max_pending=0)


class TestCommitTicket:
    def test_resolution_and_result(self):
        ticket = CommitTicket()
        assert not ticket.done
        assert not ticket.wait(0.01)
        ticket._resolve()
        assert ticket.done
        assert ticket.exception() is None
        ticket.result()  # no error

    def test_error_propagates(self):
        ticket = CommitTicket()
        ticket._resolve(IOError("lost"))
        assert isinstance(ticket.exception(), IOError)
        with pytest.raises(IOError):
            ticket.result()

    def test_timeout(self):
        ticket = CommitTicket()
        with pytest.raises(TimeoutError):
            ticket.result(timeout=0.01)


class TestGroupCoalescing:
    def test_batches_queued_behind_a_commit_form_one_group(self):
        child = GateEngine()
        engine = PipelinedEngine(child, AsyncPolicy())
        child.gate.clear()
        first = engine.apply_async(record_batch(1))
        # Wait until the committer is inside apply_many with batch 1...
        assert child.entered.wait(10.0)
        # ...then queue three more behind it.
        tickets = [engine.apply_async(record_batch(oid))
                   for oid in (2, 3, 4)]
        child.gate.set()
        for ticket in [first, *tickets]:
            ticket.result(timeout=10.0)
        # One group for the opener, one coalesced group for the rest.
        assert child.groups == [1, 3]
        assert sorted(map(int, engine.oids())) == [1, 2, 3, 4]
        engine.close()

    def test_group_policy_apply_returns_durable(self, tmp_path):
        engine = PipelinedEngine(FileEngine(str(tmp_path / "s")),
                                 GroupPolicy())
        engine.apply(record_batch(1, b"kept"))
        # The ticket of the last commit is settled by the time apply
        # returns; a process dying now must keep the record.
        engine.child.wal.close()
        engine.child.heap.close()
        with FileEngine(str(tmp_path / "s")) as recovered:
            assert recovered.read(Oid(1)) == b"kept"

    def test_concurrent_appliers_share_groups(self, tmp_path):
        child = FileEngine(str(tmp_path / "s"))
        engine = PipelinedEngine(child, GroupPolicy())
        per_thread, threads = 10, 8

        def work(base: int) -> None:
            for offset in range(per_thread):
                engine.apply(record_batch(base + offset, b"p" * 32))

        workers = [threading.Thread(target=work, args=(100 * index,))
                   for index in range(1, threads + 1)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert engine.object_count == per_thread * threads
        assert engine.batches_applied == per_thread * threads
        engine.close()
        with FileEngine(str(tmp_path / "s")) as reopened:
            assert reopened.object_count == per_thread * threads


class TestAsyncOverlay:
    def test_pending_writes_are_readable(self):
        child = GateEngine()
        engine = PipelinedEngine(child, AsyncPolicy())
        child.gate.clear()
        engine.apply(record_batch(1, b"one"))
        engine.apply(WriteBatch().write(Oid(2), b"two")
                     .set_roots({"r": Oid(2)}).advance_next_oid(50))
        # Nothing has reached the child, yet every overlay-served read
        # answers immediately (aggregate views — oids/object_count —
        # serialise against the in-flight commit by design, so they are
        # asserted after the gate opens).
        assert engine.read(Oid(1)) == b"one"
        assert engine.contains(Oid(2))
        assert engine.roots() == {"r": Oid(2)}
        assert engine.next_oid == 50
        written, deleted = engine.pipeline.pending_effects()
        assert sorted(map(int, written)) == [1, 2] and deleted == []
        child.gate.set()
        engine.flush()
        # Same answers once the overlay has drained into the child.
        assert engine.read(Oid(1)) == b"one"
        assert engine.roots() == {"r": Oid(2)}
        assert sorted(map(int, engine.oids())) == [1, 2]
        assert engine.object_count == 2
        assert child.next_oid == 50
        engine.close()

    def test_pending_delete_hides_a_stored_record(self):
        child = GateEngine()
        engine = PipelinedEngine(child, AsyncPolicy())
        engine.apply(record_batch(1))
        engine.flush()
        child.gate.clear()
        engine.apply(WriteBatch().delete(Oid(1)))
        assert not engine.contains(Oid(1))
        with pytest.raises(UnknownOidError):
            engine.read(Oid(1))
        child.gate.set()
        engine.flush()
        assert engine.object_count == 0
        engine.close()

    def test_last_pending_write_wins(self):
        child = GateEngine()
        engine = PipelinedEngine(child, AsyncPolicy())
        child.gate.clear()
        engine.apply(record_batch(1, b"v1"))
        engine.apply(record_batch(1, b"v2"))
        engine.apply(record_batch(1, b"v3"))
        assert engine.read(Oid(1)) == b"v3"
        child.gate.set()
        engine.flush()
        assert engine.read(Oid(1)) == b"v3"
        assert engine.object_count == 1
        engine.close()

    def test_aggregate_views_merge_overlay_and_child(self):
        """oids()/object_count serialise against an in-flight commit;
        their overlay snapshot is taken first, so the merge covers the
        pending batches whichever side of the commit the child read
        lands on."""
        child = GateEngine()
        engine = PipelinedEngine(child, AsyncPolicy())
        engine.apply(record_batch(1))
        engine.flush()
        child.gate.clear()
        engine.apply(WriteBatch().write(Oid(2), b"two").delete(Oid(1)))
        results = []

        def aggregate() -> None:
            results.append(sorted(map(int, engine.oids())))
            results.append(engine.object_count)

        thread = threading.Thread(target=aggregate)
        thread.start()  # snapshots the overlay, then waits out the gate
        child.gate.set()
        thread.join(10.0)
        assert results == [[2], 1]
        engine.close()

    def test_async_close_flushes_pending_batches(self, tmp_path):
        """The regression pin for close(): queued async batches are
        durable after close, never silently dropped."""
        directory = str(tmp_path / "s")
        engine = PipelinedEngine(FileEngine(directory), AsyncPolicy())
        tickets = [engine.apply_async(record_batch(oid, b"survives"))
                   for oid in range(1, 21)]
        engine.close()
        assert all(ticket.done for ticket in tickets)
        with FileEngine(directory) as reopened:
            assert reopened.object_count == 20
            assert reopened.read(Oid(20)) == b"survives"

    def test_backpressure_blocks_submission(self):
        child = GateEngine()
        engine = PipelinedEngine(child, AsyncPolicy(max_pending=2))
        child.gate.clear()
        engine.apply(record_batch(1))
        engine.apply(record_batch(2))
        blocked = threading.Event()

        def third() -> None:
            engine.apply(record_batch(3))
            blocked.set()

        thread = threading.Thread(target=third)
        thread.start()
        time.sleep(0.05)
        assert not blocked.is_set()  # pipeline is full, submit waits
        child.gate.set()
        thread.join(10.0)
        assert blocked.is_set()
        engine.flush()
        assert engine.object_count == 3
        engine.close()


class TestDeterministicFailure:
    def test_failed_group_resolves_every_ticket(self):
        child = FailingEngine()
        engine = PipelinedEngine(child, AsyncPolicy())
        engine.apply(record_batch(1))
        engine.flush()  # first commit succeeds
        hold = [engine.apply_async(record_batch(oid))
                for oid in range(2, 7)]
        for ticket in hold:
            assert ticket.wait(10.0)
        errors = [ticket.exception() for ticket in hold]
        assert isinstance(errors[0], (IOError, CommitPipelineError))
        assert all(error is not None for error in errors)
        # The pipeline is poisoned: no further work, and close raises.
        with pytest.raises(CommitPipelineError):
            engine.apply(record_batch(99))
        with pytest.raises(CommitPipelineError):
            engine.flush()
        with pytest.raises(CommitPipelineError):
            engine.close()
        # ...but exactly once: close is idempotent afterwards.
        engine.close()
        assert engine.closed

    def test_sync_policy_failure_does_not_poison(self):
        engine = PipelinedEngine(MemoryEngine(), SyncPolicy())
        engine.apply(record_batch(1))
        bad = WriteBatch()
        bad.writes.append((Oid(2), object()))  # not bytes-convertible
        with pytest.raises(TypeError):
            engine.apply(bad)
        # The child applied nothing of the bad batch; the pipeline keeps
        # serving (a sync commit failure is atomic at the child).
        engine.apply(record_batch(3))
        assert sorted(map(int, engine.oids())) == [1, 3]
        engine.close()

    def test_submit_after_close_rejected(self):
        engine = PipelinedEngine(MemoryEngine(), GroupPolicy())
        engine.apply(record_batch(1))
        engine.close()
        with pytest.raises(StoreClosedError):
            engine.apply(record_batch(2))


class TestStoreIntegration:
    def url(self, tmp_path, policy: str) -> str:
        return f"file:{tmp_path / 's'}?durability={policy}"

    @pytest.mark.parametrize("policy", ["sync", "group", "async"])
    def test_roundtrip_per_policy(self, tmp_path, registry, policy):
        with open_store(self.url(tmp_path, policy),
                        registry=registry) as store:
            store.set_root("people", [Person("ann"), Person("bo")])
            store.stabilize()
        with open_store(self.url(tmp_path, policy),
                        registry=registry) as store:
            assert [p.name for p in store.get_root("people")] \
                == ["ann", "bo"]
            assert store.verify_referential_integrity() == []

    def test_async_stabilize_exposes_ticket_and_flush(self, tmp_path,
                                                      registry):
        with open_store(self.url(tmp_path, "async"),
                        registry=registry) as store:
            store.set_root("p", Person("queued"))
            written = store.stabilize()
            assert written >= 1
            assert store.last_commit is not None
            store.flush()
            store.last_commit.result(timeout=0)  # settled and durable

    def test_concurrent_stabilize_threads(self, tmp_path, registry):
        with open_store(self.url(tmp_path, "group"),
                        registry=registry) as store:
            people = [Person(f"p{index}") for index in range(64)]
            store.set_root("people", people)
            store.stabilize()
            threads = 8

            def mutate(slot: int) -> None:
                for round_no in range(10):
                    people[slot * threads + round_no % 8].name = \
                        f"t{slot}r{round_no}"
                    store.stabilize()

            workers = [threading.Thread(target=mutate, args=(index,))
                       for index in range(threads)]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
            assert store.verify_referential_integrity() == []
        with open_store(self.url(tmp_path, "group"),
                        registry=registry) as store:
            names = [p.name for p in store.get_root("people")]
            # Every thread's final rename is durable.
            for slot in range(threads):
                assert f"t{slot}r9" in names

    def test_transaction_commit_is_a_durability_point(self, registry):
        child = GateEngine()
        store = ObjectStore(registry=registry,
                            engine=PipelinedEngine(child, AsyncPolicy()))
        with store.transaction() as txn:
            store.set_root("p", Person("tx"))
            txn.commit()  # durable=True flushes the async pipeline
        assert store.engine.pipeline.pending_count == 0
        # durable=False returns with the commit still queued.
        child.gate.clear()
        txn = store.transaction().begin()
        store.get_root("p").name = "tx2"
        txn.commit(durable=False)
        assert store.engine.pipeline.pending_count > 0
        child.gate.set()
        store.flush()
        store.close()

    def test_sharded_async_children_make_the_engine_asynchronous(
            self, tmp_path, registry):
        """A transaction's durable commit must reach the bottom of the
        stack: async shard pipelines mark the whole sharded engine
        asynchronous, so commit(durable=True) flushes them."""
        url = f"sharded:2:file:{tmp_path / 'c'}?shard_durability=async"
        store = open_store(url, registry=registry)
        assert store.engine.asynchronous
        with store.transaction():
            store.set_root("people", [Person(f"p{i}") for i in range(9)])
        # durable=True (the default) flushed every shard pipeline —
        # a hard crash now must lose nothing.
        for child in store.engine.children:
            child.child.wal.close()
            child.child.heap.close()
            child.child.manifest.close()
        with open_store(f"sharded:2:file:{tmp_path / 'c'}",
                        registry=registry) as recovered:
            assert len(recovered.get_root("people")) == 9

    def test_flush_reaches_nested_pipelines(self, tmp_path, registry):
        """An outer async pipeline over a sharded engine with async
        shard pipelines: flush() must drain the whole stack."""
        url = (f"sharded:2:file:{tmp_path / 'n'}"
               "?durability=async&shard_durability=async")
        store = open_store(url, registry=registry)
        store.set_root("people", [Person(f"p{i}") for i in range(9)])
        store.stabilize()
        store.flush()
        for child in store.engine.child.children:
            child.child.wal.close()
            child.child.heap.close()
            child.child.manifest.close()
        with open_store(f"sharded:2:file:{tmp_path / 'n'}",
                        registry=registry) as recovered:
            assert len(recovered.get_root("people")) == 9

    def test_store_close_surfaces_lost_async_commits(self, registry):
        child = FailingEngine()
        store = ObjectStore(registry=registry,
                            engine=PipelinedEngine(child, AsyncPolicy()))
        store.set_root("p", Person("first"))
        store.stabilize()
        store.flush()  # first commit lands
        store.get_root("p").name = "second"
        store.stabilize()  # enqueued; the child will refuse it
        with pytest.raises(CommitPipelineError):
            store.close()
        assert store.is_closed  # closed either way, never half-open
