"""The stabilise encode pipeline: chunk planning, the encoder pool,
mid-stream failure atomicity, and codec round trips over every backend.

The pipeline's contract is that parallel encode is *invisible* except
in speed: a stabilise that fails mid-encode leaves no partial
bookkeeping (signatures, shadows, engine state), and a store written
with any worker count or codec reads back identically under any other.
"""

from __future__ import annotations

import pytest

from repro.store.commit.encode import (
    DEFAULT_CHUNK_RECORDS,
    EncodedRecord,
    EncoderPool,
    encode_record,
    plan_chunks,
)
from repro.store.objectstore import ObjectStore
from repro.store.serializer import (
    CODEC_ZLIB,
    Record,
    RecordCodec,
    is_framed,
)

from tests.conftest import Person
from tests.store.conftest import ENGINE_PARAMS, make_engine

#: Enough records to split into several chunks (> DEFAULT_CHUNK_RECORDS),
#: so stabilise actually exercises the pooled path.
BULK = DEFAULT_CHUNK_RECORDS * 3 + 5


def bulk_people(store, count=BULK):
    people = [Person("p%04d" % i) for i in range(count)]
    store.set_root("people", people)
    return people


def value_records(count):
    from repro.store.oids import Oid
    from repro.store.serializer import KIND_LIST
    return [Record(Oid(i + 1), KIND_LIST, "", "", ["v%d" % i])
            for i in range(count)]


class TestPlanChunks:
    def test_walk_order_split(self):
        records = value_records(10)
        chunks = plan_chunks(records, 4)
        assert [len(c) for c in chunks] == [4, 4, 2]
        assert [r.oid for c in chunks for r in c] \
            == [r.oid for r in records]

    def test_empty_input(self):
        assert plan_chunks([], 4) == []

    def test_group_alignment(self):
        # With a grouper (a sharded engine's shard_of), every chunk is
        # single-group, so each encoded chunk's writes land on one shard.
        records = value_records(20)
        chunks = plan_chunks(records, 3, group_of=lambda oid: int(oid) % 4)
        assert chunks  # grouped and split
        for chunk in chunks:
            groups = {int(r.oid) % 4 for r in chunk}
            assert len(groups) == 1
        flat = sorted(int(r.oid) for c in chunks for r in c)
        assert flat == sorted(int(r.oid) for r in records)

    def test_group_larger_than_chunk_splits(self):
        records = value_records(10)
        chunks = plan_chunks(records, 4, group_of=lambda oid: 0)
        assert [len(c) for c in chunks] == [4, 4, 2]


class TestEncodeRecord:
    def test_signature_is_over_raw_bytes(self):
        import zlib as _zlib
        record = value_records(1)[0]
        raw = record.to_bytes()
        codec = RecordCodec(CODEC_ZLIB, 6)
        plain = encode_record(record, None)
        framed = encode_record(record, codec)
        # The dirty filter compares signatures over *raw* bytes whatever
        # codec is in force — that is what lets legacy and compressed
        # stores interoperate without re-writing each other's records.
        assert plain.sig == framed.sig == (len(raw), _zlib.crc32(raw))
        assert plain.raw_len == framed.raw_len == len(raw)


class TestEncoderPool:
    def test_small_sets_encode_inline(self):
        pool = EncoderPool(workers=4, chunk_records=8)
        records = value_records(8)  # == one chunk: stays inline
        chunks = list(pool.encode_stream(records, None))
        assert not pool.started
        assert sorted(int(e.oid) for c in chunks for e in c) \
            == [int(r.oid) for r in records]

    def test_workers_zero_never_starts_threads(self):
        pool = EncoderPool(workers=0, chunk_records=4)
        chunks = list(pool.encode_stream(value_records(50), None))
        assert not pool.started
        assert sum(len(c) for c in chunks) == 50

    def test_large_sets_use_the_pool_and_cover_every_record(self):
        pool = EncoderPool(workers=2, chunk_records=4)
        try:
            records = value_records(30)
            chunks = list(pool.encode_stream(records, None))
            assert pool.started
            seen = sorted(int(e.oid) for c in chunks for e in c)
            assert seen == [int(r.oid) for r in records]
            for chunk in chunks:
                assert all(isinstance(e, EncodedRecord) for e in chunk)
        finally:
            pool.close()

    def test_pool_restarts_after_close(self):
        pool = EncoderPool(workers=1, chunk_records=2)
        list(pool.encode_stream(value_records(10), None))
        assert pool.started
        pool.close()
        assert not pool.started
        chunks = list(pool.encode_stream(value_records(10), None))
        assert sum(len(c) for c in chunks) == 10
        pool.close()

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="encode_workers"):
            EncoderPool(workers=-1)

    def test_bad_chunk_records_rejected(self):
        with pytest.raises(ValueError, match="chunk_records"):
            EncoderPool(workers=1, chunk_records=0)


class TestEncodeFailureAtomicity:
    """A chunk that raises mid-stream must abort the whole stabilise
    with no partial bookkeeping — and the next stabilise must succeed."""

    @pytest.fixture
    def failing_encode(self, monkeypatch):
        """Make every second chunk raise, after the first succeeded."""
        import repro.store.commit.encode as encode_mod
        real = encode_mod.encode_chunk
        calls = {"n": 0}

        def flaky(chunk, codec):
            calls["n"] += 1
            if calls["n"] % 2 == 0:
                raise RuntimeError("injected encode failure")
            return real(chunk, codec)

        monkeypatch.setattr(encode_mod, "encode_chunk", flaky)
        return calls

    def test_failure_rolls_back_and_next_stabilize_succeeds(
            self, tmp_path, registry, failing_encode, monkeypatch):
        with ObjectStore(str(tmp_path / "s"), registry,
                         encode_workers=2) as store:
            people = bulk_people(store)
            sigs_before = dict(store._stored_sig)
            shadows_before = set(store._shadow)
            with pytest.raises(RuntimeError, match="injected"):
                store.stabilize()
            # No signature or shadow from the aborted walk survived.
            assert store._stored_sig == sigs_before
            assert set(store._shadow) == shadows_before
            # Heal the injection: the pool itself must not be poisoned.
            monkeypatch.undo()
            written = store.stabilize()
            assert written >= BULK
            assert store.verify_referential_integrity() == []
        with ObjectStore.open(str(tmp_path / "s"),
                              registry=registry) as store:
            assert [p.name for p in store.get_root("people")[:3]] \
                == [p.name for p in people[:3]]

    def test_failed_stabilize_persists_nothing_new(
            self, tmp_path, registry, failing_encode):
        with ObjectStore(str(tmp_path / "s"), registry,
                         encode_workers=2) as store:
            stored_before = set(store.engine.oids())
            bulk_people(store)
            with pytest.raises(RuntimeError, match="injected"):
                store.stabilize()
        # Nothing from the aborted commit reached the engine durably.
        with ObjectStore.open(str(tmp_path / "s"),
                              registry=registry) as store:
            assert set(store.engine.oids()) == stored_before
            assert not store.has_root("people")


class TestCodecAcrossBackends:
    @pytest.mark.parametrize("kind", ENGINE_PARAMS)
    def test_compressed_round_trip(self, kind, tmp_path, registry):
        engine = make_engine(kind, tmp_path)
        with ObjectStore(registry=registry, engine=engine,
                         compress="zlib:1") as store:
            people = bulk_people(store)
            Person.marry(people[0], people[1])
            store.stabilize()
            stats = store.stats()
            assert stats["compressed_bytes"] <= stats["encoded_bytes"]
            # Close only the store; in-memory engines would lose data.
            assert store.get_root("people")[0].spouse is people[1]
            assert store.verify_referential_integrity() == []

    @pytest.mark.parametrize("spec", ["zlib:1", "lzma:0"])
    def test_reopen_plain_after_compressed(self, spec, tmp_path, registry):
        url = str(tmp_path / "s")
        with ObjectStore(url, registry, compress=spec) as store:
            bulk_people(store)
            store.stabilize()
        # A plain (legacy) open decodes framed records transparently.
        with ObjectStore.open(url, registry=registry) as store:
            assert len(store.get_root("people")) == BULK
            assert store.verify_referential_integrity() == []
            # ... and re-stabilising under no codec doesn't rewrite
            # unchanged records: the signature is over raw bytes.
            assert store.stabilize() == 0

    def test_reopen_compressed_after_plain(self, tmp_path, registry):
        url = str(tmp_path / "s")
        with ObjectStore.open(url, registry=registry) as store:
            bulk_people(store)
            store.stabilize()
        with ObjectStore(url, registry, compress="zlib:6") as store:
            assert len(store.get_root("people")) == BULK
            # Unchanged records are not re-written just to compress them.
            assert store.stabilize() == 0

    def test_framed_records_actually_on_disk(self, tmp_path, registry):
        with ObjectStore(str(tmp_path / "s"), registry,
                         compress="zlib:1") as store:
            # A long compressible string comfortably over the 64-byte
            # framing floor.
            store.set_root("text", ["persistence " * 50])
            store.stabilize()
            framed = [oid for oid in store.engine.oids()
                      if is_framed(store.engine.read(oid))]
            assert framed, "expected at least one framed record on disk"


class TestStabilizePhaseStats:
    def test_phase_counters_accumulate(self, tmp_path, registry):
        with ObjectStore.open(str(tmp_path / "s"),
                              registry=registry) as store:
            bulk_people(store)
            store.stabilize()
            stats = store.stats()
            assert stats["walk_ns"] > 0
            assert stats["encode_ns"] > 0
            assert stats["commit_ns"] > 0
            assert stats["encoded_bytes"] > 0
            # No codec: stored volume equals raw volume.
            assert stats["compressed_bytes"] == stats["encoded_bytes"]

    def test_compression_shrinks_stored_volume(self, tmp_path, registry):
        with ObjectStore(str(tmp_path / "s"), registry,
                         compress="zlib:1") as store:
            store.set_root("text", ["compress me " * 100
                                    for _ in range(8)])
            store.stabilize()
            stats = store.stats()
            assert 0 < stats["compressed_bytes"] < stats["encoded_bytes"]

    def test_clean_restabilize_adds_no_encode_volume(self, tmp_path,
                                                     registry):
        with ObjectStore.open(str(tmp_path / "s"),
                              registry=registry) as store:
            bulk_people(store)
            store.stabilize()
            encoded = store.stats()["encoded_bytes"]
            rebuilds = store.stats()["weak_rebuilds"]
            assert store.stabilize() == 0
            assert store.stats()["encoded_bytes"] == encoded
            assert store.stats()["weak_rebuilds"] == rebuilds


class TestEncodeWorkersConfiguration:
    def test_workers_zero_store_never_starts_threads(self, tmp_path,
                                                     registry):
        with ObjectStore(str(tmp_path / "s"), registry,
                         encode_workers=0) as store:
            bulk_people(store)
            store.stabilize()
            assert not store._encoder.started
            assert store.verify_referential_integrity() == []

    def test_parallel_and_serial_stores_read_identically(self, tmp_path,
                                                         registry):
        url = str(tmp_path / "s")
        with ObjectStore(url, registry, encode_workers=4) as store:
            bulk_people(store)
            store.stabilize()
            assert store._encoder.started  # bulk set went through the pool
        with ObjectStore(url, registry, encode_workers=0) as store:
            assert len(store.get_root("people")) == BULK
            assert store.stabilize() == 0
