"""Test package (imported as ``tests.store`` everywhere, so fixtures and test
modules share one module instance — and one set of registered classes)."""
