"""Write-ahead log: framing, commit atomicity, torn-tail tolerance."""

import os

import pytest

from repro.store.oids import Oid
from repro.store.wal import (
    ENTRY_BEGIN,
    ENTRY_COMMIT,
    ENTRY_DELETE,
    ENTRY_NEXT_OID,
    ENTRY_ROOT,
    ENTRY_UNROOT,
    ENTRY_WRITE,
    LogEntry,
    WriteAheadLog,
)


@pytest.fixture
def wal(tmp_path):
    with WriteAheadLog(str(tmp_path / "test.wal")) as log:
        yield log


class TestEntryCodec:
    def test_write_entry_roundtrip(self):
        entry = LogEntry(ENTRY_WRITE, 7, Oid(3), b"payload")
        back = LogEntry.decode(entry.encode())
        assert (back.kind, back.txn_id, back.oid, back.data) == \
            (ENTRY_WRITE, 7, 3, b"payload")

    def test_root_entry_roundtrip(self):
        entry = LogEntry(ENTRY_ROOT, 1, Oid(9), b"", "my root ⟦")
        back = LogEntry.decode(entry.encode())
        assert back.name == "my root ⟦" and back.oid == 9

    def test_unroot_entry_roundtrip(self):
        entry = LogEntry(ENTRY_UNROOT, 2, Oid(0), b"", "gone")
        back = LogEntry.decode(entry.encode())
        assert back.kind == ENTRY_UNROOT and back.name == "gone"

    def test_bare_entries(self):
        for kind in (ENTRY_BEGIN, ENTRY_COMMIT):
            back = LogEntry.decode(LogEntry(kind, 5).encode())
            assert back.kind == kind and back.txn_id == 5


class TestCommitAtomicity:
    def test_committed_batch_returned(self, wal):
        wal.append(LogEntry(ENTRY_BEGIN, 1))
        wal.append(LogEntry(ENTRY_WRITE, 1, Oid(1), b"a"))
        wal.commit(1)
        batches = wal.committed_batches()
        assert len(batches) == 1
        assert batches[0][0].data == b"a"

    def test_uncommitted_batch_discarded(self, wal):
        wal.append(LogEntry(ENTRY_BEGIN, 1))
        wal.append(LogEntry(ENTRY_WRITE, 1, Oid(1), b"a"))
        wal.sync()
        assert wal.committed_batches() == []

    def test_batches_in_commit_order(self, wal):
        wal.append(LogEntry(ENTRY_BEGIN, 1))
        wal.append(LogEntry(ENTRY_WRITE, 1, Oid(1), b"first"))
        wal.append(LogEntry(ENTRY_BEGIN, 2))
        wal.append(LogEntry(ENTRY_WRITE, 2, Oid(2), b"second"))
        wal.commit(2)
        wal.commit(1)
        batches = wal.committed_batches()
        assert [batch[0].data for batch in batches] == [b"second", b"first"]

    def test_truncate_clears_log(self, wal):
        wal.append(LogEntry(ENTRY_BEGIN, 1))
        wal.commit(1)
        wal.truncate()
        assert wal.committed_batches() == []
        assert wal.size() == 0

    def test_mixed_entry_kinds_in_batch(self, wal):
        wal.append(LogEntry(ENTRY_BEGIN, 3))
        wal.append(LogEntry(ENTRY_WRITE, 3, Oid(1), b"w"))
        wal.append(LogEntry(ENTRY_DELETE, 3, Oid(2)))
        wal.append(LogEntry(ENTRY_ROOT, 3, Oid(1), b"", "r"))
        wal.append(LogEntry(ENTRY_NEXT_OID, 3, Oid(50)))
        wal.commit(3)
        kinds = [entry.kind for entry in wal.committed_batches()[0]]
        assert kinds == [ENTRY_WRITE, ENTRY_DELETE, ENTRY_ROOT,
                         ENTRY_NEXT_OID]


class TestTornTail:
    def _write_committed(self, path: str) -> None:
        with WriteAheadLog(path) as log:
            log.append(LogEntry(ENTRY_BEGIN, 1))
            log.append(LogEntry(ENTRY_WRITE, 1, Oid(1), b"safe"))
            log.commit(1)

    def test_truncated_tail_keeps_committed_prefix(self, tmp_path):
        path = str(tmp_path / "torn.wal")
        self._write_committed(path)
        with open(path, "ab") as fh:
            fh.write(b"\x50\x00\x00\x00")  # frame header promising 80 bytes
        with WriteAheadLog(path) as log:
            batches = log.committed_batches()
        assert len(batches) == 1
        assert batches[0][0].data == b"safe"

    def test_corrupt_crc_ends_replay(self, tmp_path):
        path = str(tmp_path / "crc.wal")
        self._write_committed(path)
        size = os.path.getsize(path)
        self._write_committed_second(path)
        # Flip a byte inside the second batch's frames.
        with open(path, "r+b") as fh:
            fh.seek(size + 12)
            byte = fh.read(1)
            fh.seek(size + 12)
            fh.write(bytes([byte[0] ^ 0xFF]))
        with WriteAheadLog(path) as log:
            batches = log.committed_batches()
        assert len(batches) == 1  # only the first batch survives

    def _write_committed_second(self, path: str) -> None:
        with WriteAheadLog(path) as log:
            log.append(LogEntry(ENTRY_BEGIN, 2))
            log.append(LogEntry(ENTRY_WRITE, 2, Oid(2), b"doomed"))
            log.commit(2)

    def test_empty_log_has_no_batches(self, wal):
        assert wal.committed_batches() == []
