"""Multi-threaded fetch: the read-serving subsystem under contention.

Runs against every backend the ``store`` fixture is parametrized over
(file, memory, sqlite, sharded-file, sharded-sqlite, file-group,
sharded-async): N threads race ``object_for`` over overlapping OID
sets, race ``stabilize()`` and ``collect_garbage()``, and hammer
``refresh()`` — asserting identity-map uniqueness (every thread gets
the *same* object per OID), no torn shells (every materialised object
carries complete, consistent state), and no leaked exceptions.

Also the unit tests for the pieces: the writer-preferring
:class:`~repro.store.serve.locks.ReadWriteLock`, the
:class:`~repro.store.serve.prefetch.FetchPlanner`'s wave shape, and
the ``cache_objects`` bound (a full-graph walk leaves at most N clean
objects strongly held — verified with :mod:`weakref` and :mod:`gc`).
"""

from __future__ import annotations

import gc
import random
import threading
import time
import weakref

import pytest

from repro.store import open_store
from repro.store.serve.locks import ReadWriteLock
from repro.store.serve.prefetch import FetchPlanner

from tests.conftest import Person

N_THREADS = 8


def populate_chains(store, clusters=10, chain=6):
    """Clusters of ``spouse``-linked Person chains; returns
    ``{name: oid}`` for every node."""
    heads = []
    people = []
    for cluster in range(clusters):
        nodes = [Person(f"c{cluster}n{index}") for index in range(chain)]
        for left, right in zip(nodes, nodes[1:]):
            left.spouse = right
        heads.append(nodes[0])
        people.extend(nodes)
    store.set_root("heads", heads)
    store.stabilize()
    return {person.name: store.oid_of(person) for person in people}


def run_threads(workers):
    errors = []

    def wrap(fn):
        def run():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)
        return run

    threads = [threading.Thread(target=wrap(fn)) for fn in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


class TestConcurrentFetch:
    def test_threads_racing_object_for_share_identity(self, store):
        oids = populate_chains(store)
        store.evict_all()
        barrier = threading.Barrier(N_THREADS, timeout=15)
        fetched = [dict() for _ in range(N_THREADS)]

        def reader(index):
            def run():
                rng = random.Random(index)
                keys = list(oids.items())
                rng.shuffle(keys)
                barrier.wait()
                for name, oid in keys:
                    obj = store.object_for(oid)
                    fetched[index][name] = obj
            return run

        run_threads([reader(index) for index in range(N_THREADS)])

        # Identity: one live object per OID, whoever fetched it.
        for name in oids:
            first = fetched[0][name]
            for per_thread in fetched[1:]:
                assert per_thread[name] is first
        # No torn shells: names filled, chain links intact.
        for name, oid in oids.items():
            obj = fetched[0][name]
            assert obj.name == name
            cluster, index = name[1:].split("n")
            successor = f"c{cluster}n{int(index) + 1}"
            if successor in oids:
                assert obj.spouse is fetched[0][successor]
            else:
                assert obj.spouse is None

    def test_readers_race_stabilize(self, store):
        oids = populate_chains(store, clusters=6, chain=5)
        store.evict_all()
        stop = threading.Event()

        def reader(seed):
            def run():
                rng = random.Random(seed)
                keys = list(oids.values())
                while not stop.is_set():
                    obj = store.object_for(rng.choice(keys))
                    assert obj.name  # materialised, never torn
            return run

        def writer():
            try:
                for round_no in range(12):
                    heads = store.get_root("heads")
                    heads.append(Person(f"extra{round_no}"))
                    store.stabilize()
            finally:
                stop.set()

        run_threads([reader(seed) for seed in range(N_THREADS - 1)]
                    + [writer])
        store.flush()
        assert store.verify_referential_integrity() == []

    def test_readers_race_collect_garbage(self, store):
        keep = populate_chains(store, clusters=4, chain=4)
        junk = [Person(f"junk{index}") for index in range(10)]
        store.set_root("junk", junk)
        store.stabilize()
        del junk
        store.evict_all()
        stop = threading.Event()

        def reader(seed):
            def run():
                rng = random.Random(seed)
                keys = list(keep.values())
                while not stop.is_set():
                    obj = store.object_for(rng.choice(keys))
                    assert obj.name.startswith("c")
            return run

        def collector():
            try:
                store.delete_root("junk")
                for _ in range(3):
                    store.collect_garbage()
                    time.sleep(0.005)
            finally:
                stop.set()

        run_threads([reader(seed) for seed in range(4)] + [collector])
        # The kept graph survived; the junk subtree is gone.
        for name, oid in keep.items():
            assert store.object_for(oid).name == name
        assert store.verify_referential_integrity() == []

    def test_refresh_is_atomic_under_concurrent_fetch(self, store):
        person = Person("stable")
        store.set_root("p", person)
        store.stabilize()
        oid = store.oid_of(person)
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                obj = store.object_for(oid)
                # The one invariant refresh must keep: whatever instance
                # a reader sees, it is whole — a half-installed shell
                # would have no name yet.
                assert obj.name == "stable"

        def refresher():
            try:
                for _ in range(40):
                    current = store.object_for(oid)
                    fresh = store.refresh(current)
                    # Atomic evict+refault: the new instance is bound
                    # the moment refresh returns.
                    assert store.object_for(oid) is fresh
            finally:
                stop.set()

        run_threads([reader for _ in range(4)] + [refresher])


class TestReadWriteLock:
    def test_readers_share(self):
        lock = ReadWriteLock()
        inside = threading.Barrier(3, timeout=5)

        def reader():
            with lock.read_locked():
                inside.wait()  # all three readers inside simultaneously

        run_threads([reader] * 3)

    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        order = []
        entered = threading.Event()

        def writer():
            with lock.write_locked():
                entered.set()
                time.sleep(0.05)
                order.append("writer")

        def reader():
            entered.wait(5)
            with lock.read_locked():
                order.append("reader")

        run_threads([writer, reader])
        assert order == ["writer", "reader"]

    def test_waiting_writer_blocks_new_readers(self):
        lock = ReadWriteLock()
        order = []
        reader_in = threading.Event()
        writer_waiting = threading.Event()

        def first_reader():
            with lock.read_locked():
                reader_in.set()
                # Hold until the writer is queued and a second reader
                # has had a chance to try to barge past it.
                writer_waiting.wait(5)
                time.sleep(0.05)

        def writer():
            reader_in.wait(5)
            writer_waiting.set()
            with lock.write_locked():
                order.append("writer")

        def late_reader():
            writer_waiting.wait(5)
            # Arrive strictly after the writer is queued on the lock.
            deadline = time.monotonic() + 5
            while lock._writers_waiting == 0 \
                    and time.monotonic() < deadline:
                time.sleep(0.001)
            with lock.read_locked():
                order.append("late-reader")

        run_threads([first_reader, writer, late_reader])
        # Writer preference: the late reader may not overtake the
        # queued writer.
        assert order == ["writer", "late-reader"]

    def test_read_reentrant(self):
        lock = ReadWriteLock()
        with lock.read_locked():
            with lock.read_locked():
                assert lock.read_held
        assert not lock.read_held

    def test_write_reentrant_and_read_within_write(self):
        lock = ReadWriteLock()
        with lock.write_locked():
            with lock.write_locked():
                with lock.read_locked():
                    assert lock.write_held
        assert not lock.write_held

    def test_upgrade_refused(self):
        lock = ReadWriteLock()
        with lock.read_locked():
            with pytest.raises(RuntimeError, match="upgrade"):
                lock.acquire_write()

    def test_unbalanced_releases_refused(self):
        lock = ReadWriteLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()

    def test_seqlock_epoch_tracks_write_sections(self):
        # The lock-free read fast path samples ``seq`` without the
        # mutex: it must be odd exactly while a writer holds the lock,
        # and each write section must advance it by two.
        lock = ReadWriteLock()
        assert lock.seq == 0
        with lock.write_locked():
            assert lock.seq % 2 == 1
            with lock.write_locked():  # re-entry: still one section
                assert lock.seq % 2 == 1
        assert lock.seq == 2
        with lock.read_locked():
            assert lock.seq == 2  # readers never touch the epoch
        with lock.write_locked():
            pass
        assert lock.seq == 4


class TestFetchPlanner:
    def test_waves_follow_graph_depth(self, store):
        oids = populate_chains(store, clusters=3, chain=5)
        store.evict_all()
        planner = FetchPlanner(store.engine)
        head = oids["c0n0"]
        plan = planner.closure([head], lambda oid: False)
        # One chain: five records, one wave per generation.
        assert len(plan) == 5
        assert plan.waves == 5

    def test_live_subgraphs_are_not_descended(self, store):
        oids = populate_chains(store, clusters=1, chain=4)
        store.evict_all()
        live = {oids["c0n2"], oids["c0n3"]}
        planner = FetchPlanner(store.engine)
        plan = planner.closure([oids["c0n0"]], lambda oid: oid in live)
        assert set(plan.records) == {oids["c0n0"], oids["c0n1"]}


class TestBoundedServing:
    """The acceptance bound: ``?cache_objects=N`` leaves at most N clean
    objects strongly held after a full-graph walk."""

    CAPACITY = 16

    def test_full_walk_leaves_at_most_n_strong(self, tmp_path, registry):
        url = f"file:{tmp_path / 's'}?cache_objects={self.CAPACITY}"
        with open_store(url, registry=registry) as store:
            chain = [Person(f"n{index}") for index in range(120)]
            for left, right in zip(chain, chain[1:]):
                left.spouse = right
            store.set_root("head", chain[0])
            store.stabilize()
            oids = [store.oid_of(person) for person in chain]
            del chain
            store.evict_all()

            refs = []
            for oid in oids:
                obj = store.object_for(oid)
                refs.append(weakref.ref(obj))
                del obj
            gc.collect()

            alive = sum(1 for ref in refs if ref() is not None)
            assert alive <= self.CAPACITY
            assert store._identity.strong_count <= self.CAPACITY
            # The tail was demoted, not lost: everything re-faults.
            head = store.get_root("head")
            count = 0
            node = head
            while node is not None:
                count += 1
                node = node.spouse
            assert count == 120

    def test_dirty_objects_are_never_demoted(self, tmp_path, registry):
        url = f"file:{tmp_path / 's'}?cache_objects=4"
        with open_store(url, registry=registry) as store:
            people = [Person(f"p{index}") for index in range(12)]
            store.set_root("people", people)
            store.stabilize()
            oids = [store.oid_of(person) for person in people]
            del people
            store.evict_all()
            # Fetch and immediately mutate every object.  The strong set
            # fills with dirty objects the cap cannot trim: a dirty
            # victim is always refused demotion, so enforcement demotes
            # only the clean newcomers.
            held = []
            for index, oid in enumerate(oids):
                person = store.object_for(oid)
                person.name = f"renamed{index}"
                held.append(person)
            assert store._identity.strong_count == 4  # all four dirty
            assert store._identity.enforce_capacity() == 0
            written = store.stabilize()
            assert written >= len(oids)
            # Stabilised and clean: the renames are durable whichever
            # tier serves them now.
            with_store = [store.object_for(oid).name for oid in oids]
            assert with_store == [f"renamed{i}" for i in range(len(oids))]

    def test_concurrent_fetch_respects_bound(self, tmp_path, registry):
        url = f"sharded:3:file:{tmp_path / 'cluster'}?cache_objects=24"
        with open_store(url, registry=registry) as store:
            people = [Person(f"p{index}") for index in range(96)]
            store.set_root("people", people)
            store.stabilize()
            oids = [store.oid_of(person) for person in people]
            del people
            store.evict_all()

            def reader(seed):
                def run():
                    rng = random.Random(seed)
                    for _ in range(150):
                        oid = rng.choice(oids)
                        obj = store.object_for(oid)
                        assert obj.name.startswith("p")
                return run

            run_threads([reader(seed) for seed in range(6)])
            assert store._identity.strong_count <= 24