"""The manifest delta log: replay, crash injection between every phase
(WAL commit → apply → checkpoint → compaction), legacy-snapshot
migration, and durability-policy × crash coverage."""

import json
import os

import pytest

from repro.store import open_store
from repro.store.commit import AsyncPolicy, GroupPolicy, PipelinedEngine
from repro.store.engine import FileEngine, WriteBatch
from repro.store.engine.filesystem import (
    _MANIFEST_NAME,
    _META_NAME,
    ManifestLog,
)
from repro.store.oids import Oid

from tests.conftest import Person


def manifest_path(directory) -> str:
    return os.path.join(str(directory), _MANIFEST_NAME)


def crash(engine: FileEngine) -> None:
    """Abandon a file engine as a dying process would: drop the raw
    file handles directly, so nothing buffered — in particular the
    heap's dirty page cache, which ``HeapFile.close`` would flush —
    reaches disk.  Recovery must come from what was already durable."""
    engine.wal._file.close()
    engine.heap._file.close()
    engine.manifest._file.close()


def batch_for(oid: int, payload: bytes = b"x") -> WriteBatch:
    return WriteBatch().write(Oid(oid), payload)


class TestManifestLog:
    def test_append_load_roundtrip(self, tmp_path):
        log = ManifestLog(str(tmp_path / "m"))
        log.append({"kind": "base", "objects": {}})
        log.append({"kind": "delta", "set": {"1": [0, 0]}})
        log.sync()
        log.close()
        with ManifestLog(str(tmp_path / "m")) as reopened:
            kinds = [entry["kind"] for entry in reopened.load()]
        assert kinds == ["base", "delta"]

    def test_torn_tail_is_discarded_and_truncated(self, tmp_path):
        path = str(tmp_path / "m")
        log = ManifestLog(path)
        log.append({"kind": "delta", "set": {}})
        log.sync()
        log.close()
        good_size = os.path.getsize(path)
        with open(path, "ab") as fh:
            fh.write(os.urandom(11))  # a torn frame
        with ManifestLog(path) as reopened:
            assert len(reopened.load()) == 1
            # The torn bytes are gone; new appends land on a clean frame.
            reopened.append({"kind": "delta", "set": {"2": [0, 1]}})
            reopened.sync()
        assert os.path.getsize(path) > good_size
        with ManifestLog(path) as again:
            assert len(again.load()) == 2

    def test_rewrite_replaces_atomically(self, tmp_path):
        log = ManifestLog(str(tmp_path / "m"))
        for index in range(5):
            log.append({"kind": "delta", "set": {str(index): [0, index]}})
        log.rewrite({"kind": "base", "objects": {"compacted": [1, 2]}})
        entries = log.load()
        assert [entry["kind"] for entry in entries] == ["base"]
        log.close()


class TestCrashBetweenPhases:
    """One committed batch, killed at every point of the apply path:
    recovery must expose the whole batch (it was WAL-committed) and
    exactly once."""

    def populate(self, directory) -> FileEngine:
        engine = FileEngine(str(directory))
        engine.apply(WriteBatch().write(Oid(1), b"old-1")
                     .write(Oid(2), b"old-2")
                     .set_roots({"r": Oid(1)}).advance_next_oid(10))
        return engine

    def check_recovered(self, directory, expect_new: bool) -> None:
        with FileEngine(str(directory)) as recovered:
            if expect_new:
                assert recovered.read(Oid(1)) == b"new-1"
                assert recovered.read(Oid(3)) == b"new-3"
                assert recovered.next_oid == 20
            else:
                assert recovered.read(Oid(1)) == b"old-1"
                assert not recovered.contains(Oid(3))
                assert recovered.next_oid == 10
            assert recovered.read(Oid(2)) == b"old-2"
            assert recovered.roots() == {"r": Oid(1)}
            # Exactly once: no duplicate table entries, no residue.
            assert recovered.object_count == (3 if expect_new else 2)

    def next_batch(self) -> WriteBatch:
        return (WriteBatch().write(Oid(1), b"new-1")
                .write(Oid(3), b"new-3").advance_next_oid(20))

    def test_crash_before_wal_commit_loses_nothing_new(self, tmp_path):
        engine = self.populate(tmp_path / "s")
        # The batch never reaches log_batch: nothing to replay.
        crash(engine)
        self.check_recovered(tmp_path / "s", expect_new=False)

    def test_crash_after_wal_commit_before_apply(self, tmp_path):
        engine = self.populate(tmp_path / "s")
        engine.log_batch(self.next_batch())
        crash(engine)  # heap and manifest never saw the batch
        self.check_recovered(tmp_path / "s", expect_new=True)

    def test_crash_after_apply_with_unfsynced_delta_lost(self, tmp_path):
        """The manifest delta is buffered, not fsynced, at apply time;
        losing it to the crash must not lose the batch — the WAL still
        holds it."""
        engine = self.populate(tmp_path / "s")
        size_before = os.path.getsize(manifest_path(tmp_path / "s"))
        engine.apply(self.next_batch())
        crash(engine)
        # Simulate the unfsynced delta never reaching disk.
        with open(manifest_path(tmp_path / "s"), "ab") as fh:
            fh.truncate(size_before)
        self.check_recovered(tmp_path / "s", expect_new=True)

    def test_crash_after_apply_with_delta_on_disk(self, tmp_path):
        """Crash inside the checkpoint, after the manifest fsync but
        before the WAL truncate: the batch is in both — replay must be
        idempotent."""
        engine = self.populate(tmp_path / "s")
        engine.apply(self.next_batch())
        engine.heap.flush()
        engine.manifest.sync()
        crash(engine)  # WAL still holds the batch
        self.check_recovered(tmp_path / "s", expect_new=True)

    def test_crash_after_full_checkpoint(self, tmp_path):
        engine = self.populate(tmp_path / "s")
        engine.apply(self.next_batch())
        engine._checkpoint()
        crash(engine)
        self.check_recovered(tmp_path / "s", expect_new=True)

    def test_crash_between_compaction_tmp_and_replace(self, tmp_path):
        """Compaction writes store.manifest.tmp then renames; dying in
        between leaves the tmp file, which the next open ignores."""
        engine = self.populate(tmp_path / "s")
        engine.apply(self.next_batch())
        engine._checkpoint()
        with open(manifest_path(tmp_path / "s") + ".tmp", "wb") as fh:
            fh.write(b"half-written base entry")
        crash(engine)
        self.check_recovered(tmp_path / "s", expect_new=True)

    def test_crash_after_compaction_replace(self, tmp_path):
        engine = self.populate(tmp_path / "s")
        engine.apply(self.next_batch())
        engine._checkpoint()
        engine.compact_manifest()
        crash(engine)
        with ManifestLog(manifest_path(tmp_path / "s")) as manifest:
            assert [e["kind"] for e in manifest.load()] == ["base"]
        self.check_recovered(tmp_path / "s", expect_new=True)


class TestCheckpointPolicy:
    def test_wal_threshold_triggers_checkpoint(self, tmp_path):
        engine = FileEngine(str(tmp_path / "s"), checkpoint_wal_bytes=1)
        engine.apply(batch_for(1))
        # Every apply crosses the 1-byte threshold: the WAL is truncated
        # and the manifest delta fsynced each time.
        assert engine.wal.size() == 0
        engine.close()

    def test_wal_below_threshold_defers_checkpoint(self, tmp_path):
        engine = FileEngine(str(tmp_path / "s"),
                            checkpoint_wal_bytes=1 << 30)
        for oid in range(1, 6):
            engine.apply(batch_for(oid))
        assert engine.wal.size() > 0  # five batches still in the log
        engine.close()  # close checkpoints
        with FileEngine(str(tmp_path / "s")) as reopened:
            assert reopened.wal.size() == 0
            assert reopened.object_count == 5

    def test_compaction_threshold_folds_deltas(self, tmp_path):
        engine = FileEngine(str(tmp_path / "s"), checkpoint_wal_bytes=1,
                            manifest_compact_deltas=4)
        for oid in range(1, 10):
            engine.apply(batch_for(oid))
        engine.close()
        with ManifestLog(manifest_path(tmp_path / "s")) as manifest:
            kinds = [entry["kind"] for entry in manifest.load()]
        # Compacted at least once: a base leads, few deltas trail.
        assert kinds[0] == "base"
        assert kinds.count("delta") < 9
        with FileEngine(str(tmp_path / "s")) as reopened:
            assert reopened.object_count == 9

    def test_bad_thresholds_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_wal_bytes"):
            FileEngine(str(tmp_path / "a"), checkpoint_wal_bytes=0)
        with pytest.raises(ValueError, match="manifest_compact_deltas"):
            FileEngine(str(tmp_path / "b"), manifest_compact_deltas=0)


class TestReplayEquivalence:
    """The same batch sequence through aggressive checkpoint/compaction
    and through none at all must converge to identical visible state —
    and to the same state the legacy full-snapshot format reloads."""

    def run_workload(self, engine: FileEngine) -> None:
        engine.apply(WriteBatch().write(Oid(1), b"a").write(Oid(2), b"b")
                     .set_roots({"r": Oid(1)}).advance_next_oid(10))
        engine.apply(WriteBatch().write(Oid(1), b"a2").delete(Oid(2)))
        engine.apply(WriteBatch().write(Oid(3), b"c")
                     .set_roots({"r": Oid(1), "s": Oid(3)})
                     .advance_next_oid(20))

    def state_of(self, directory) -> tuple:
        with FileEngine(str(directory)) as engine:
            return (
                {int(oid): engine.read(oid) for oid in engine.oids()},
                {name: int(oid) for name, oid in engine.roots().items()},
                engine.next_oid,
            )

    def test_checkpoint_paths_agree(self, tmp_path):
        eager = FileEngine(str(tmp_path / "eager"), checkpoint_wal_bytes=1,
                           manifest_compact_deltas=1)
        lazy = FileEngine(str(tmp_path / "lazy"),
                          checkpoint_wal_bytes=1 << 30)
        self.run_workload(eager)
        self.run_workload(lazy)
        eager.close()
        crash(lazy)  # lazy path additionally recovers through the WAL
        assert self.state_of(tmp_path / "eager") \
            == self.state_of(tmp_path / "lazy")

    def test_legacy_snapshot_migrates_to_manifest(self, tmp_path):
        """A format-2 ``store.meta`` snapshot (the pre-manifest layout)
        loads identically, is re-homed as the manifest base, and the
        legacy file is removed."""
        directory = tmp_path / "s"
        engine = FileEngine(str(directory))
        self.run_workload(engine)
        engine.compact_manifest()
        engine.close()
        reference = self.state_of(directory)
        # Rewrite the metadata in the legacy format from the manifest
        # base, then delete the manifest: this is a pre-upgrade store.
        with ManifestLog(manifest_path(directory)) as manifest:
            base = manifest.load()[0]
        legacy = {
            "format": 2,
            "next_oid": base["next_oid"],
            "roots": base["roots"],
            "objects": base["objects"],
        }
        meta_path = os.path.join(str(directory), _META_NAME)
        with open(meta_path, "w", encoding="utf-8") as fh:
            json.dump(legacy, fh)
        os.remove(manifest_path(directory))
        assert self.state_of(directory) == reference
        assert not os.path.exists(meta_path)  # migrated away
        with ManifestLog(manifest_path(directory)) as manifest:
            assert manifest.load()[0]["kind"] == "base"

    def test_format1_signatures_ignored(self, tmp_path):
        directory = tmp_path / "s"
        engine = FileEngine(str(directory))
        engine.apply(batch_for(1, b"one"))
        engine.compact_manifest()
        engine.close()
        with ManifestLog(manifest_path(directory)) as manifest:
            base = manifest.load()[0]
        legacy = {
            "format": 1,
            "next_oid": base["next_oid"],
            "roots": base["roots"],
            "objects": base["objects"],
            "signatures": {"1": [3, 12345]},
        }
        with open(os.path.join(str(directory), _META_NAME), "w",
                  encoding="utf-8") as fh:
            json.dump(legacy, fh)
        os.remove(manifest_path(directory))
        with FileEngine(str(directory)) as engine:
            assert engine.read(Oid(1)) == b"one"

    def test_migration_crash_leaves_both_files_consistent(self, tmp_path):
        """Crash between writing the manifest base and removing
        store.meta: both exist with the same content, manifest wins."""
        directory = tmp_path / "s"
        engine = FileEngine(str(directory))
        engine.apply(batch_for(1, b"one"))
        engine.compact_manifest()
        engine.close()
        with ManifestLog(manifest_path(directory)) as manifest:
            base = manifest.load()[0]
        legacy = {"format": 2, "next_oid": base["next_oid"],
                  "roots": base["roots"], "objects": base["objects"]}
        with open(os.path.join(str(directory), _META_NAME), "w",
                  encoding="utf-8") as fh:
            json.dump(legacy, fh)
        # Both store.meta and store.manifest now exist.
        with FileEngine(str(directory)) as engine:
            assert engine.read(Oid(1)) == b"one"


class TestPolicyCrashMatrix:
    """Every durability policy × a crash right after its acknowledgement
    point: an acknowledged commit (a resolved future) is never lost."""

    @pytest.mark.parametrize("policy_name", ["sync", "group", "async"])
    def test_acknowledged_commits_survive(self, tmp_path, policy_name):
        directory = str(tmp_path / "s")
        child = FileEngine(directory)
        if policy_name == "sync":
            engine: FileEngine = child
            engine.apply(batch_for(1, b"acked"))
            crash(engine)
        else:
            policy = (GroupPolicy() if policy_name == "group"
                      else AsyncPolicy())
            wrapped = PipelinedEngine(child, policy)
            ticket = wrapped.apply_async(batch_for(1, b"acked"))
            ticket.result(timeout=10.0)  # the acknowledgement point
            crash(child)  # die without closing the pipeline
        with FileEngine(directory) as recovered:
            assert recovered.read(Oid(1)) == b"acked"

    @pytest.mark.parametrize("policy_name", ["group", "async"])
    def test_unacknowledged_batches_may_only_lose_a_suffix(
            self, tmp_path, policy_name):
        """Recovery yields a *prefix* of submissions: batches are
        committed in order, so whatever survives is a clean prefix."""
        directory = str(tmp_path / "s")
        child = FileEngine(directory)
        policy = (GroupPolicy() if policy_name == "group"
                  else AsyncPolicy())
        wrapped = PipelinedEngine(child, policy)
        tickets = [wrapped.apply_async(batch_for(oid, b"p"))
                   for oid in range(1, 31)]
        crash(child)  # no flush, no close
        acked = {index + 1 for index, ticket in enumerate(tickets)
                 if ticket.done and ticket.exception() is None}
        with FileEngine(directory) as recovered:
            present = {int(oid) for oid in recovered.oids()}
        # Every acknowledged batch survived...
        assert acked <= present
        # ...and the survivors form a prefix of the submission order.
        assert present == set(range(1, len(present) + 1))

    def test_store_over_group_policy_recovers_after_crash(self, tmp_path,
                                                          registry):
        directory = str(tmp_path / "s")
        url = f"file:{directory}?durability=group"
        store = open_store(url, registry=registry)
        store.set_root("people", [Person(f"p{i}") for i in range(12)])
        store.stabilize()
        crash(store.engine.child)  # die mid-session, pipeline unflushed
        with open_store(url, registry=registry) as recovered:
            assert len(recovered.get_root("people")) == 12
            assert recovered.verify_referential_integrity() == []
