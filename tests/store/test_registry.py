"""Class registry: qualified names, declared fields, schema fingerprints,
converters — the typed-fidelity backbone."""

import pytest

from repro.errors import ClassNotRegisteredError, SchemaMismatchError
from repro.store.registry import (
    ClassRegistry,
    declared_fields,
    persistent,
    qualified_name,
    schema_fingerprint,
)


class Annotated:
    name: str
    value: int


class Slotted:
    __slots__ = ("a", "b")


class SlottedChild(Slotted):
    __slots__ = ("c",)


class AnnotatedChild(Annotated):
    extra: float


class Bare:
    pass


class TestDeclaredFields:
    def test_annotations_in_declaration_order(self):
        assert declared_fields(Annotated) == ("name", "value")

    def test_slots_win_over_annotations(self):
        class Both:
            __slots__ = ("x",)
            y: int
        assert declared_fields(Both) == ("x",)

    def test_inherited_slots_base_first(self):
        assert declared_fields(SlottedChild) == ("a", "b", "c")

    def test_inherited_annotations_base_first(self):
        assert declared_fields(AnnotatedChild) == ("name", "value", "extra")

    def test_private_annotations_excluded(self):
        class WithPrivate:
            public: int
            _private: int
        assert declared_fields(WithPrivate) == ("public",)

    def test_bare_class_declares_nothing(self):
        assert declared_fields(Bare) == ()


class TestFingerprint:
    def test_same_class_same_fingerprint(self):
        assert schema_fingerprint(Annotated) == schema_fingerprint(Annotated)

    def test_fingerprint_covers_fields(self):
        a = schema_fingerprint(Annotated, ("name", "value"))
        b = schema_fingerprint(Annotated, ("name",))
        assert a != b

    def test_fingerprint_covers_class_name(self):
        assert schema_fingerprint(Annotated) != schema_fingerprint(Slotted)

    def test_fingerprint_is_short_hex(self):
        fp = schema_fingerprint(Annotated)
        assert len(fp) == 16
        int(fp, 16)  # parses as hex


class TestRegistration:
    def test_register_and_lookup_by_class(self):
        reg = ClassRegistry()
        entry = reg.register(Annotated)
        assert reg.entry_for_class(Annotated) is entry
        assert reg.is_registered(Annotated)

    def test_lookup_by_name(self):
        reg = ClassRegistry()
        entry = reg.register(Annotated)
        assert reg.entry_for_name(qualified_name(Annotated)) is entry

    def test_unregistered_class_raises(self):
        reg = ClassRegistry()
        with pytest.raises(ClassNotRegisteredError):
            reg.entry_for_class(Bare)

    def test_unregistered_name_raises(self):
        reg = ClassRegistry()
        with pytest.raises(ClassNotRegisteredError):
            reg.entry_for_name("no.such.Class")

    def test_register_is_idempotent(self):
        reg = ClassRegistry()
        reg.register(Annotated)
        reg.register(Annotated)
        assert reg.names().count(qualified_name(Annotated)) == 1

    def test_reregistration_supersedes_old_class(self):
        reg = ClassRegistry()
        reg.register(Annotated)

        class Replacement:
            name: str
            value: int
        Replacement.__module__ = Annotated.__module__
        Replacement.__qualname__ = Annotated.__qualname__
        reg.register(Replacement)
        assert reg.entry_for_name(qualified_name(Annotated)).cls \
            is Replacement
        assert not reg.is_registered(Annotated)

    def test_names_sorted(self):
        reg = ClassRegistry()
        reg.register(Slotted)
        reg.register(Annotated)
        assert list(reg.names()) == sorted(reg.names())


class TestFingerprintCheck:
    def test_matching_fingerprint_passes(self):
        reg = ClassRegistry()
        entry = reg.register(Annotated)
        assert reg.check_fingerprint(entry.name, entry.fingerprint) is entry

    def test_mismatch_raises_schema_error(self):
        reg = ClassRegistry()
        entry = reg.register(Annotated)
        with pytest.raises(SchemaMismatchError):
            reg.check_fingerprint(entry.name, "0" * 16)

    def test_converter_admits_old_fingerprint(self):
        reg = ClassRegistry()
        entry = reg.register(Annotated)
        reg.register_converter(Annotated, "0" * 16, lambda old: old)
        assert reg.check_fingerprint(entry.name, "0" * 16) is entry

    def test_converters_survive_reregistration(self):
        reg = ClassRegistry()
        reg.register(Annotated)
        reg.register_converter(Annotated, "0" * 16, lambda old: old)

        class Replacement:
            name: str
            value: int
        Replacement.__module__ = Annotated.__module__
        Replacement.__qualname__ = Annotated.__qualname__
        entry = reg.register(Replacement)
        assert "0" * 16 in entry.converters


class TestPersistentDecorator:
    def test_bare_decorator_uses_default_registry(self):
        from repro.store.registry import default_registry

        @persistent
        class Decorated:
            x: int
        assert default_registry.is_registered(Decorated)

    def test_decorator_with_explicit_registry(self):
        reg = ClassRegistry()

        @persistent(registry=reg)
        class Decorated:
            x: int
        assert reg.is_registered(Decorated)

    def test_decorator_returns_class_unchanged(self):
        reg = ClassRegistry()

        @persistent(registry=reg)
        class Decorated:
            x: int
        assert Decorated.__name__ == "Decorated"
        assert isinstance(Decorated, type)
