"""Property-based tests on the store's core invariants: arbitrary object
graphs survive a stabilise/reopen round trip with structure, values,
types, sharing and identity intact."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.store.objectstore import ObjectStore
from repro.store.registry import ClassRegistry

from tests.conftest import Person

# Inline (immutable) leaf values.
leaves = (st.none() | st.booleans() |
          st.integers(min_value=-2 ** 63, max_value=2 ** 63) |
          st.floats(allow_nan=False) | st.text(max_size=30) |
          st.binary(max_size=30))

# Storable container trees (no aliasing; aliasing tested separately).
trees = st.recursive(
    leaves,
    lambda children: (
        st.lists(children, max_size=5) |
        st.dictionaries(st.text(max_size=8), children, max_size=5) |
        st.tuples(children, children)
    ),
    max_leaves=25,
)


def assert_same_structure(a, b):
    assert type(a) is type(b)
    if isinstance(a, list):
        assert len(a) == len(b)
        for item_a, item_b in zip(a, b):
            assert_same_structure(item_a, item_b)
    elif isinstance(a, dict):
        assert list(a.keys()) == list(b.keys())
        for key in a:
            assert_same_structure(a[key], b[key])
    elif isinstance(a, tuple):
        assert len(a) == len(b)
        for item_a, item_b in zip(a, b):
            assert_same_structure(item_a, item_b)
    else:
        assert a == b


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(value=trees)
def test_arbitrary_trees_roundtrip(tmp_path_factory, value):
    directory = str(tmp_path_factory.mktemp("prop") / "store")
    registry = ClassRegistry()
    with ObjectStore.open(directory, registry=registry) as store:
        store.set_root("value", [value])
        store.stabilize()
    with ObjectStore.open(directory, registry=registry) as store:
        assert_same_structure(store.get_root("value")[0], value)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(names=st.lists(st.text(min_size=1, max_size=10), min_size=1,
                      max_size=8, unique=True),
       marriages=st.data())
def test_arbitrary_person_graphs_roundtrip(tmp_path_factory, names,
                                           marriages):
    """Random spouse graphs (including cycles and sharing) survive."""
    directory = str(tmp_path_factory.mktemp("prop") / "store")
    registry = ClassRegistry()
    registry.register(Person)
    people = [Person(name) for name in names]
    for person in people:
        if marriages.draw(st.booleans()):
            person.spouse = marriages.draw(st.sampled_from(people))
    spouse_index = [people.index(p.spouse) if p.spouse is not None else None
                    for p in people]
    with ObjectStore.open(directory, registry=registry) as store:
        store.set_root("people", people)
        store.stabilize()
        assert store.verify_referential_integrity() == []
    with ObjectStore.open(directory, registry=registry) as store:
        fetched = store.get_root("people")
        assert [p.name for p in fetched] == names
        for person, index in zip(fetched, spouse_index):
            if index is None:
                assert person.spouse is None
            else:
                assert person.spouse is fetched[index]  # identity preserved


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(st.data())
def test_stabilize_is_idempotent(tmp_path_factory, data):
    """After one stabilise, a second writes nothing."""
    directory = str(tmp_path_factory.mktemp("prop") / "store")
    registry = ClassRegistry()
    value = data.draw(trees)
    with ObjectStore.open(directory, registry=registry) as store:
        store.set_root("v", [value])
        store.stabilize()
        assert store.stabilize() == 0


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(st.lists(st.integers(0, 4), min_size=1, max_size=12))
def test_gc_never_breaks_integrity(tmp_path_factory, drops):
    """Randomly dropping list elements and collecting keeps the store
    sound."""
    directory = str(tmp_path_factory.mktemp("prop") / "store")
    registry = ClassRegistry()
    registry.register(Person)
    with ObjectStore.open(directory, registry=registry) as store:
        holder = [[Person(f"p{i}") for i in range(3)] for __ in range(5)]
        store.set_root("holder", holder)
        store.stabilize()
        for index in drops:
            if holder and index < len(holder):
                holder.pop(index)
            store.collect_garbage()
            assert store.verify_referential_integrity() == []
