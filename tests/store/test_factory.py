"""The storage-URL factory: one string picks the backend.

``open_store()`` / ``engine_from_url()`` are how examples, benchmarks
and applications choose among the file, memory, sqlite and sharded
backends without constructing engine objects by hand."""

import os

import pytest

from repro.store import ObjectStore, open_store
from repro.store.engine import (
    FileEngine,
    MemoryEngine,
    ShardedEngine,
    SqliteEngine,
    WriteBatch,
    engine_from_url,
)
from repro.store.oids import Oid

from tests.conftest import Person


class TestEngineFromUrl:
    def test_memory_scheme(self):
        with engine_from_url("memory:") as engine:
            assert isinstance(engine, MemoryEngine)

    def test_file_scheme_and_bare_path(self, tmp_path):
        with engine_from_url(f"file:{tmp_path / 'a'}") as engine:
            assert isinstance(engine, FileEngine)
            assert engine.directory == str(tmp_path / "a")
        with engine_from_url(str(tmp_path / "b")) as engine:
            assert isinstance(engine, FileEngine)
            assert engine.directory == str(tmp_path / "b")

    def test_sqlite_scheme(self, tmp_path):
        path = str(tmp_path / "db.sqlite")
        with engine_from_url(f"sqlite:{path}") as engine:
            assert isinstance(engine, SqliteEngine)
            assert engine.path == path

    def test_sharded_scheme_derives_child_locations(self, tmp_path):
        base = str(tmp_path / "cluster")
        with engine_from_url(f"sharded:4:sqlite:{base}") as engine:
            assert isinstance(engine, ShardedEngine)
            assert engine.shard_count == 4
            assert all(isinstance(child, SqliteEngine)
                       for child in engine.children)
        assert sorted(os.listdir(base)) >= [f"shard{i}.sqlite"
                                            for i in range(4)]
        with engine_from_url(f"sharded:2:file:{base}-files") as engine:
            assert [type(child) for child in engine.children] \
                == [FileEngine, FileEngine]
        with engine_from_url("sharded:3:memory:") as engine:
            assert all(isinstance(child, MemoryEngine)
                       for child in engine.children)

    @pytest.mark.parametrize("bad_url", [
        "",
        "redis:/somewhere",
        "memory:/no/location/allowed",
        "sqlite:",
        "file:",
        "sharded:4",
        "sharded:zero:memory:",
        "sharded:0:memory:",
        "sharded:2:sharded:2:memory:",
        "sharded:3:memory",  # scheme missing its trailing colon
    ])
    def test_bad_urls_rejected(self, bad_url):
        with pytest.raises(ValueError):
            engine_from_url(bad_url)

    def test_single_letter_prefix_is_a_path_not_a_scheme(self, tmp_path,
                                                         monkeypatch):
        # Windows drive letters ("C:\store") must fall through to the
        # file backend, not die as an unknown scheme.
        monkeypatch.chdir(tmp_path)
        with engine_from_url("c:drive-style-path") as engine:
            assert isinstance(engine, FileEngine)
            assert engine.directory == "c:drive-style-path"

    def test_reopening_sharded_url_with_other_count_rejected(self, tmp_path,
                                                             registry):
        base = tmp_path / "cluster"
        with open_store(f"sharded:4:sqlite:{base}", registry=registry) as st:
            st.set_root("n", [1, 2, 3])
            st.stabilize()
        with pytest.raises(ValueError, match="4 shards"):
            open_store(f"sharded:3:sqlite:{base}", registry=registry)


class TestOpenStore:
    @pytest.mark.parametrize("scheme", ["file", "sqlite", "sharded"])
    def test_roundtrip_through_url(self, scheme, tmp_path, registry):
        url = {
            "file": f"file:{tmp_path / 's'}",
            "sqlite": f"sqlite:{tmp_path / 's.sqlite'}",
            "sharded": f"sharded:3:sqlite:{tmp_path / 'shards'}",
        }[scheme]
        with open_store(url, registry=registry) as store:
            store.set_root("people", [Person("ann"), Person("bo")])
            store.stabilize()
        with open_store(url, registry=registry) as store:
            assert [p.name for p in store.get_root("people")] == ["ann", "bo"]
            assert store.verify_referential_integrity() == []

    def test_memory_store_is_ephemeral(self, registry):
        with open_store("memory:", registry=registry) as store:
            store.set_root("p", Person("gone"))
            store.stabilize()
        with open_store("memory:", registry=registry) as store:
            assert not store.has_root("p")

    def test_from_url_classmethod(self, tmp_path, registry):
        with ObjectStore.from_url(f"sqlite:{tmp_path / 'db'}",
                                  registry=registry) as store:
            store.set_root("n", [1, 2, 3])
            store.stabilize()
            assert store.engine.name == "sqlite"

    def test_bare_path_matches_objectstore_open(self, tmp_path, registry):
        directory = str(tmp_path / "plain")
        with open_store(directory, registry=registry) as store:
            store.set_root("n", [4, 5])
            store.stabilize()
        with ObjectStore.open(directory, registry=registry) as store:
            assert store.get_root("n") == [4, 5]
