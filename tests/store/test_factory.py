"""The storage-URL factory: one string picks the backend.

``open_store()`` / ``engine_from_url()`` are how examples, benchmarks
and applications choose among the file, memory, sqlite and sharded
backends without constructing engine objects by hand."""

import os

import pytest

from repro.store import ObjectStore, open_store
from repro.store.engine import (
    FileEngine,
    MemoryEngine,
    ShardedEngine,
    SqliteEngine,
    engine_from_url,
)

from tests.conftest import Person


class TestEngineFromUrl:
    def test_memory_scheme(self):
        with engine_from_url("memory:") as engine:
            assert isinstance(engine, MemoryEngine)

    def test_file_scheme_and_bare_path(self, tmp_path):
        with engine_from_url(f"file:{tmp_path / 'a'}") as engine:
            assert isinstance(engine, FileEngine)
            assert engine.directory == str(tmp_path / "a")
        with engine_from_url(str(tmp_path / "b")) as engine:
            assert isinstance(engine, FileEngine)
            assert engine.directory == str(tmp_path / "b")

    def test_sqlite_scheme(self, tmp_path):
        path = str(tmp_path / "db.sqlite")
        with engine_from_url(f"sqlite:{path}") as engine:
            assert isinstance(engine, SqliteEngine)
            assert engine.path == path

    def test_sharded_scheme_derives_child_locations(self, tmp_path):
        base = str(tmp_path / "cluster")
        with engine_from_url(f"sharded:4:sqlite:{base}") as engine:
            assert isinstance(engine, ShardedEngine)
            assert engine.shard_count == 4
            assert all(isinstance(child, SqliteEngine)
                       for child in engine.children)
        assert sorted(os.listdir(base)) >= [f"shard{i}.sqlite"
                                            for i in range(4)]
        with engine_from_url(f"sharded:2:file:{base}-files") as engine:
            assert [type(child) for child in engine.children] \
                == [FileEngine, FileEngine]
        with engine_from_url("sharded:3:memory:") as engine:
            assert all(isinstance(child, MemoryEngine)
                       for child in engine.children)

    @pytest.mark.parametrize("bad_url", [
        "",
        "redis:/somewhere",
        "memory:/no/location/allowed",
        "sqlite:",
        "file:",
        "sharded:4",
        "sharded:zero:memory:",
        "sharded:0:memory:",
        "sharded:2:sharded:2:memory:",
        "sharded:3:memory",  # scheme missing its trailing colon
    ])
    def test_bad_urls_rejected(self, bad_url):
        with pytest.raises(ValueError):
            engine_from_url(bad_url)


class TestQueryParameters:
    """``?key=value`` tuning: durability policies, engine knobs, and
    loud rejection of anything unknown or malformed."""

    def test_file_durability_group(self, tmp_path):
        from repro.store.commit import GroupPolicy, PipelinedEngine
        url = (f"file:{tmp_path / 's'}?durability=group"
               "&group_window_ms=2&group_max_batches=16")
        with engine_from_url(url) as engine:
            assert isinstance(engine, PipelinedEngine)
            assert isinstance(engine.child, FileEngine)
            assert isinstance(engine.policy, GroupPolicy)
            assert engine.policy.window_s == pytest.approx(0.002)
            assert engine.policy.max_batches == 16

    def test_async_policy_and_backpressure_bound(self, tmp_path):
        from repro.store.commit import AsyncPolicy, PipelinedEngine
        url = (f"sqlite:{tmp_path / 'db.sqlite'}?durability=async"
               "&async_max_pending=7")
        with engine_from_url(url) as engine:
            assert isinstance(engine, PipelinedEngine)
            assert isinstance(engine.child, SqliteEngine)
            assert isinstance(engine.policy, AsyncPolicy)
            assert engine.policy.max_pending == 7
            assert engine.asynchronous

    def test_memory_can_be_pipelined_too(self):
        from repro.store.commit import PipelinedEngine
        with engine_from_url("memory:?durability=sync") as engine:
            assert isinstance(engine, PipelinedEngine)
            assert isinstance(engine.child, MemoryEngine)

    def test_file_engine_knobs(self, tmp_path):
        url = (f"file:{tmp_path / 's'}?checkpoint_wal_bytes=128"
               "&manifest_compact_deltas=9")
        with engine_from_url(url) as engine:
            assert engine._checkpoint_wal_bytes == 128
            assert engine._manifest_compact_deltas == 9

    def test_sqlite_synchronous_level(self, tmp_path):
        url = f"sqlite:{tmp_path / 'db.sqlite'}?synchronous=FULL"
        with engine_from_url(url) as engine:
            level = engine._conn.execute(
                "PRAGMA synchronous").fetchone()[0]
            assert level == 2  # FULL

    def test_sharded_shard_durability_wraps_children(self, tmp_path):
        from repro.store.commit import AsyncPolicy, PipelinedEngine
        url = (f"sharded:3:file:{tmp_path / 'cluster'}"
               "?shard_durability=async")
        with engine_from_url(url) as engine:
            assert isinstance(engine, ShardedEngine)
            for child in engine.children:
                assert isinstance(child, PipelinedEngine)
                assert isinstance(child.policy, AsyncPolicy)
                assert isinstance(child.child, FileEngine)

    def test_sharded_outer_and_inner_policies_compose(self, tmp_path):
        from repro.store.commit import PipelinedEngine
        url = (f"sharded:2:sqlite:{tmp_path / 'cluster'}"
               "?durability=group&shard_durability=async")
        with engine_from_url(url) as engine:
            assert isinstance(engine, PipelinedEngine)
            assert isinstance(engine.child, ShardedEngine)
            assert all(isinstance(child, PipelinedEngine)
                       for child in engine.child.children)

    @pytest.mark.parametrize("bad_url, match", [
        ("memory:?speed=fast", "unknown query parameter"),
        ("memory:?synchronous=FULL", "unknown query parameter"),
        ("memory:?durability", "malformed query parameter"),
        ("memory:?durability=group&durability=sync", "duplicate"),
        ("memory:?durability=never", "unknown durability policy"),
        ("memory:?group_window_ms=2", "needs durability="),
        ("memory:?durability=sync&group_max_batches=8",
         "needs durability=group"),
        ("memory:?durability=group&group_window_ms=fast",
         "must be a number"),
        ("memory:?durability=group&group_max_batches=0",
         "group_max_batches"),
        ("memory:?durability=async&async_max_pending=-1",
         "async_max_pending"),
        ("?durability=group", "no location"),
    ])
    def test_bad_query_parameters_rejected(self, bad_url, match):
        with pytest.raises(ValueError, match=match):
            engine_from_url(bad_url)

    def test_file_knob_value_must_be_integer(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_wal_bytes"):
            engine_from_url(f"file:{tmp_path}?checkpoint_wal_bytes=big")

    def test_heap_cache_pages_knob(self, tmp_path):
        with engine_from_url(f"file:{tmp_path / 's'}"
                             "?heap_cache_pages=7") as engine:
            assert engine.heap._cache_pages == 7

    def test_heap_cache_pages_rejected_for_other_schemes(self):
        with pytest.raises(ValueError, match="heap_cache_pages"):
            engine_from_url("memory:?heap_cache_pages=7")

    def test_sharded_forwards_file_child_keys(self, tmp_path):
        url = f"sharded:2:file:{tmp_path / 'c'}?heap_cache_pages=9"
        with engine_from_url(url) as engine:
            for child in engine.children:
                assert child.heap._cache_pages == 9

    def test_sharded_forwards_sqlite_child_keys(self, tmp_path):
        url = f"sharded:2:sqlite:{tmp_path / 'c'}?synchronous=FULL"
        with engine_from_url(url) as engine:
            for child in engine.children:
                level = child._conn.execute(
                    "PRAGMA synchronous").fetchone()[0]
                assert level == 2  # FULL

    def test_sharded_rejects_foreign_child_keys(self, tmp_path):
        with pytest.raises(ValueError, match="synchronous"):
            engine_from_url(f"sharded:2:file:{tmp_path}?synchronous=FULL")

    def test_unknown_key_error_names_known_keys(self):
        with pytest.raises(ValueError) as excinfo:
            engine_from_url("memory:?bogus=1")
        message = str(excinfo.value)
        assert "durability" in message and "bogus" in message

    def test_store_roundtrip_through_param_url(self, tmp_path, registry):
        url = (f"sharded:2:file:{tmp_path / 'cluster'}"
               "?shard_durability=async")
        with open_store(url, registry=registry) as store:
            store.set_root("people", [Person("ann"), Person("bo")])
            store.stabilize()
        with open_store(url, registry=registry) as store:
            assert [p.name for p in store.get_root("people")] \
                == ["ann", "bo"]
            assert store.verify_referential_integrity() == []

    def test_single_letter_prefix_is_a_path_not_a_scheme(self, tmp_path,
                                                         monkeypatch):
        # Windows drive letters ("C:\store") must fall through to the
        # file backend, not die as an unknown scheme.
        monkeypatch.chdir(tmp_path)
        with engine_from_url("c:drive-style-path") as engine:
            assert isinstance(engine, FileEngine)
            assert engine.directory == "c:drive-style-path"

    def test_reopening_sharded_url_with_other_count_rejected(self, tmp_path,
                                                             registry):
        base = tmp_path / "cluster"
        with open_store(f"sharded:4:sqlite:{base}", registry=registry) as st:
            st.set_root("n", [1, 2, 3])
            st.stabilize()
        with pytest.raises(ValueError, match="4 shards"):
            open_store(f"sharded:3:sqlite:{base}", registry=registry)


class TestSchemeRegistry:
    """The scheme registry behind the factory: every backend —
    built-in or network — registers through one table, and unknown
    schemes fail loudly with the full menu."""

    def test_unknown_scheme_error_lists_every_registered_scheme(self):
        with pytest.raises(ValueError) as excinfo:
            engine_from_url("redis:/somewhere")
        message = str(excinfo.value)
        assert "unknown storage scheme 'redis'" in message
        for scheme in ("memory", "file", "sqlite", "sharded",
                       "remote", "routed"):
            assert scheme in message

    def test_registered_schemes_cover_all_backends(self):
        from repro.store.engine.factory import registered_schemes
        assert set(registered_schemes()) >= {
            "memory", "file", "sqlite", "sharded", "remote", "routed"}

    @pytest.mark.parametrize("name", ["", "x", "no1", "has-dash"])
    def test_register_scheme_rejects_bad_names(self, name):
        from repro.store.engine.factory import register_scheme
        with pytest.raises(ValueError, match="alphabetic"):
            register_scheme(name, (), lambda rest, params: None)

    def test_out_of_tree_scheme_plugs_in(self):
        from repro.store.engine import factory

        def build(rest, params):
            return MemoryEngine()

        register = factory.register_scheme
        register("loopback", (), build)
        try:
            with engine_from_url("loopback:") as engine:
                assert isinstance(engine, MemoryEngine)
            assert "loopback" in factory.registered_schemes()
        finally:
            factory._SCHEME_REGISTRY.pop("loopback", None)
            factory.SCHEMES = tuple(s for s in factory.SCHEMES
                                    if s != "loopback")

    @pytest.mark.parametrize("bad_url, match", [
        ("remote:", "HOST:PORT or unix:PATH"),
        ("routed:", "comma-separated endpoint list"),
        ("routed:,,", "comma-separated endpoint list"),
        ("remote:h:1?connect_timeout=fast", "must be a number"),
        ("remote:h:1?op_timeout=slow", "must be a number"),
        ("remote:h:1?read_retries=lots", "must be an integer"),
        ("remote:h:1?heap_cache_pages=4", "unknown query parameter"),
        ("sharded:2:remote:h:1", "routed"),
        ("sharded:2:routed:h:1,h:2", "routed"),
    ])
    def test_bad_network_urls_rejected(self, bad_url, match):
        with pytest.raises(ValueError, match=match):
            engine_from_url(bad_url)


class TestStoreLevelParameters:
    """``cache_objects`` configures the store, not the engine."""

    def test_split_store_url_peels_cache_objects(self, tmp_path):
        from repro.store.engine.factory import split_store_url
        engine_url, options = split_store_url(
            f"file:{tmp_path}?cache_objects=64&durability=group")
        assert engine_url == f"file:{tmp_path}?durability=group"
        assert options == {"cache_objects": 64}

    def test_split_store_url_without_query_is_identity(self, tmp_path):
        from repro.store.engine.factory import split_store_url
        assert split_store_url(f"file:{tmp_path}") == (f"file:{tmp_path}", {})

    def test_engine_factory_refuses_store_keys(self, tmp_path):
        with pytest.raises(ValueError, match="configure the store"):
            engine_from_url(f"file:{tmp_path}?cache_objects=64")

    def test_open_store_bounds_the_object_cache(self, tmp_path, registry):
        url = f"file:{tmp_path / 's'}?cache_objects=32"
        with open_store(url, registry=registry) as store:
            assert store._identity.capacity == 32
            store.set_root("people", [Person("ann")])
            store.stabilize()
        with open_store(url, registry=registry) as store:
            assert store.get_root("people")[0].name == "ann"

    def test_open_store_default_cache_is_unbounded(self, tmp_path, registry):
        with open_store(f"file:{tmp_path / 's'}", registry=registry) as store:
            assert store._identity.capacity is None

    @pytest.mark.parametrize("value", ["0", "-1", "many"])
    def test_bad_cache_objects_rejected(self, tmp_path, value):
        with pytest.raises(ValueError, match="cache_objects"):
            open_store(f"memory:?cache_objects={value}")

    def test_split_store_url_peels_compress_and_workers(self, tmp_path):
        from repro.store.engine.factory import split_store_url
        engine_url, options = split_store_url(
            f"file:{tmp_path}?compress=zlib:1&durability=group"
            "&encode_workers=4")
        assert engine_url == f"file:{tmp_path}?durability=group"
        assert options == {"compress": "zlib:1", "encode_workers": 4}

    def test_engine_factory_refuses_compress(self, tmp_path):
        with pytest.raises(ValueError, match="configure the store"):
            engine_from_url(f"file:{tmp_path}?compress=zlib")

    @pytest.mark.parametrize("value", ["snappy", "zlib:10", "zlib:x"])
    def test_bad_compress_rejected(self, value):
        with pytest.raises(ValueError, match="compress"):
            open_store(f"memory:?compress={value}")

    @pytest.mark.parametrize("value", ["-1", "two"])
    def test_bad_encode_workers_rejected(self, value):
        with pytest.raises(ValueError, match="encode_workers"):
            open_store(f"memory:?encode_workers={value}")

    def test_open_store_wires_codec_and_workers(self, tmp_path, registry):
        url = (f"file:{tmp_path / 's'}?compress=zlib:1&encode_workers=0"
               "&cache_objects=64")
        with open_store(url, registry=registry) as store:
            assert store._codec is not None
            assert store._codec.name == "zlib:1"
            assert store._encoder.workers == 0
            store.set_root("text", ["compressible " * 50])
            store.stabilize()
        # Reopening without ?compress= reads the framed records fine.
        with open_store(f"file:{tmp_path / 's'}",
                        registry=registry) as store:
            assert store._codec is None
            assert store.get_root("text")[0].startswith("compressible")

    def test_cache_objects_composes_with_engine_params(self, tmp_path,
                                                       registry):
        url = (f"sharded:2:file:{tmp_path / 'cluster'}"
               "?shard_durability=async&cache_objects=16")
        with open_store(url, registry=registry) as store:
            assert store._identity.capacity == 16
            store.set_root("people", [Person("ann"), Person("bo")])
            store.stabilize()
        with open_store(url, registry=registry) as store:
            assert [p.name for p in store.get_root("people")] \
                == ["ann", "bo"]


class TestOpenStore:
    @pytest.mark.parametrize("scheme", ["file", "sqlite", "sharded"])
    def test_roundtrip_through_url(self, scheme, tmp_path, registry):
        url = {
            "file": f"file:{tmp_path / 's'}",
            "sqlite": f"sqlite:{tmp_path / 's.sqlite'}",
            "sharded": f"sharded:3:sqlite:{tmp_path / 'shards'}",
        }[scheme]
        with open_store(url, registry=registry) as store:
            store.set_root("people", [Person("ann"), Person("bo")])
            store.stabilize()
        with open_store(url, registry=registry) as store:
            assert [p.name for p in store.get_root("people")] == ["ann", "bo"]
            assert store.verify_referential_integrity() == []

    def test_memory_store_is_ephemeral(self, registry):
        with open_store("memory:", registry=registry) as store:
            store.set_root("p", Person("gone"))
            store.stabilize()
        with open_store("memory:", registry=registry) as store:
            assert not store.has_root("p")

    def test_from_url_classmethod(self, tmp_path, registry):
        with ObjectStore.from_url(f"sqlite:{tmp_path / 'db'}",
                                  registry=registry) as store:
            store.set_root("n", [1, 2, 3])
            store.stabilize()
            assert store.engine.name == "sqlite"

    def test_bare_path_matches_objectstore_open(self, tmp_path, registry):
        directory = str(tmp_path / "plain")
        with open_store(directory, registry=registry) as store:
            store.set_root("n", [4, 5])
            store.stabilize()
        with ObjectStore.open(directory, registry=registry) as store:
            assert store.get_root("n") == [4, 5]
