"""Failure injection: corrupted files, interrupted checkpoints, stale
artefacts — the store must fail loudly or recover cleanly, never silently
serve bad data."""

import json
import os
import struct

import pytest

from repro.errors import CorruptHeapError
from repro.store.heap import PAGE_SIZE, HeapFile
from repro.store.objectstore import ObjectStore

from tests.conftest import Person


def store_paths(directory):
    return (os.path.join(directory, "store.heap"),
            os.path.join(directory, "store.wal"),
            os.path.join(directory, "store.meta"))


class TestHeapCorruption:
    def test_truncated_heap_rejected(self, tmp_path, registry):
        directory = str(tmp_path / "s")
        with ObjectStore.open(directory, registry=registry) as store:
            store.set_root("p", Person("x"))
            store.stabilize()
        heap_path = store_paths(directory)[0]
        with open(heap_path, "r+b") as fh:
            fh.truncate(PAGE_SIZE // 2)  # not page-aligned any more
        with pytest.raises(CorruptHeapError):
            ObjectStore.open(directory, registry=registry)

    def test_reading_slot_out_of_range(self, tmp_path):
        with HeapFile(str(tmp_path / "h.heap")) as heap:
            rid = heap.insert(b"one")
            from repro.store.heap import RecordId
            with pytest.raises(CorruptHeapError):
                heap.read(RecordId(rid.page_no, 99))

    def test_overflow_chain_truncation_detected(self, tmp_path):
        path = str(tmp_path / "h.heap")
        with HeapFile(path) as heap:
            rid = heap.insert(b"z" * (PAGE_SIZE * 3))
        # Break the chain: zero the next-pointer of the head page.
        with open(path, "r+b") as fh:
            fh.seek(rid.page_no * PAGE_SIZE + 12)
            fh.write(struct.pack("<I", 0))
        with HeapFile(path) as heap:
            with pytest.raises(CorruptHeapError):
                heap.read(rid)


class TestInterruptedCheckpoint:
    def test_leftover_meta_tmp_ignored(self, tmp_path, registry):
        """A crash between writing store.meta.tmp and the rename leaves a
        .tmp file; reopening must use the last complete snapshot."""
        directory = str(tmp_path / "s")
        with ObjectStore.open(directory, registry=registry) as store:
            store.set_root("p", Person("good"))
            store.stabilize()
        meta_path = store_paths(directory)[2]
        with open(meta_path + ".tmp", "w", encoding="utf-8") as fh:
            fh.write("{ this is garbage")
        with ObjectStore.open(directory, registry=registry) as store:
            assert store.get_root("p").name == "good"

    def test_wal_garbage_after_commit_tolerated(self, tmp_path, registry):
        directory = str(tmp_path / "s")
        with ObjectStore.open(directory, registry=registry) as store:
            store.set_root("p", Person("good"))
            store.stabilize()
        wal_path = store_paths(directory)[1]
        with open(wal_path, "ab") as fh:
            fh.write(os.urandom(37))  # torn tail
        with ObjectStore.open(directory, registry=registry) as store:
            assert store.get_root("p").name == "good"

    def test_missing_wal_file_is_fine(self, tmp_path, registry):
        directory = str(tmp_path / "s")
        with ObjectStore.open(directory, registry=registry) as store:
            store.set_root("p", Person("good"))
            store.stabilize()
        os.remove(store_paths(directory)[1])
        with ObjectStore.open(directory, registry=registry) as store:
            assert store.get_root("p").name == "good"


class TestMetadataDamage:
    def test_metadata_points_into_heap(self, tmp_path, registry):
        """Sanity: the snapshot's record ids resolve in the heap."""
        directory = str(tmp_path / "s")
        with ObjectStore.open(directory, registry=registry) as store:
            store.set_root("p", [Person("a"), Person("b")])
            store.stabilize()
        with open(store_paths(directory)[2], encoding="utf-8") as fh:
            meta = json.load(fh)
        with ObjectStore.open(directory, registry=registry) as store:
            for oid_text in meta["objects"]:
                from repro.store.oids import Oid
                record = store.stored_record(Oid(int(oid_text)))
                assert record.oid == int(oid_text)

    def test_dangling_root_detected_by_verifier(self, tmp_path, registry):
        directory = str(tmp_path / "s")
        with ObjectStore.open(directory, registry=registry) as store:
            store.set_root("p", Person("x"))
            store.stabilize()
        meta_path = store_paths(directory)[2]
        with open(meta_path, encoding="utf-8") as fh:
            meta = json.load(fh)
        meta["roots"]["ghost"] = 424242
        with open(meta_path, "w", encoding="utf-8") as fh:
            json.dump(meta, fh)
        with ObjectStore.open(directory, registry=registry) as store:
            problems = store.verify_referential_integrity()
            assert any("ghost" in problem for problem in problems)
