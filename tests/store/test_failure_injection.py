"""Failure injection: corrupted files, interrupted checkpoints, stale
artefacts, crashes inside the sharded two-phase apply — the store must
fail loudly or recover cleanly, never silently serve bad data."""

import os
import struct

import pytest

from repro.errors import CorruptHeapError, StoreClosedError
from repro.store.engine import SqliteEngine, WriteBatch
from repro.store.engine.sharded import MARKER_OID, STAGE_OID, ShardedEngine
from repro.store.heap import PAGE_SIZE, HeapFile
from repro.store.objectstore import ObjectStore
from repro.store.oids import Oid

from tests.conftest import Person
from tests.store.conftest import ENGINE_PARAMS, make_engine


def store_paths(directory):
    return (os.path.join(directory, "store.heap"),
            os.path.join(directory, "store.wal"),
            os.path.join(directory, "store.manifest"))


class TestHeapCorruption:
    def test_truncated_heap_rejected(self, tmp_path, registry):
        directory = str(tmp_path / "s")
        with ObjectStore.open(directory, registry=registry) as store:
            store.set_root("p", Person("x"))
            store.stabilize()
        heap_path = store_paths(directory)[0]
        with open(heap_path, "r+b") as fh:
            fh.truncate(PAGE_SIZE // 2)  # not page-aligned any more
        with pytest.raises(CorruptHeapError):
            ObjectStore.open(directory, registry=registry)

    def test_reading_slot_out_of_range(self, tmp_path):
        with HeapFile(str(tmp_path / "h.heap")) as heap:
            rid = heap.insert(b"one")
            from repro.store.heap import RecordId
            with pytest.raises(CorruptHeapError):
                heap.read(RecordId(rid.page_no, 99))

    def test_overflow_chain_truncation_detected(self, tmp_path):
        path = str(tmp_path / "h.heap")
        with HeapFile(path) as heap:
            rid = heap.insert(b"z" * (PAGE_SIZE * 3))
        # Break the chain: zero the next-pointer of the head page.
        with open(path, "r+b") as fh:
            fh.seek(rid.page_no * PAGE_SIZE + 12)
            fh.write(struct.pack("<I", 0))
        with HeapFile(path) as heap:
            with pytest.raises(CorruptHeapError):
                heap.read(rid)


class TestInterruptedCheckpoint:
    def test_leftover_manifest_tmp_ignored(self, tmp_path, registry):
        """A crash between writing store.manifest.tmp (compaction) and
        the rename leaves a .tmp file; reopening must use the last
        complete manifest."""
        directory = str(tmp_path / "s")
        with ObjectStore.open(directory, registry=registry) as store:
            store.set_root("p", Person("good"))
            store.stabilize()
        manifest_path = store_paths(directory)[2]
        with open(manifest_path + ".tmp", "w", encoding="utf-8") as fh:
            fh.write("{ this is garbage")
        with ObjectStore.open(directory, registry=registry) as store:
            assert store.get_root("p").name == "good"

    def test_wal_garbage_after_commit_tolerated(self, tmp_path, registry):
        directory = str(tmp_path / "s")
        with ObjectStore.open(directory, registry=registry) as store:
            store.set_root("p", Person("good"))
            store.stabilize()
        wal_path = store_paths(directory)[1]
        with open(wal_path, "ab") as fh:
            fh.write(os.urandom(37))  # torn tail
        with ObjectStore.open(directory, registry=registry) as store:
            assert store.get_root("p").name == "good"

    def test_missing_wal_file_is_fine(self, tmp_path, registry):
        directory = str(tmp_path / "s")
        with ObjectStore.open(directory, registry=registry) as store:
            store.set_root("p", Person("good"))
            store.stabilize()
        os.remove(store_paths(directory)[1])
        with ObjectStore.open(directory, registry=registry) as store:
            assert store.get_root("p").name == "good"


def sharded_over_sqlite(base, count=3):
    """(Re)open a sharded engine over sqlite children rooted in ``base``."""
    return ShardedEngine(
        [SqliteEngine(str(base / f"shard{index}.sqlite"))
         for index in range(count)]
    )


def crash(engine):
    """Abandon a sharded engine as a dying process would: drop the child
    connections without running any of the remaining protocol phases."""
    for child in engine.children:
        child.close()


def wide_batch(first=100, count=9):
    batch = WriteBatch()
    for oid in range(first, first + count):
        batch.write(Oid(oid), f"rec{oid}".encode())
    return batch


class TestShardedTwoPhaseCrash:
    """Kill the sharded apply between its phases: reopening must expose
    the whole batch or none of it, never a mixture."""

    def test_crash_between_shard_prepares(self, tmp_path):
        engine = sharded_over_sqlite(tmp_path)
        engine.apply(WriteBatch().write(Oid(1), b"old").write(Oid(2), b"old"))
        batch = wide_batch()
        subs = engine.partition(batch)
        assert len(subs) == 3
        # Only a strict subset of shards gets its prepare through.
        partial = dict(sorted(subs.items())[:2])
        engine.prepare(partial)
        crash(engine)

        recovered = sharded_over_sqlite(tmp_path)
        # No commit marker: the batch never happened.
        for oid, _ in batch.writes:
            assert not recovered.contains(oid)
        assert recovered.read(Oid(1)) == b"old"
        assert recovered.object_count == 2
        # The aborted prepare left no residue behind.
        for child in recovered.children:
            assert not child.contains(STAGE_OID)
        assert not recovered.children[0].contains(MARKER_OID)
        recovered.close()

    def test_crash_between_prepare_and_commit_marker(self, tmp_path):
        engine = sharded_over_sqlite(tmp_path)
        engine.apply(WriteBatch().write(Oid(1), b"old"))
        batch = wide_batch()
        subs = engine.partition(batch)
        engine.prepare(subs)  # every shard staged, marker never written
        crash(engine)

        recovered = sharded_over_sqlite(tmp_path)
        for oid, _ in batch.writes:
            assert not recovered.contains(oid)
        assert recovered.read(Oid(1)) == b"old"
        assert recovered.object_count == 1
        for child in recovered.children:
            assert not child.contains(STAGE_OID)
        recovered.close()

    def test_crash_after_commit_marker_replays_whole_batch(self, tmp_path):
        engine = sharded_over_sqlite(tmp_path)
        batch = wide_batch()
        batch.set_roots({"r": Oid(100)}).advance_next_oid(200)
        subs = engine.partition(batch)
        engine.prepare(subs)
        engine.write_commit_marker()  # the commit point
        crash(engine)

        recovered = sharded_over_sqlite(tmp_path)
        for oid, raw in batch.writes:
            assert recovered.read(oid) == raw
        assert recovered.roots() == {"r": Oid(100)}
        assert recovered.next_oid == 200
        assert recovered.object_count == len(batch.writes)
        for child in recovered.children:
            assert not child.contains(STAGE_OID)
        assert not recovered.children[0].contains(MARKER_OID)
        recovered.close()

    def test_crash_midway_through_staged_applies(self, tmp_path):
        engine = sharded_over_sqlite(tmp_path)
        batch = wide_batch()
        subs = engine.partition(batch)
        engine.prepare(subs)
        engine.write_commit_marker()
        # One shard finishes phase 3 (apply + unstage atomically), the
        # rest die with their sub-batches still staged.
        done_shard, done_sub = sorted(subs.items())[0]
        done_sub.delete(STAGE_OID)
        engine.children[done_shard].apply(done_sub)
        crash(engine)

        recovered = sharded_over_sqlite(tmp_path)
        for oid, raw in batch.writes:
            assert recovered.read(oid) == raw
        assert recovered.object_count == len(batch.writes)
        recovered.close()

    def test_stale_marker_cannot_adopt_a_later_batch(self, tmp_path):
        """A marker whose lazy clear was lost (power-loss reordering)
        must not replay stagings from a *later* uncommitted batch: the
        per-batch token has to mismatch."""
        import os as _os
        engine = sharded_over_sqlite(tmp_path)
        engine.apply(WriteBatch().write(Oid(1), b"old").write(Oid(2), b"old"))
        batch = wide_batch()
        subs = engine.partition(batch)
        engine.prepare(subs)  # new batch staged under its own token...
        # ...but the surviving marker carries a different (stale) token.
        engine.write_commit_marker(token=_os.urandom(16))
        crash(engine)

        recovered = sharded_over_sqlite(tmp_path)
        for oid, _ in batch.writes:
            assert not recovered.contains(oid)
        assert recovered.read(Oid(1)) == b"old"
        assert recovered.object_count == 2
        for child in recovered.children:
            assert not child.contains(STAGE_OID)
        assert not recovered.children[0].contains(MARKER_OID)
        recovered.close()

    def test_next_apply_settles_a_failed_phase_three(self, tmp_path):
        """An apply that raised after its commit point (marker written,
        some shards never applied) must be finished — not orphaned — by
        the next apply on the same engine, or a later marker would adopt
        the slot and recovery would discard the committed batch."""
        engine = sharded_over_sqlite(tmp_path)
        batch1 = wide_batch(first=100)
        subs = engine.partition(batch1)
        engine.prepare(subs)
        engine.write_commit_marker()
        # Simulate phase 3 dying before touching any shard: batch1 is
        # committed but not applied, the engine keeps running.
        batch2 = wide_batch(first=200)
        engine.apply(batch2)  # must settle batch1 first
        for oid, raw in list(batch1.writes) + list(batch2.writes):
            assert engine.read(oid) == raw
        assert not engine.children[0].contains(MARKER_OID)
        engine.close()

        recovered = sharded_over_sqlite(tmp_path)
        for oid, raw in list(batch1.writes) + list(batch2.writes):
            assert recovered.read(oid) == raw
        recovered.close()

    def test_commit_marker_without_prepare_rejected(self, tmp_path):
        engine = sharded_over_sqlite(tmp_path)
        with pytest.raises(ValueError):
            engine.write_commit_marker()
        engine.close()

    def test_store_reopens_consistently_after_committed_crash(self, tmp_path,
                                                              registry):
        """End to end: a store over a sharded engine whose process died
        right after the commit point serves the full checkpoint."""
        engine = sharded_over_sqlite(tmp_path)
        store = ObjectStore(registry=registry, engine=engine)
        people = [Person(f"p{index}") for index in range(12)]
        store.set_root("people", people)
        store.stabilize()
        # Mutate everything, then die after phase 2 of the next apply.
        for person in people:
            person.name += "-v2"
        reachable, records, _ = store._flatten_from_roots()
        batch = WriteBatch()
        for oid, record in records.items():
            batch.write(oid, record.to_bytes())
        subs = engine.partition(batch)
        engine.prepare(subs)
        engine.write_commit_marker()
        crash(engine)

        recovered = ObjectStore(registry=registry,
                                engine=sharded_over_sqlite(tmp_path))
        names = {person.name for person in recovered.get_root("people")}
        assert names == {f"p{index}-v2" for index in range(12)}
        assert recovered.verify_referential_integrity() == []
        recovered.close()


class TestAsyncShardPipelineCrash:
    """Per-shard async pipelines must not let the marker clear become
    durable ahead of a slower shard's phase-3 apply: after apply()
    returns, a hard crash must still expose the whole batch."""

    def test_slow_shard_phase_three_cannot_be_orphaned(self, tmp_path):
        import time

        from repro.store.commit import AsyncPolicy, PipelinedEngine
        from repro.store.engine import FileEngine

        class SlowFileEngine(FileEngine):
            """A shard whose group commits lag the others."""

            def apply_many(self, batches):
                time.sleep(0.05)
                super().apply_many(batches)

        def build(first_time: bool):
            children = [
                PipelinedEngine(FileEngine(str(tmp_path / "shard0")),
                                AsyncPolicy()),
                PipelinedEngine(
                    (SlowFileEngine if first_time else FileEngine)(
                        str(tmp_path / "shard1")),
                    AsyncPolicy()),
            ]
            return ShardedEngine(children)

        engine = build(first_time=True)
        batch = wide_batch(first=100, count=8)  # spans both shards
        batch.set_roots({"r": Oid(100)})
        engine.apply(batch)
        # Hard crash: drop every child's *raw* file handles immediately
        # (no flush — the committer threads may still be mid-commit);
        # whatever the pipelines had not made durable is gone.
        for child in engine.children:
            real = child.child
            real.wal._file.close()
            real.heap._file.close()
            real.manifest._file.close()

        recovered = build(first_time=False)
        for oid, raw in batch.writes:
            assert recovered.read(oid) == raw
        assert recovered.roots() == {"r": Oid(100)}
        assert recovered.object_count == len(batch.writes)
        recovered.close()


class TestCloseIdempotency:
    """Every backend and the store itself tolerate double close; a closed
    store refuses work loudly."""

    @pytest.mark.parametrize("kind", ENGINE_PARAMS)
    def test_engine_double_close(self, kind, tmp_path):
        engine = make_engine(kind, tmp_path)
        engine.apply(WriteBatch().write(Oid(1), b"x"))
        engine.close()
        engine.close()
        with engine:  # __exit__ on an already-closed engine is a no-op
            pass
        assert engine.closed

    @pytest.mark.parametrize("kind", ENGINE_PARAMS)
    def test_store_double_close(self, kind, tmp_path, registry):
        store = ObjectStore(registry=registry,
                            engine=make_engine(kind, tmp_path))
        store.set_root("p", Person("x"))
        store.stabilize()
        store.close()
        store.close()
        with pytest.raises(StoreClosedError):
            store.get_root("p")

    def test_store_context_manager_after_explicit_close(self, registry):
        with ObjectStore.in_memory(registry=registry) as store:
            store.set_root("p", Person("x"))
            store.close()  # __exit__ will close again on the way out
        assert store.is_closed


class TestMetadataDamage:
    def test_manifest_points_into_heap(self, tmp_path, registry):
        """Sanity: the record ids the manifest accumulates resolve in
        the heap."""
        from repro.store.engine.filesystem import FileEngine, ManifestLog
        directory = str(tmp_path / "s")
        with ObjectStore.open(directory, registry=registry) as store:
            store.set_root("p", [Person("a"), Person("b")])
            store.stabilize()
            store.engine.compact_manifest()  # fold deltas into a base
        with ManifestLog(store_paths(directory)[2]) as manifest:
            entries = manifest.load()
        assert [entry["kind"] for entry in entries] == ["base"]
        assert entries[0]["objects"]
        with ObjectStore.open(directory, registry=registry) as store:
            for oid_text in entries[0]["objects"]:
                from repro.store.oids import Oid
                record = store.stored_record(Oid(int(oid_text)))
                assert record.oid == int(oid_text)
        # The same ids are live in the reopened engine's table.
        with FileEngine(directory) as engine:
            assert {int(oid) for oid in engine.oids()} \
                == {int(oid) for oid in entries[0]["objects"]}

    def test_dangling_root_detected_by_verifier(self, tmp_path, registry):
        from repro.store.engine import FileEngine, WriteBatch as Batch
        from repro.store.oids import Oid
        directory = str(tmp_path / "s")
        with ObjectStore.open(directory, registry=registry) as store:
            store.set_root("p", Person("x"))
            store.stabilize()
        # Damage the durable root table directly: a root naming an OID
        # that was never stored.
        with FileEngine(directory) as engine:
            roots = engine.roots()
            roots["ghost"] = Oid(424242)
            engine.apply(Batch().set_roots(roots))
        with ObjectStore.open(directory, registry=registry) as store:
            problems = store.verify_referential_integrity()
            assert any("ghost" in problem for problem in problems)
