"""Hierarchical tracing: ids, sampling, sinks and the cross-process tree.

The last class is the PR's acceptance test: a traced ``routed:`` store
over two live server *subprocesses* must reassemble one span tree that
covers the client, the router fan-out and both servers, with
engine-phase work (WAL fsyncs, planner waves) visible as leaf spans.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.store.engine.factory import engine_from_url, split_store_url
from repro.store.objectstore import ObjectStore
from repro.store.obs.trace import (
    _COUNTER_MASK,
    _NULL_SPAN,
    JsonLineFormatter,
    TraceLog,
    Tracer,
    _process_tag,
    current_span,
    iter_trace_log,
    new_span_id,
    new_trace_id,
    run_with_span,
    span,
)


# ---------------------------------------------------------------------------
# id generation
# ---------------------------------------------------------------------------


class TestIds:
    def test_counter_window_is_wider_than_32_bits(self):
        # Regression: the low half used to be 32 bits, which wraps after
        # 2^32 ids under a long-lived client and aliases old trace ids.
        assert _COUNTER_MASK > 0xFFFFFFFF

    def test_process_tag_mixes_start_time_not_just_pid(self):
        # A recycled pid must not alias the dead process's ids: the tag
        # covers the process start stamp too.
        pid = os.getpid()
        assert _process_tag(pid, 1_000) != _process_tag(pid, 2_000)

    def test_ids_are_distinct_and_nonzero(self):
        ids = {new_trace_id() for _ in range(1000)}
        ids.update(new_span_id() for _ in range(1000))
        assert len(ids) == 2000
        assert 0 not in ids

    def test_child_process_draws_from_a_different_tag(self):
        here = Path(__file__).resolve().parents[2] / "src"
        out = subprocess.run(
            [sys.executable, "-c",
             "from repro.store.obs.trace import new_trace_id; "
             "print(new_trace_id())"],
            capture_output=True, text=True, check=True,
            env=dict(os.environ, PYTHONPATH=str(here)))
        theirs = int(out.stdout)
        ours = new_trace_id()
        assert (theirs >> 48) != (ours >> 48)


# ---------------------------------------------------------------------------
# spans, sampling, propagation
# ---------------------------------------------------------------------------


class TestSpanMachinery:
    def test_span_without_active_trace_is_the_shared_noop(self):
        assert span("anything") is _NULL_SPAN
        with span("anything"):
            assert current_span() is None

    def test_unsampled_tracer_roots_are_the_shared_noop(self):
        tracer = Tracer(sample=0)
        assert tracer.root("op") is _NULL_SPAN
        assert len(tracer.spans) == 0

    def test_sampled_trace_builds_a_parented_tree(self):
        tracer = Tracer(sample=1)
        with tracer.root("outer") as root:
            with span("inner"):
                with span("leaf"):
                    pass
            root.child("direct", root.start_ns, 5)
        spans = {s["op"]: s for s in tracer.spans.tail()}
        assert set(spans) == {"outer", "inner", "leaf", "direct"}
        assert "parent" not in spans["outer"]
        assert spans["inner"]["parent"] == spans["outer"]["span_id"]
        assert spans["leaf"]["parent"] == spans["inner"]["span_id"]
        assert spans["direct"]["parent"] == spans["outer"]["span_id"]
        assert len({s["trace_id"] for s in spans.values()}) == 1

    def test_sample_one_in_n(self):
        tracer = Tracer(sample=3)
        kept = sum(tracer.root("op") is not _NULL_SPAN
                   for _ in range(9))
        assert kept == 3

    def test_slow_threshold_keeps_only_slow_roots(self):
        tracer = Tracer(slow_ms=1e-6)          # every op is "slow"
        with tracer.root("slow"):
            pass
        assert [s["op"] for s in tracer.spans.tail()] == ["slow"]
        tracer = Tracer(slow_ms=1e9)           # nothing is slow
        scope = tracer.root("fast")
        assert scope is not _NULL_SPAN         # captured ...
        with scope:
            pass
        assert len(tracer.spans) == 0          # ... but not kept

    def test_forced_root_is_always_kept(self):
        tracer = Tracer(sample=0)
        with tracer.root("dispatch", trace_id=7, parent_id=3,
                         forced=True):
            pass
        (rec,) = tracer.spans.tail()
        assert rec["trace_id"] == 7 and rec["parent"] == 3

    def test_nested_root_joins_the_surrounding_trace(self):
        tracer = Tracer(sample=1)
        with tracer.root("outer"):
            with tracer.root("nested"):
                pass
        spans = {s["op"]: s for s in tracer.spans.tail()}
        assert spans["nested"]["parent"] == spans["outer"]["span_id"]

    def test_run_with_span_carries_the_trace_across_threads(self):
        tracer = Tracer(sample=1)
        with tracer.root("outer") as root:
            def work():
                with span("threaded"):
                    pass
            thread = threading.Thread(
                target=run_with_span, args=(root, work))
            thread.start()
            thread.join()
        spans = {s["op"]: s for s in tracer.spans.tail()}
        assert spans["threaded"]["parent"] == spans["outer"]["span_id"]

    def test_straggler_children_after_root_exit_are_dropped(self):
        tracer = Tracer(sample=1)
        with tracer.root("outer") as root:
            pass
        root.child("late", 0, 1)               # async commit straggler
        assert [s["op"] for s in tracer.spans.tail()] == ["outer"]


# ---------------------------------------------------------------------------
# durable sinks and structured logging
# ---------------------------------------------------------------------------


class TestTraceLog:
    def test_round_trip_spans_and_events(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        log = TraceLog(path)
        log.event("server_start", endpoint="x:1")
        tracer = Tracer(sample=1, log=log)
        with tracer.root("op"):
            pass
        log.close()
        entries = iter_trace_log(path)
        kinds = [entry["kind"] for entry in entries]
        assert kinds == ["event", "span"]
        assert entries[0]["event"] == "server_start"
        assert entries[1]["op"] == "op" and entries[1]["trace_id"]

    def test_rotation_bounds_the_file_and_keeps_one_generation(
            self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        log = TraceLog(path, max_bytes=256)
        for index in range(50):
            log.event("tick", index=index)
        log.close()
        assert os.path.getsize(path) <= 256
        assert os.path.exists(path + ".1")
        entries = iter_trace_log(path)
        # Rotation drops old generations, never the newest entries.
        assert entries[-1]["index"] == 49
        indexes = [entry["index"] for entry in entries]
        assert indexes == sorted(indexes)

    def test_torn_tail_line_is_skipped(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"kind": "event", "event": "ok"}) + "\n")
            fh.write('{"kind": "event", "ev')  # crash mid-write
        assert [entry["event"] for entry in iter_trace_log(path)] == ["ok"]


class TestJsonLineFormatter:
    def test_renders_record_and_extra_fields(self):
        import logging

        record = logging.LogRecord(
            "repro.store.slowop", logging.WARNING, __file__, 1,
            "slow op %s", ("fetch",), None)
        record.fields = {"op": "fetch", "dur_ms": 12.5}
        out = json.loads(JsonLineFormatter().format(record))
        assert out["message"] == "slow op fetch"
        assert out["logger"] == "repro.store.slowop"
        assert out["op"] == "fetch" and out["dur_ms"] == 12.5


# ---------------------------------------------------------------------------
# store + factory wiring
# ---------------------------------------------------------------------------


class TestStoreWiring:
    def test_trace_keys_are_store_level(self):
        _, options = split_store_url(
            "memory:?trace_sample=10&slow_trace_ms=1.5&trace_log=/tmp/t")
        assert options == {"trace_sample": 10, "slow_trace_ms": 1.5,
                           "trace_log": "/tmp/t"}
        with pytest.raises(ValueError, match="store"):
            engine_from_url("memory:?trace_sample=10")

    @pytest.mark.parametrize("query", [
        "trace_sample=-1", "trace_sample=x",
        "slow_trace_ms=0", "slow_trace_ms=-2", "trace_log=",
    ])
    def test_bad_trace_values_fail_before_any_engine_opens(self, query):
        with pytest.raises(ValueError):
            split_store_url(f"memory:?{query}")

    def test_default_store_traces_nothing(self):
        with ObjectStore.in_memory() as store:
            store.set_root("r", [1, 2, 3])
            store.stabilize()
            store.evict_all()
            store.get_root("r")
            assert len(store.tracer.spans) == 0

    def test_sampled_store_traces_fault_and_stabilize_phases(self):
        store = ObjectStore.from_url("memory:?trace_sample=1")
        store.set_root("r", [[1], [2], [3]])
        store.stabilize()
        store.evict_all()
        store.get_root("r")
        spans = store.tracer.spans.tail(200)
        by_op = {}
        for rec in spans:
            by_op.setdefault(rec["op"], []).append(rec)
        for op in ("store.stabilize", "store.walk", "store.encode",
                   "store.commit", "store.fault", "planner.wave",
                   "engine.fetch_many"):
            assert op in by_op, f"missing {op}: {sorted(by_op)}"
        stab = by_op["store.stabilize"][0]
        assert by_op["store.walk"][0]["parent"] == stab["span_id"]
        assert by_op["store.commit"][0]["parent"] == stab["span_id"]
        fault = by_op["store.fault"][0]
        assert by_op["planner.wave"][0]["parent"] == fault["span_id"]
        assert fault["trace_id"] != stab["trace_id"]
        store.close()

    def test_slow_trace_threshold_filters_fast_ops(self):
        store = ObjectStore.from_url("memory:?slow_trace_ms=60000")
        store.set_root("r", [1])
        store.stabilize()
        assert len(store.tracer.spans) == 0   # captured, all fast
        store.close()

    def test_store_trace_log_sink(self, tmp_path):
        path = tmp_path / "client.jsonl"
        store = ObjectStore.from_url(
            f"memory:?trace_sample=1&trace_log={path}")
        store.set_root("r", [1])
        store.stabilize()
        store.close()
        ops = {entry["op"] for entry in iter_trace_log(str(path))
               if entry["kind"] == "span"}
        assert "store.stabilize" in ops


# ---------------------------------------------------------------------------
# the cross-process tree (acceptance)
# ---------------------------------------------------------------------------


def _spawn_server(url: str, *extra: str) -> tuple[subprocess.Popen, str]:
    root = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(root / "src") + os.pathsep +
                         env.get("PYTHONPATH", ""))
    proc = subprocess.Popen(
        [sys.executable, str(root / "scripts" / "store_server.py"),
         url, "--listen", "127.0.0.1:0", *extra],
        stdout=subprocess.PIPE, text=True, env=env)
    line = proc.stdout.readline()
    if not line.startswith("LISTENING "):
        proc.kill()
        raise RuntimeError(f"store server failed to start: {line!r}")
    return proc, line.split()[-1]


def _assemble(store: ObjectStore, trace_id: int) -> list[dict]:
    """Client spans + every server's retained spans for one trace,
    tagged with the process they ran in."""
    spans = [dict(rec, process="client")
             for rec in store.tracer.spans.tail(500)
             if rec["trace_id"] == trace_id]
    full = store._engine.stats_full(trace_id=trace_id)
    for endpoint, body in full["per_server"].items():
        spans.extend(dict(rec, process=endpoint)
                     for rec in body.get("spans", []))
    return spans


def _depth(spans: list[dict]) -> int:
    by_id = {rec["span_id"]: rec for rec in spans if rec.get("span_id")}

    def chase(rec: dict, depth: int = 0) -> int:
        parent = rec.get("parent")
        if not parent or parent not in by_id:
            return depth
        return chase(by_id[parent], depth + 1)

    return max(chase(rec) for rec in spans)


class TestCrossProcessTree:
    def test_routed_fetch_reassembles_one_tree_across_processes(
            self, tmp_path):
        servers = [_spawn_server(f"file:{tmp_path / f's{index}'}",
                                 "--trace-log",
                                 str(tmp_path / f"trace{index}.jsonl"))
                   for index in range(2)]
        procs = [proc for proc, _ in servers]
        endpoints = [endpoint for _, endpoint in servers]
        try:
            store = ObjectStore.from_url(
                "routed:" + ",".join(endpoints)
                + "?trace_sample=1&op_timeout=60")
            store.set_root("r", [list(range(5)) for _ in range(20)])
            store.stabilize()
            store.evict_all()
            assert list(store.get_root("r")[3]) == list(range(5))

            client = store.tracer.spans.tail(500)
            fault = next(rec for rec in client
                         if rec["op"] == "store.fault")
            stab = next(rec for rec in client
                        if rec["op"] == "store.stabilize")

            # -- the read tree: client -> fan-out -> both servers ------
            spans = _assemble(store, fault["trace_id"])
            assert _depth(spans) >= 3
            processes = {rec["process"] for rec in spans}
            assert processes == {"client", *endpoints}
            ops = {rec["op"] for rec in spans}
            assert {"store.fault", "planner.wave", "fanout.fetch_many",
                    "net.fetch_many", "fetch_many",
                    "engine.fetch_many"} <= ops
            # Every server-side span hangs off the client's tree: its
            # parent is a client net.* span (or deeper server work).
            by_id = {rec["span_id"]: rec for rec in spans
                     if rec.get("span_id")}
            for rec in spans:
                if rec["process"] == "client" or rec["op"] != "fetch_many":
                    continue
                parent = by_id[rec["parent"]]
                assert parent["process"] == "client"
                assert parent["op"] == "net.fetch_many"

            # -- the write tree: 2PC phases down to the WAL fsync ------
            spans = _assemble(store, stab["trace_id"])
            assert _depth(spans) >= 3
            ops = {rec["op"] for rec in spans}
            assert {"store.commit", "twophase.prepare", "net.apply",
                    "apply", "engine.apply", "wal.fsync"} <= ops
            assert {rec["process"] for rec in spans} == \
                {"client", *endpoints}

            store.close()

            # -- the durable sink saw the same traced spans ------------
            logged = [entry
                      for index in range(2)
                      for entry in iter_trace_log(
                          str(tmp_path / f"trace{index}.jsonl"))]
            assert any(entry.get("op") == "wal.fsync"
                       for entry in logged)
            assert any(entry.get("event") == "server_start"
                       for entry in logged)
        finally:
            for proc in procs:
                proc.terminate()
            for proc in procs:
                proc.wait(timeout=10)

    def test_store_trace_explorer_renders_the_live_tree(self, tmp_path):
        sys.path.insert(0, str(Path(__file__).resolve().parents[2]
                               / "scripts"))
        try:
            import store_trace
        finally:
            sys.path.pop(0)
        servers = [_spawn_server(f"file:{tmp_path / f's{index}'}")
                   for index in range(2)]
        procs = [proc for proc, _ in servers]
        endpoints = [endpoint for _, endpoint in servers]
        try:
            log_path = tmp_path / "client.jsonl"
            store = ObjectStore.from_url(
                "routed:" + ",".join(endpoints)
                + f"?trace_sample=1&op_timeout=60&trace_log={log_path}")
            store.set_root("r", [[1], [2], [3]])
            store.stabilize()
            store.close()

            spans, dead = store_trace.collect_spans(
                endpoints, str(log_path), None)
            assert not dead
            traces = store_trace.build_traces(spans)
            tid, trace = max(
                traces.items(),
                key=lambda item: max((root.get("dur_ns", 0)
                                      for root in item[1]["roots"]),
                                     default=0))
            text = store_trace.render_trace(tid, trace)
            assert "store.stabilize" in text
            assert "wal.fsync" in text
            explain = store_trace.render_explain("commit", traces)
            assert "wal.fsync" in explain
        finally:
            for proc in procs:
                proc.terminate()
            for proc in procs:
                proc.wait(timeout=10)
