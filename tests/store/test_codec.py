"""The per-record codec frame: wrap/unwrap round trips, the
smaller-only rule, transparent decode, and spec parsing.

The frame is ``0x00 | codec_id | uvarint(raw_len) | body``.  ``0x00``
is never the first byte of a raw record (record encodings start with a
nonzero kind tag), so framed and unframed bytes coexist in one store
and decode stays transparent — which is what lets a legacy store open
under a ``?compress=`` URL without migration.
"""

from __future__ import annotations

import zlib

import pytest

from repro.errors import DeserializationError
from repro.store.serializer import (
    CODEC_LZMA,
    CODEC_ZLIB,
    FRAME_MARKER,
    RecordCodec,
    is_framed,
    parse_codec,
    unwrap_record,
)

#: Compresses extremely well and is comfortably over the 64-byte floor.
COMPRESSIBLE = b"persistent object store " * 40


class TestParseCodec:
    def test_plain_names_default_to_level_six(self):
        assert parse_codec("zlib") == RecordCodec(CODEC_ZLIB, 6)
        assert parse_codec("lzma") == RecordCodec(CODEC_LZMA, 6)

    def test_explicit_levels(self):
        assert parse_codec("zlib:1") == RecordCodec(CODEC_ZLIB, 1)
        assert parse_codec("lzma:0") == RecordCodec(CODEC_LZMA, 0)
        assert parse_codec("zlib:9") == RecordCodec(CODEC_ZLIB, 9)

    @pytest.mark.parametrize("spec", [None, "", "none"])
    def test_no_codec_spellings(self, spec):
        assert parse_codec(spec) is None

    def test_codec_instance_passes_through(self):
        codec = RecordCodec(CODEC_ZLIB, 3)
        assert parse_codec(codec) is codec

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="known codecs"):
            parse_codec("snappy")

    @pytest.mark.parametrize("spec", ["zlib:10", "zlib:-1", "lzma:99"])
    def test_out_of_range_level_rejected(self, spec):
        with pytest.raises(ValueError, match="level"):
            parse_codec(spec)

    def test_non_integer_level_rejected(self):
        with pytest.raises(ValueError, match="integer"):
            parse_codec("zlib:fast")

    def test_unknown_codec_id_rejected(self):
        with pytest.raises(ValueError, match="codec id"):
            RecordCodec(99, 6)


class TestWrap:
    def test_compressible_bytes_are_framed_and_smaller(self):
        stored = RecordCodec(CODEC_ZLIB, 6).wrap(COMPRESSIBLE)
        assert is_framed(stored)
        assert len(stored) < len(COMPRESSIBLE)
        assert unwrap_record(stored) == COMPRESSIBLE

    def test_lzma_round_trip(self):
        stored = RecordCodec(CODEC_LZMA, 0).wrap(COMPRESSIBLE)
        assert is_framed(stored)
        assert stored[1] == CODEC_LZMA
        assert unwrap_record(stored) == COMPRESSIBLE

    def test_short_records_never_framed(self):
        raw = b"x" * 63  # below the 64-byte floor, however compressible
        assert RecordCodec(CODEC_ZLIB, 9).wrap(raw) is raw

    def test_incompressible_bytes_stay_raw(self):
        # Already-compressed bytes cannot shrink again; the frame must
        # not be paid for nothing.
        raw = zlib.compress(COMPRESSIBLE * 8, 9)
        assert len(raw) >= 64  # over the framing floor; genuinely dense
        stored = RecordCodec(CODEC_ZLIB, 9).wrap(raw)
        assert stored is raw
        assert unwrap_record(stored) == raw

    @pytest.mark.parametrize("level", [1, 6, 9])
    def test_every_zlib_level_round_trips(self, level):
        stored = RecordCodec(CODEC_ZLIB, level).wrap(COMPRESSIBLE)
        assert unwrap_record(stored) == COMPRESSIBLE


class TestUnwrap:
    def test_unframed_bytes_pass_through_untouched(self):
        raw = b"\x07plain record bytes"
        assert unwrap_record(raw) is raw
        assert not is_framed(raw)

    def test_empty_bytes_pass_through(self):
        assert unwrap_record(b"") == b""

    def test_truncated_frame_rejected(self):
        with pytest.raises(DeserializationError, match="truncated"):
            unwrap_record(bytes([FRAME_MARKER, CODEC_ZLIB]))

    def test_unknown_codec_id_rejected(self):
        frame = bytes([FRAME_MARKER, 42, 10]) + b"body"
        with pytest.raises(DeserializationError, match="codec id"):
            unwrap_record(frame)

    def test_corrupt_body_rejected(self):
        good = RecordCodec(CODEC_ZLIB, 6).wrap(COMPRESSIBLE)
        bad = good[:4] + bytes(len(good) - 4)
        with pytest.raises(DeserializationError):
            unwrap_record(bad)

    def test_wrong_raw_length_rejected(self):
        # Rebuild the frame with a lying raw_len (raw_len < 128 keeps
        # the uvarint a single byte, so we can splice it directly).
        good = RecordCodec(CODEC_ZLIB, 6).wrap(b"a" * 100)
        assert good[2] == 100
        bad = good[:2] + bytes([99]) + good[3:]
        with pytest.raises(DeserializationError):
            unwrap_record(bad)
